//! The continuous-query engine: the "StreamWorks" system object.
//!
//! [`ContinuousQueryEngine`] ties the substrates together the way Fig. 1 of
//! the paper sketches: the dynamic graph store and its summaries are updated
//! by every incoming edge event, registered queries are planned against the
//! summaries, and each event is pushed through every query's incremental
//! SJ-Tree matcher, emitting [`MatchEvent`]s for completed patterns.
//!
//! The engine is a *service object*: it is built through the validating
//! [`crate::EngineBuilder`], queries are registered and come back as
//! generation-tagged [`QueryHandle`]s with a full lifecycle
//! ([`ContinuousQueryEngine::pause`] / [`ContinuousQueryEngine::resume`] /
//! [`ContinuousQueryEngine::deregister`]), each query can carry its own
//! subscriptions ([`ContinuousQueryEngine::subscribe`]), and every way of
//! feeding events — single, slice, iterator — goes through the unified
//! [`ContinuousQueryEngine::ingest`] surface.

use std::sync::Arc;

use crate::binding::PartialMatch;
use crate::config::{EngineBuilder, EngineConfig};
use crate::delivery::{
    ConnectError, DeliveryCursor, DeliveryStatus, DurableSub, RetryPolicy, SinkSpec,
};
use crate::error::EngineError;
use crate::event::{CollectingSink, EventSink, MatchEvent, QueryId, SinkOverflow};
use crate::handle::{QueryHandle, SubscriptionId};
use crate::ingest::Ingest;
use crate::metrics::{EngineMetrics, QueryMetrics, ShardMetrics};
use crate::parallel::{panic_message, ShardFailure, ShardedMatcher};
use crate::rpq::{RpqMatcher, RpqPathMatch};
use crate::shared_index::{Delivery, SharedPrimitiveIndex, SharedSubtreeIndex};
use crate::sj_matcher::SjTreeMatcher;
use crate::telemetry::{
    shard_skew, DeliverySnapshot, QuerySnapshot, ShardSetSnapshot, Stage, StageSnapshot,
    TelemetryCheckpoint, TelemetryHub, TelemetryLevel, TelemetrySnapshot,
};
use streamworks_graph::{
    Duration, DynamicGraph, EdgeEvent, EdgeId, GraphConfig, GraphStats, Timestamp, TypeId,
};
use streamworks_query::{
    DecompositionStrategy, Planner, QueryGraph, QueryPlan, RpqQuery, SelectivityOrdered, SjNodeId,
    SjTreeShape, TreeShapeKind,
};
use streamworks_summarize::GraphSummary;

/// Per-edge bookkeeping the engine needs after an edge has expired (the graph
/// drops expired edge records, so their type information is cached here).
#[derive(Debug, Clone, Copy)]
struct EdgeTypeInfo {
    etype: TypeId,
    src_vtype: TypeId,
    dst_vtype: TypeId,
}

/// Id-indexed storage for [`EdgeTypeInfo`], mirroring the graph's dense edge
/// slab: edge ids are sequential and expire nearly in order, so a deque with
/// a base offset replaces a hash map on the per-edge path. Stragglers that
/// would pin the band (timestamp-skewed producers) spill to a small overflow
/// map so memory stays proportional to the live edge count.
#[derive(Debug, Default)]
struct EdgeTypeSlab {
    base: u64,
    slots: std::collections::VecDeque<Option<EdgeTypeInfo>>,
    overflow: streamworks_graph::hash::FxHashMap<EdgeId, EdgeTypeInfo>,
    live: usize,
}

impl EdgeTypeSlab {
    fn insert(&mut self, id: EdgeId, info: EdgeTypeInfo) {
        if self.slots.is_empty() && self.overflow.is_empty() {
            self.base = id.0;
        }
        let Some(idx) = id.0.checked_sub(self.base) else {
            return; // before the live band: an edge that expired on ingest
        };
        let idx = idx as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].replace(info).is_none() {
            self.live += 1;
        }
        if self.slots.len() > 4 * self.live + 1024 {
            self.evict_stragglers();
        }
    }

    fn remove(&mut self, id: EdgeId) -> Option<EdgeTypeInfo> {
        let Some(idx) = id.0.checked_sub(self.base) else {
            let removed = self.overflow.remove(&id);
            if removed.is_some() {
                self.live -= 1;
            }
            return removed;
        };
        let info = self.slots.get_mut(idx as usize)?.take();
        if info.is_some() {
            self.live -= 1;
            while matches!(self.slots.front(), Some(None)) {
                self.slots.pop_front();
                self.base += 1;
            }
        }
        info
    }

    /// Spills live entries pinning the front of an oversized band into the
    /// overflow map (see `EdgeSlab::evict_stragglers` in `streamworks-graph`).
    fn evict_stragglers(&mut self) {
        while self.slots.len() > 4 * self.live + 1024 {
            match self.slots.pop_front() {
                Some(Some(info)) => {
                    self.overflow.insert(EdgeId(self.base), info);
                    self.base += 1;
                }
                Some(None) => self.base += 1,
                None => break,
            }
            while matches!(self.slots.front(), Some(None)) {
                self.slots.pop_front();
                self.base += 1;
            }
        }
    }
}

/// How a query's SJ-Tree is executed: in-process on the ingest thread, or
/// sharded by join-key hash across worker threads (see
/// [`crate::EngineBuilder::shards`]).
// One value per registered query (never mass-allocated), and the common
// `Single` variant sits on the per-event dispatch path — keeping it inline
// avoids a pointer chase there, so the size asymmetry is deliberate.
#[allow(clippy::large_enum_variant)]
enum QueryExec {
    Single(SjTreeMatcher),
    // Boxed: the sharded matcher carries channel endpoints and worker
    // handles; it is only touched via routing/flush calls.
    Sharded(Box<ShardedMatcher>),
    /// A windowed regular path query, evaluated on the product graph (see
    /// `crate::rpq`). The engine's second query class: it shares the whole
    /// lifecycle — slots, handles, pause/resume, subscriptions, checkpoints —
    /// but has no SJ-Tree plan, never runs sharded, and is never covered by
    /// the shared primitive index.
    Rpq(Box<RpqMatcher>),
}

impl QueryExec {
    /// The SJ-Tree plan; `None` for an RPQ, which has no decomposition.
    fn plan(&self) -> Option<&QueryPlan> {
        match self {
            QueryExec::Single(m) => Some(m.plan()),
            QueryExec::Sharded(s) => Some(s.plan()),
            QueryExec::Rpq(_) => None,
        }
    }

    fn metrics(&self) -> QueryMetrics {
        match self {
            QueryExec::Single(m) => m.metrics(),
            QueryExec::Sharded(s) => s.metrics(),
            QueryExec::Rpq(m) => m.metrics(),
        }
    }

    fn prune(&mut self, now: Timestamp) {
        match self {
            QueryExec::Single(m) => m.prune(now),
            QueryExec::Sharded(s) => s.prune(now),
            QueryExec::Rpq(m) => m.prune(now),
        }
    }

    /// The matcher carrying the compiled plan and local-search state — for a
    /// sharded query this is the driver-side front end, whose per-node match
    /// stores are empty (join state lives in the shards). `None` for an RPQ.
    fn matcher(&self) -> Option<&SjTreeMatcher> {
        match self {
            QueryExec::Single(m) => Some(m),
            QueryExec::Sharded(s) => Some(s.front()),
            QueryExec::Rpq(_) => None,
        }
    }

    /// The registered query's name, whichever class it is.
    fn query_name(&self) -> &str {
        match self {
            QueryExec::Single(m) => m.plan().query.name(),
            QueryExec::Sharded(s) => s.plan().query.name(),
            QueryExec::Rpq(m) => m.query().name(),
        }
    }
}

/// The live state of one registered query.
struct QueryState {
    exec: QueryExec,
    paused: bool,
    /// Stream time when the query was paused (`None` while running). Carried
    /// into checkpoints so restore can replay exactly the pre-pause prefix.
    paused_at: Option<Timestamp>,
    /// Arrival-order boundaries of the intervals this query has observed:
    /// registration and every resume push an opening bound (the graph's
    /// ingested-edge count), every pause pushes a closing bound — so an odd
    /// length means the query is currently observing. An edge was shown to
    /// the query iff its id falls in one of the `[open, close)` intervals.
    /// Checkpoint restore replays exactly these intervals to the query;
    /// timestamps alone could not cut a replay exactly (ties and bounded
    /// skew straddle the boundaries), and a single pause bound could not
    /// represent mid-stream registration or pause/resume cycles.
    observed: Vec<u64>,
    /// True when every SJ-Tree leaf of the query is interned in the shared
    /// primitive index: with sharing active, the query's local searches run
    /// through the index and its matcher only receives remapped embeddings.
    /// False (pathologically symmetric primitive, or sharing disabled) keeps
    /// the query on the classic per-query dispatch path.
    shared: bool,
    /// Shared-dispatch events accounted over closed active intervals (the
    /// per-query `edges_processed` contribution of the shared path).
    shared_edges_accum: u64,
    /// `SharedPrimitiveIndex::shared_events` at the start of the current
    /// active interval.
    shared_edges_base: u64,
    /// Per-query subscriptions, in subscription order.
    subscribers: Vec<Subscription>,
    /// Durable subscriptions ([`ContinuousQueryEngine::subscribe_durable`]):
    /// serialisable sink specs with per-subscription delivery cursors and
    /// bounded outboxes, drained at the end of each `ingest` call and
    /// persisted in checkpoints.
    durables: Vec<DurableSub>,
}

/// One per-query subscription. Delivery to its sink is supervised: a sink
/// that panics (or reports an injected delivery error) is *quarantined* —
/// detached and its failure recorded — so one bad subscriber can never
/// poison the engine or starve the query's other subscribers.
struct Subscription {
    token: u64,
    /// `None` once quarantined.
    sink: Option<Box<dyn EventSink>>,
    /// The failure that quarantined the sink, queryable through
    /// [`ContinuousQueryEngine::subscription_health`].
    error: Option<String>,
    /// Drop counter frozen from the sink at quarantine time (live sinks are
    /// read directly via [`EventSink::events_dropped`]).
    dropped: u64,
}

/// Health of one subscription (see
/// [`ContinuousQueryEngine::subscription_health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscriptionHealth {
    /// The sink is attached and receiving matches.
    Active,
    /// Durable subscriptions only: recent deliveries failed and are being
    /// retried under the engine's [`crate::RetryPolicy`] (exponential
    /// backoff); matches keep accumulating in the subscription's outbox.
    /// In-process sinks never pass through this state — they quarantine on
    /// the first failure.
    Degraded {
        /// Consecutive failed delivery attempts so far.
        failures: u32,
    },
    /// The sink panicked (or failed) during a delivery and was detached;
    /// the payload is the recorded failure message. For a durable
    /// subscription this means the retry budget is exhausted — probation
    /// (an automatic probe after the backoff cap, or
    /// [`ContinuousQueryEngine::resubscribe`]) can still promote it back.
    /// The subscription stays registered — and this health stays
    /// queryable — until unsubscribed.
    Quarantined(String),
}

/// One query slot. Deregistration bumps the generation and puts the slot on
/// the free list; a later registration re-occupies it under the new
/// generation, so slot memory stays bounded under register/deregister churn
/// while every handle ever issued to a previous occupant stays stale —
/// the discipline `SharedJoinStore` applies to its match slots.
struct QuerySlot {
    generation: u32,
    state: Option<QueryState>,
}

impl QuerySlot {
    fn live(&self) -> Option<&QueryState> {
        self.state.as_ref()
    }
}

/// The SJ-Tree leaves of `shape` not lying under any covered node: the
/// leaves the query still subscribes to the leaf-level index (its private
/// join climb absorbs them below the covered nodes' parents).
fn uncovered_leaves(shape: &SjTreeShape, covered: &[SjNodeId]) -> Vec<SjNodeId> {
    shape
        .leaves()
        .iter()
        .copied()
        .filter(|&leaf| {
            let mut n = Some(leaf);
            while let Some(id) = n {
                if covered.contains(&id) {
                    return false;
                }
                n = shape.node(id).parent;
            }
            true
        })
        .collect()
}

/// Drops leading *closed* observation intervals lying wholly behind the
/// live-edge horizon: none of their edges can appear in a checkpoint's
/// retained set any more, so they can never affect a replay. Keeps the
/// boundary list bounded under indefinite pause/resume churn.
fn trim_observed(observed: &mut Vec<u64>, live_horizon: u64) {
    let mut drop = 0;
    while drop + 1 < observed.len() && observed[drop + 1] <= live_horizon {
        drop += 2;
    }
    if drop > 0 {
        observed.drain(..drop);
    }
}

/// Delivers one complete match to the query's subscriptions and the
/// call-level sink — the single emission point every dispatch path (the
/// classic per-query loop, the shared-index fan-out, and the sharded
/// fan-in flush) goes through, so emission semantics cannot diverge
/// between paths.
///
/// Subscriber deliveries are supervised (`catch_unwind` plus the
/// `sink-delivery` failpoint): a failing sink is quarantined in place and
/// the remaining subscribers — and the call-level sink — still receive the
/// event. The call-level sink is *not* supervised: it lives on the caller's
/// own stack, so a panic there is the caller's to handle.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by every emission path
fn deliver_match(
    handle: QueryHandle,
    query: &QueryGraph,
    graph: &DynamicGraph,
    m: &PartialMatch,
    subscribers: &mut [Subscription],
    durables: &mut [DurableSub],
    policy: &RetryPolicy,
    sink: &mut dyn EventSink,
) {
    deliver_event(
        MatchEvent::from_match(handle, query, graph, m),
        subscribers,
        durables,
        policy,
        sink,
    );
}

/// The kind-agnostic half of [`deliver_match`]: supervised delivery of an
/// already-built event to the query's subscriptions and the call-level sink.
/// RPQ path matches enter here directly (they have no `PartialMatch`), so
/// both query classes share one emission point.
///
/// Durable subscriptions only *route* here: the rendered match joins each
/// outbox and is delivered (with retry/backoff) when the outboxes drain at
/// the end of the `ingest` call. With no durable subscribers registered the
/// durable branch is a single emptiness check.
fn deliver_event(
    event: MatchEvent,
    subscribers: &mut [Subscription],
    durables: &mut [DurableSub],
    policy: &RetryPolicy,
    sink: &mut dyn EventSink,
) {
    for sub in subscribers.iter_mut() {
        let Some(subscriber) = sub.sink.as_mut() else {
            continue; // already quarantined
        };
        let failure = if crate::failpoint::fire_at("sink-delivery", sub.token as usize) {
            Some("injected sink-delivery error".to_owned())
        } else {
            let ev = event.clone();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| subscriber.on_match(ev)))
                .err()
                .map(|payload| panic_message(payload.as_ref()))
        };
        if let Some(message) = failure {
            sub.dropped = sub
                .sink
                .as_ref()
                .map_or(sub.dropped, |s| s.events_dropped_for(event.query));
            sub.sink = None;
            sub.error = Some(message);
        }
    }
    if !durables.is_empty() {
        let line = event.render();
        for durable in durables.iter_mut() {
            durable.enqueue(line.clone(), policy);
        }
    }
    sink.on_match(event);
}

/// The StreamWorks continuous-query engine.
pub struct ContinuousQueryEngine {
    config: EngineConfig,
    graph: DynamicGraph,
    summary: GraphSummary,
    /// Query slots, indexed by `QueryId`.
    queries: Vec<QuerySlot>,
    /// Indices of vacant slots, re-occupied (under a fresh generation) before
    /// the slot vector grows.
    free_slots: Vec<u32>,
    /// Slot indices of live, unpaused queries in query-id order — the
    /// dispatch table the per-event loop walks. Rebuilt on every lifecycle
    /// change (register / deregister / pause / resume), so paused or
    /// deregistered queries cost nothing per event.
    dispatch: Vec<u32>,
    /// The multi-query sharing layer: every index-covered query's SJ-Tree
    /// leaves, interned by canonical primitive so one anchored local search
    /// per distinct primitive serves every subscriber.
    shared: SharedPrimitiveIndex,
    /// The second sharing layer: maximal common SJ-Tree *subtrees* (and,
    /// with lifting, constant-abstracted subtrees), each owning one matcher
    /// whose join climb runs once per event; joined matches fan out to every
    /// subscriber's parent node, observation-gated per subscriber.
    subtree: SharedSubtreeIndex,
    /// True while the shared dispatch path is in use: sharing is enabled and
    /// at least one interned primitive fans out to two or more active
    /// subscriptions. Recomputed on every lifecycle change; with no overlap
    /// the engine stays on the classic per-query path (identical results,
    /// zero sharing overhead).
    sharing_active: bool,
    /// Live, unpaused queries *not* covered by the shared index — dispatched
    /// classically even while `sharing_active`.
    classic_dispatch: Vec<u32>,
    /// Reusable buffer of the current event's leaf-level fan-out work.
    delivery_scratch: Vec<Delivery>,
    /// Reusable buffer of the current event's subtree-level fan-out work.
    subtree_scratch: Vec<Delivery>,
    /// Monotonic token generator for subscription ids.
    next_subscription: u64,
    /// Type info of live edges, used to update the summary on expiry.
    live_edge_types: EdgeTypeSlab,
    edges_since_prune: u64,
    /// Edge events absorbed over the engine's lifetime — the stream position
    /// stamped onto sharded queries' completed matches so the fan-in flush
    /// can interleave matches of different queries in arrival order.
    events_ingested: u64,
    events_emitted: u64,
    /// Reusable buffer for complete matches produced per event.
    match_scratch: Vec<PartialMatch>,
    /// Reusable buffer for RPQ path matches produced per event.
    rpq_scratch: Vec<RpqPathMatch>,
    /// Reusable buffer for a sampled event's leaf embeddings: the telemetry
    /// path splits a Single matcher's `process_edge` into its search and
    /// climb halves to time them separately, and this buffer carries the
    /// embeddings between the halves.
    primitive_scratch: Vec<(SjNodeId, PartialMatch)>,
    /// `Some` while [`crate::TelemetryLevel::Sampled`]: the shared stage
    /// histograms plus the driver thread's span ring. `None` means every
    /// instrumentation site reduces to one branch.
    telemetry: Option<TelemetryHub>,
    /// `Some(reason)` once a shard failure could not be contained (the
    /// [`crate::ShardFailurePolicy::FailFast`] policy, or a `Degrade` with
    /// no surviving shard): join state is gone, so serving further calls
    /// would silently under-report matches. Every fallible engine method
    /// returns [`EngineError::Poisoned`] from then on.
    poisoned: Option<String>,
}

impl ContinuousQueryEngine {
    /// Starts a validating [`EngineBuilder`] — the service-facing way to
    /// construct an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Creates an engine directly from a configuration snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`EngineConfig::validate`]; use
    /// [`Self::builder`] (or [`EngineBuilder::from_config`]) for the
    /// non-panicking path.
    pub fn new(config: EngineConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid engine configuration: {msg}");
        }
        let graph = DynamicGraph::new(GraphConfig {
            retention: config.retention,
            ..Default::default()
        });
        ContinuousQueryEngine {
            summary: GraphSummary::with_config(config.summary),
            graph,
            queries: Vec::new(),
            free_slots: Vec::new(),
            dispatch: Vec::new(),
            shared: SharedPrimitiveIndex::default(),
            subtree: SharedSubtreeIndex::new(config.lifted_sharing, config.max_matches_per_node),
            sharing_active: false,
            classic_dispatch: Vec::new(),
            delivery_scratch: Vec::new(),
            subtree_scratch: Vec::new(),
            next_subscription: 0,
            live_edge_types: EdgeTypeSlab::default(),
            edges_since_prune: 0,
            events_ingested: 0,
            events_emitted: 0,
            match_scratch: Vec::new(),
            rpq_scratch: Vec::new(),
            primitive_scratch: Vec::new(),
            telemetry: match config.telemetry_level {
                TelemetryLevel::Off => None,
                TelemetryLevel::Sampled => Some(TelemetryHub::new(config.telemetry_sample_every)),
            },
            poisoned: None,
            config,
        }
    }

    /// Builds the execution backend the configuration asks for: an
    /// in-process matcher, or — when [`EngineConfig::shards`] is above 1 — a
    /// join-key-sharded matcher spread over worker threads.
    fn build_exec(&self, plan: QueryPlan) -> QueryExec {
        if self.config.shards > 1 {
            QueryExec::Sharded(Box::new(ShardedMatcher::with_telemetry(
                plan,
                &self.graph,
                self.config.shards,
                self.config.max_matches_per_node,
                self.config.channel_capacity,
                self.config.shard_failure_policy,
                self.telemetry
                    .as_ref()
                    .map(|h| (Arc::clone(&h.core), Arc::clone(&h.driver_ring))),
            )))
        } else {
            QueryExec::Single(
                SjTreeMatcher::new(plan, &self.graph)
                    .with_match_cap(self.config.max_matches_per_node),
            )
        }
    }

    /// Interns a plan into both sharing layers for `slot`: subtree coverage
    /// first (when enabled), then every leaf not under a covered node into
    /// the leaf-level index. All-or-nothing: if any uncovered leaf fails
    /// canonicalization, the subtree subscriptions are rolled back too and
    /// the query runs classic — a query is either fully shared-dispatched
    /// or fully private, never half.
    fn subscribe_sharing(&mut self, slot: u32, plan: &QueryPlan) -> bool {
        if !self.config.shared_matching {
            return false;
        }
        let covered = if self.config.subtree_sharing {
            self.subtree.cover_plan(slot, plan, &self.graph)
        } else {
            Vec::new()
        };
        let uncovered = uncovered_leaves(&plan.shape, &covered);
        if self
            .shared
            .subscribe_plan(slot, plan, &uncovered, &self.graph)
        {
            true
        } else {
            self.subtree.unsubscribe_slot(slot);
            false
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Read access to the data graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Read access to the maintained graph summary.
    pub fn summary(&self) -> &GraphSummary {
        &self.summary
    }

    /// Basic counters of the underlying graph.
    pub fn graph_stats(&self) -> GraphStats {
        self.graph.stats()
    }

    /// Total number of match events emitted so far (fan-out to per-query
    /// subscribers does not multiply the count).
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Overrides the emitted-event counter (used by checkpoint restore so the
    /// counter continues from its pre-restart value instead of double-counting
    /// the suppressed replay).
    pub(crate) fn set_events_emitted(&mut self, value: u64) {
        self.events_emitted = value;
    }

    /// Snapshots the durable subscriptions of one query for a checkpoint,
    /// tagged with the query's position in the checkpoint's slot order.
    pub(crate) fn capture_durables(
        &self,
        handle: QueryHandle,
        query: usize,
    ) -> Vec<DeliveryCursor> {
        self.state(handle).map_or_else(
            |_| Vec::new(),
            |state| state.durables.iter().map(|d| d.to_cursor(query)).collect(),
        )
    }

    /// Re-attaches one captured durable subscription during checkpoint
    /// restore. The destination is reconnected and truncated to exactly
    /// `cursor` acknowledged matches, discarding any unacknowledged writes
    /// a crashed run raced in after the snapshot. In strict mode a
    /// destination shorter than the cursor (evidence of external
    /// tampering or loss) surfaces as [`EngineError::CorruptCheckpoint`];
    /// otherwise connection problems are left for the first delivery
    /// attempt to retry.
    pub(crate) fn attach_durable(
        &mut self,
        handle: QueryHandle,
        cursor: &DeliveryCursor,
        strict: bool,
    ) -> Result<(), EngineError> {
        self.next_subscription = self.next_subscription.max(cursor.token + 1);
        let mut sub = DurableSub::from_cursor(cursor);
        match cursor.spec.connect(cursor.cursor) {
            Ok(target) => sub.target = Some(target),
            Err(ConnectError::Corrupt { offset, detail }) if strict => {
                return Err(EngineError::CorruptCheckpoint {
                    offset: Some(offset),
                    detail,
                });
            }
            Err(_) => {}
        }
        self.state_mut(handle)?.durables.push(sub);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Query registration and lifecycle
    // ------------------------------------------------------------------

    /// Registers a pre-built plan, returning the query's handle. A slot freed
    /// by an earlier [`Self::deregister`] is re-occupied (under a fresh
    /// generation, so the old occupant's handles stay stale) before the slot
    /// table grows.
    ///
    /// With [`EngineConfig::shared_matching`] enabled (the default), the
    /// plan's SJ-Tree is interned into the engine's sharing layers at this
    /// point. With [`EngineConfig::subtree_sharing`] the tree is first
    /// walked top-down for maximal subtrees matching an already-interned
    /// (or advertised) subtree — those nodes' whole join climbs are shared;
    /// every leaf not under a covered node is then interned into the
    /// canonical primitive index, so leaves isomorphic to a primitive some
    /// registered query already watches share one anchored local search per
    /// event instead of each running their own.
    pub fn register_plan(&mut self, plan: QueryPlan) -> QueryHandle {
        self.extend_retention(plan.query.window());
        let index = self.alloc_slot();
        let shared = self.subscribe_sharing(index as u32, &plan);
        let state = QueryState {
            exec: self.build_exec(plan),
            paused: false,
            paused_at: None,
            observed: vec![self.graph.ingested_edge_count()],
            shared,
            shared_edges_accum: 0,
            shared_edges_base: self.shared.shared_events(),
            subscribers: Vec::new(),
            durables: Vec::new(),
        };
        self.queries[index].state = Some(state);
        self.rebuild_dispatch();
        QueryHandle::new(QueryId(index), self.queries[index].generation)
    }

    /// Plans a query with the default (selectivity-ordered) strategy using the
    /// engine's current summaries, then registers it.
    pub fn register_query(&mut self, query: QueryGraph) -> Result<QueryHandle, EngineError> {
        self.register_query_with(
            query,
            &SelectivityOrdered::default(),
            TreeShapeKind::LeftDeep,
        )
    }

    /// Plans a query with an explicit decomposition strategy and tree shape,
    /// then registers it.
    pub fn register_query_with(
        &mut self,
        query: QueryGraph,
        strategy: &dyn DecompositionStrategy,
        tree_kind: TreeShapeKind,
    ) -> Result<QueryHandle, EngineError> {
        let plan = Planner::new()
            .with_statistics(&self.summary, &self.graph)
            .tree_kind(tree_kind)
            .plan_with(query, strategy)?;
        Ok(self.register_plan(plan))
    }

    /// Parses a DSL query (see `streamworks_query::parse_query`) and registers it.
    pub fn register_dsl(&mut self, text: &str) -> Result<QueryHandle, EngineError> {
        let query = streamworks_query::parse_query(text)?;
        self.register_query(query)
    }

    /// Registers a windowed regular path query — the engine's second query
    /// class. The query's pattern is compiled to its minimized DFA and
    /// evaluated incrementally on the product graph (see `crate::rpq`);
    /// every path match is emitted as a [`MatchEvent`] binding `src` and
    /// `dst` and carrying the witness edges.
    ///
    /// The returned handle shares the full lifecycle of subgraph queries:
    /// pause/resume, deregistration, subscriptions, checkpoint/restore. An
    /// RPQ always runs single-threaded on the ingest thread ([`Self::plan`],
    /// [`Self::matcher`] and [`Self::shard_metrics`] do not apply — the
    /// first two return [`EngineError::WrongQueryKind`]), and
    /// [`Self::replan`] is a documented no-op: an RPQ's DFA is canonical, so
    /// there is no decomposition to revisit.
    pub fn register_rpq(&mut self, rpq: RpqQuery) -> QueryHandle {
        self.extend_retention(rpq.window());
        let index = self.alloc_slot();
        let state = QueryState {
            exec: QueryExec::Rpq(Box::new(RpqMatcher::new(rpq, &self.graph))),
            paused: false,
            paused_at: None,
            observed: vec![self.graph.ingested_edge_count()],
            shared: false,
            shared_edges_accum: 0,
            shared_edges_base: self.shared.shared_events(),
            subscribers: Vec::new(),
            durables: Vec::new(),
        };
        self.queries[index].state = Some(state);
        self.rebuild_dispatch();
        QueryHandle::new(QueryId(index), self.queries[index].generation)
    }

    /// Parses an RPQ (see `streamworks_query::parse_rpq`, e.g.
    /// `RPQ lateral WINDOW 30m PATH login (flow | dns)* exploit`) and
    /// registers it.
    pub fn register_rpq_dsl(&mut self, text: &str) -> Result<QueryHandle, EngineError> {
        let rpq = streamworks_query::parse_rpq(text)?;
        Ok(self.register_rpq(rpq))
    }

    /// The pattern of a registered regular path query.
    /// [`EngineError::WrongQueryKind`] for a subgraph query.
    pub fn rpq_query(&self, handle: QueryHandle) -> Result<&RpqQuery, EngineError> {
        match &self.state(handle)?.exec {
            QueryExec::Rpq(m) => Ok(m.query()),
            _ => Err(EngineError::WrongQueryKind {
                handle,
                expected: "regular path",
            }),
        }
    }

    /// Whether the registered query is a regular path query.
    pub fn is_rpq(&self, handle: QueryHandle) -> Result<bool, EngineError> {
        Ok(matches!(self.state(handle)?.exec, QueryExec::Rpq(_)))
    }

    /// Pops a free slot or grows the slot table, returning the index.
    fn alloc_slot(&mut self) -> usize {
        match self.free_slots.pop() {
            Some(i) => i as usize,
            None => {
                self.queries.push(QuerySlot {
                    generation: 0,
                    state: None,
                });
                self.queries.len() - 1
            }
        }
    }

    /// Removes a query from the engine. Its matcher — and with it every
    /// `SharedJoinStore` of partial matches the query had accumulated — is dropped
    /// immediately, along with the query's subscriptions. The handle (and any
    /// copy of it) is permanently stale afterwards, even once a later
    /// registration re-occupies the slot under a new generation.
    ///
    /// Retention derived from the query's window is *not* shrunk back: edges
    /// already admitted under the old horizon stay until they expire.
    pub fn deregister(&mut self, handle: QueryHandle) -> Result<(), EngineError> {
        let slot = self.slot_mut(handle)?;
        slot.state = None;
        slot.generation = slot.generation.wrapping_add(1);
        self.free_slots.push(handle.id().0 as u32);
        // Release the query's shared-index subscriptions (both layers);
        // entries it was the last subscriber of are freed, and its subtree
        // adverts are purged.
        self.shared.unsubscribe_slot(handle.id().0 as u32);
        self.subtree.unsubscribe_slot(handle.id().0 as u32);
        self.rebuild_dispatch();
        Ok(())
    }

    /// Stops routing events to a query. Its accumulated partial matches stay
    /// (and keep expiring on the prune cadence); the per-event cost of a
    /// paused query is zero because the dispatch table is rebuilt without it.
    /// Pausing an already-paused query is a no-op.
    pub fn pause(&mut self, handle: QueryHandle) -> Result<(), EngineError> {
        let now = self.graph.now();
        let bound = self.graph.ingested_edge_count();
        let live_horizon = self.observed_live_horizon();
        let shared_events = self.shared.shared_events();
        let state = self.state_mut(handle)?;
        if !state.paused {
            state.paused = true;
            state.paused_at = Some(now);
            state.observed.push(bound);
            trim_observed(&mut state.observed, live_horizon);
            state.shared_edges_accum += shared_events - state.shared_edges_base;
            let drop_from_fanout = state.shared;
            if drop_from_fanout {
                // The query leaves the shared fan-out; an entry whose
                // subscribers are all paused stops being searched entirely.
                self.shared.set_active(handle.id().0 as u32, false);
                self.subtree.set_active(handle.id().0 as u32, false);
            }
            self.rebuild_dispatch();
        }
        Ok(())
    }

    /// Resumes event routing for a paused query. Edges that streamed past
    /// while it was paused are not replayed — matches needing them are
    /// missed, exactly as for a query registered late. Resuming an unpaused
    /// query is a no-op.
    pub fn resume(&mut self, handle: QueryHandle) -> Result<(), EngineError> {
        let bound = self.graph.ingested_edge_count();
        let live_horizon = self.observed_live_horizon();
        let shared_events = self.shared.shared_events();
        let state = self.state_mut(handle)?;
        if state.paused {
            state.paused = false;
            state.paused_at = None;
            state.observed.push(bound);
            trim_observed(&mut state.observed, live_horizon);
            state.shared_edges_base = shared_events;
            let rejoin_fanout = state.shared;
            if rejoin_fanout {
                self.shared.set_active(handle.id().0 as u32, true);
                self.subtree.set_active(handle.id().0 as u32, true);
            }
            self.rebuild_dispatch();
        }
        Ok(())
    }

    /// Whether the query is currently paused.
    pub fn is_paused(&self, handle: QueryHandle) -> Result<bool, EngineError> {
        Ok(self.state(handle)?.paused)
    }

    /// Stream time at which the query was paused, `None` while it is
    /// running. Captured into [`crate::EngineCheckpoint`] so a restore can
    /// replay exactly the pre-pause prefix of the retained edges to a paused
    /// query.
    pub fn pause_time(&self, handle: QueryHandle) -> Result<Option<Timestamp>, EngineError> {
        Ok(self.state(handle)?.paused_at)
    }

    /// Arrival-order observation boundaries of a query: registration and
    /// every resume open an interval (the graph's ingested-edge count at
    /// that moment), every pause closes one, so an odd length means the
    /// query is currently observing. An edge was shown to the query iff its
    /// id falls in one of the `[open, close)` intervals. These are the
    /// exact cuts [`crate::EngineCheckpoint::capture`] records so restore
    /// can replay to each query precisely what it observed — timestamps
    /// alone cannot (ties and skew straddle the boundaries), and neither
    /// can a single prefix (mid-stream registration, pause/resume cycles).
    pub(crate) fn observed_bounds(&self, handle: QueryHandle) -> &[u64] {
        self.state(handle)
            .map(|s| s.observed.as_slice())
            .unwrap_or(&[])
    }

    /// Edge-id bound below which no edge is live any more (every retained
    /// edge has an id at or above it) — the horizon behind which observation
    /// intervals are dead weight.
    fn observed_live_horizon(&self) -> u64 {
        self.graph
            .oldest_live_edge_id()
            .map(|id| id.0)
            .unwrap_or_else(|| self.graph.ingested_edge_count())
    }

    /// Overrides a paused query's recorded pause time (checkpoint restore
    /// re-applies the original timestamp after the prefix replay, so a
    /// second capture round-trips it verbatim).
    pub(crate) fn set_pause_time(&mut self, handle: QueryHandle, at: Option<Timestamp>) {
        if let Ok(state) = self.state_mut(handle) {
            state.paused_at = at;
        }
    }

    /// Re-plans an already-registered query using the engine's *current*
    /// statistics and replaces its matcher. Subscriptions and the paused flag
    /// survive the re-plan.
    ///
    /// Paper §4.3 lists "continuously collecting the statistics information
    /// from the data stream and updating the query decomposition" as future
    /// work; this method implements the mechanism. Partial matches accumulated
    /// under the old plan are discarded (they are keyed to the old SJ-Tree
    /// shape), so matches whose first edges arrived before the re-plan and
    /// whose last edges arrive after it may be missed — call it during quiet
    /// periods or accept the gap, exactly as a production system would. A
    /// checkpoint taken later reproduces the same gap: restore replays only
    /// post-replan edges to the query, never reconstructing the discarded
    /// partials.
    pub fn replan(
        &mut self,
        handle: QueryHandle,
        strategy: &dyn DecompositionStrategy,
        tree_kind: TreeShapeKind,
    ) -> Result<(), EngineError> {
        // An RPQ has no decomposition to revisit (its minimized DFA is
        // canonical): replanning one is a successful no-op, so lifecycle
        // drivers can replan their whole query set without special-casing.
        let Some(plan) = self.state(handle)?.exec.plan() else {
            return Ok(());
        };
        let query = plan.query.clone();
        let plan = Planner::new()
            .with_statistics(&self.summary, &self.graph)
            .tree_kind(tree_kind)
            .plan_with(query, strategy)?;
        // Re-intern under the new plan: the old subscriptions are released
        // in both layers (freeing entries this query was the last
        // subscriber of) and the new decomposition subscribes afresh —
        // subtree coverage first, then the uncovered leaves.
        let id = handle.id().0 as u32;
        self.shared.unsubscribe_slot(id);
        self.subtree.unsubscribe_slot(id);
        let shared = self.subscribe_sharing(id, &plan);
        let shared_events = self.shared.shared_events();
        let bound = self.graph.ingested_edge_count();
        let exec = self.build_exec(plan);
        let state = self.state_mut(handle)?;
        state.exec = exec;
        state.shared = shared;
        state.shared_edges_accum = 0;
        state.shared_edges_base = shared_events;
        // The old plan's partial matches are discarded (see the method
        // docs), so the observed-replay window restarts here too: a
        // checkpoint restore must not reconstruct partials from edges whose
        // state this replan just dropped.
        state.observed.clear();
        if !state.paused {
            state.observed.push(bound);
        }
        let paused = state.paused;
        if paused && shared {
            // Subscribing activates; a paused query stays out of fan-out.
            self.shared.set_active(id, false);
            self.subtree.set_active(id, false);
        }
        self.rebuild_dispatch();
        Ok(())
    }

    /// Number of live (registered, not deregistered) queries.
    pub fn query_count(&self) -> usize {
        self.queries.iter().filter(|s| s.state.is_some()).count()
    }

    /// Handles of every live query, in query-id (slot) order. This is
    /// registration order until a freed slot is re-occupied.
    pub fn handles(&self) -> Vec<QueryHandle> {
        self.queries
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state.is_some())
            .map(|(i, s)| QueryHandle::new(QueryId(i), s.generation))
            .collect()
    }

    /// The plan of a registered subgraph query.
    /// [`EngineError::WrongQueryKind`] for a regular path query, which has
    /// no SJ-Tree decomposition (see [`Self::rpq_query`]).
    pub fn plan(&self, handle: QueryHandle) -> Result<&QueryPlan, EngineError> {
        self.state(handle)?
            .exec
            .plan()
            .ok_or(EngineError::WrongQueryKind {
                handle,
                expected: "subgraph",
            })
    }

    /// Metrics of a registered query. For a sharded query the snapshot
    /// aggregates the driver's local-search counters with every shard's
    /// join/store counters. For an index-covered query the shared dispatch
    /// path's contribution is folded in — `edges_processed` counts every
    /// event dispatched while the query was active, and
    /// `local_search_candidates` attributes each shared search's work to
    /// every query it served — so the counters read the same whether the
    /// query's searches ran privately or through the shared index.
    pub fn metrics(&self, handle: QueryHandle) -> Result<QueryMetrics, EngineError> {
        let state = self.state(handle)?;
        let mut m = state.exec.metrics();
        if state.shared {
            let mut shared_edges = state.shared_edges_accum;
            if !state.paused {
                shared_edges += self.shared.shared_events() - state.shared_edges_base;
            }
            m.edges_processed += shared_edges;
            m.local_search_candidates += self.shared.slot_candidates(handle.id().0 as u32);
            m.local_search_candidates += self.subtree.slot_candidates(handle.id().0 as u32);
        }
        m.sink_events_dropped += state
            .subscribers
            .iter()
            .map(|s| {
                s.dropped
                    + s.sink
                        .as_ref()
                        .map_or(0, |sink| sink.events_dropped_for(handle.id()))
            })
            .sum::<u64>();
        for d in &state.durables {
            m.sink_events_dropped += d.dropped;
            m.delivery_attempts += d.attempts;
            m.delivery_retries += d.retries;
            m.delivery_recoveries += d.recoveries;
            m.cursor_lag += d.lag();
        }
        Ok(m)
    }

    /// Engine-level counters of the multi-query sharing subsystem: distinct
    /// vs. subscribed primitives and subtrees (the dedup ratios), searches
    /// and join climbs run and saved, embeddings found and fanned out, and
    /// lifted-dispatch hits. All zero while no query is registered or
    /// [`EngineConfig::shared_matching`] is disabled.
    pub fn engine_metrics(&self) -> EngineMetrics {
        let mut m = self.shared.metrics();
        let s = self.subtree.metrics();
        m.distinct_subtrees = s.distinct_subtrees;
        m.subscribed_subtrees = s.subscribed_subtrees;
        m.subtree_joins_run = s.subtree_joins_run;
        m.subtree_joins_saved = s.subtree_joins_saved;
        m.lifted_dispatch_hits = s.lifted_dispatch_hits;
        for slot in &self.queries {
            if let Some(state) = &slot.state {
                for d in &state.durables {
                    m.delivery_attempts += d.attempts;
                    m.delivery_retries += d.retries;
                    m.delivery_recoveries += d.recoveries;
                    m.cursor_lag += d.lag();
                }
            }
        }
        m
    }

    /// True while events are dispatched through the shared primitive index:
    /// sharing is enabled and at least one distinct primitive currently fans
    /// out to two or more active query leaves. With no structural overlap
    /// the engine stays on the per-query path.
    pub fn sharing_active(&self) -> bool {
        self.sharing_active
    }

    /// Per-shard counters of a registered query: `Some` with one
    /// [`ShardMetrics`] per shard when the engine runs sharded
    /// ([`crate::EngineBuilder::shards`] above 1), `None` for the
    /// single-threaded execution.
    pub fn shard_metrics(
        &self,
        handle: QueryHandle,
    ) -> Result<Option<Vec<ShardMetrics>>, EngineError> {
        Ok(match &self.state(handle)?.exec {
            QueryExec::Single(_) | QueryExec::Rpq(_) => None,
            QueryExec::Sharded(s) => Some(s.shard_metrics()),
        })
    }

    /// Metrics of every live query, in the order of [`Self::handles`].
    /// Empty once the engine is poisoned (per-query metrics are no longer
    /// meaningful without their join state).
    pub fn all_metrics(&self) -> Vec<(QueryHandle, QueryMetrics)> {
        self.handles()
            .into_iter()
            .filter_map(|h| self.metrics(h).ok().map(|m| (h, m)))
            .collect()
    }

    /// The unified observability snapshot: per-stage latency histograms,
    /// every live query's counters, engine-wide sharing counters, per-shard
    /// counters with their routing-skew ratio, live durable-delivery state
    /// and the recent trace spans — everything the CLI's `stats` command and
    /// `--metrics-json` flag export. [`crate::MetricsRegistry::gather`] is a
    /// façade over this method.
    ///
    /// Stage histograms and spans are empty while
    /// [`crate::TelemetryLevel::Off`] (the counters sections are always
    /// populated). Each subscription's `lag` is recomputed from its live
    /// outbox depth at snapshot time, so a quarantined subscription's
    /// backlog keeps growing here instead of freezing at the value its last
    /// successful drain cached.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let stages: Vec<StageSnapshot> = self
            .telemetry
            .as_ref()
            .map(|h| {
                Stage::ALL
                    .iter()
                    .map(|&s| StageSnapshot::from_histogram(s, &h.core.stage_snapshot(s)))
                    .collect()
            })
            .unwrap_or_default();
        let mut queries = Vec::new();
        let mut shards = Vec::new();
        let mut delivery = Vec::new();
        for (idx, slot) in self.queries.iter().enumerate() {
            let Some(state) = slot.state.as_ref() else {
                continue;
            };
            let handle = QueryHandle::new(QueryId(idx), slot.generation);
            let name = state.exec.query_name().to_string();
            if let Ok(metrics) = self.metrics(handle) {
                queries.push(QuerySnapshot {
                    name: name.clone(),
                    paused: state.paused,
                    metrics,
                });
            }
            if let QueryExec::Sharded(sharded) = &state.exec {
                let per_shard = sharded.shard_metrics();
                let skew = shard_skew(&per_shard);
                shards.push(ShardSetSnapshot {
                    query: name.clone(),
                    shards: per_shard,
                    skew,
                });
            }
            for d in &state.durables {
                delivery.push(DeliverySnapshot {
                    query: name.clone(),
                    token: d.token,
                    target: d.spec.describe(),
                    status: match &d.status {
                        DeliveryStatus::Active => "active".to_string(),
                        DeliveryStatus::Degraded { .. } => "degraded".to_string(),
                        DeliveryStatus::Quarantined { .. } => "quarantined".to_string(),
                    },
                    routed: d.routed,
                    dropped: d.dropped,
                    attempts: d.attempts,
                    retries: d.retries,
                    recoveries: d.recoveries,
                    lag: d.lag(),
                });
            }
        }
        let mut spans = Vec::new();
        if let Some(h) = &self.telemetry {
            h.driver_ring.collect_into(&mut spans);
            for slot in &self.queries {
                if let Some(state) = &slot.state {
                    if let QueryExec::Sharded(sharded) = &state.exec {
                        sharded.collect_spans(&mut spans);
                    }
                }
            }
            spans.sort_by_key(|s| (s.seq, s.start_ns));
        }
        TelemetrySnapshot {
            level: self.config.telemetry_level.name().to_string(),
            sample_every: self.config.telemetry_sample_every,
            events_ingested: self.events_ingested,
            events_emitted: self.events_emitted,
            stages,
            queries,
            engine: self.engine_metrics(),
            shards,
            delivery,
            spans,
        }
    }

    /// Captures the live stage histograms for a checkpoint; `None` while
    /// telemetry is off.
    pub(crate) fn capture_telemetry(&self) -> Option<TelemetryCheckpoint> {
        self.telemetry
            .as_ref()
            .map(|h| TelemetryCheckpoint::capture(&h.core))
    }

    /// Detaches the telemetry hub so checkpoint replay is not re-measured on
    /// the driver thread (the replayed events were already measured by the
    /// engine that wrote the checkpoint). Pair with
    /// [`Self::resume_telemetry`]. Sharded matchers registered before the
    /// suspension keep their own clones and still record their worker-side
    /// stages; restore tolerates that overlap (counters stay monotone).
    pub(crate) fn suspend_telemetry(&mut self) -> Option<TelemetryHub> {
        self.telemetry.take()
    }

    /// Reinstates the hub taken by [`Self::suspend_telemetry`] and folds the
    /// restored checkpoint's captured stage counters into it.
    pub(crate) fn resume_telemetry(
        &mut self,
        hub: Option<TelemetryHub>,
        restored: Option<&TelemetryCheckpoint>,
    ) {
        self.telemetry = hub;
        if let (Some(h), Some(cp)) = (&self.telemetry, restored) {
            cp.absorb_into(&h.core);
        }
    }

    /// Partial matches currently stored across every live query's
    /// `SharedJoinStore`s — the figure that drops to zero for a query's share when
    /// it is deregistered.
    pub fn live_partial_matches(&self) -> u64 {
        self.queries
            .iter()
            .filter_map(QuerySlot::live)
            .map(|s| s.exec.metrics().partial_matches_live)
            .sum()
    }

    /// Direct access to a registered matcher (used by experiments that inspect
    /// per-node match collections). For a sharded query this returns the
    /// driver-side front end, whose per-node stores are empty — the join
    /// state lives in the shards and is observable through
    /// [`Self::shard_metrics`].
    /// [`EngineError::WrongQueryKind`] for a regular path query, whose state
    /// lives in product-graph trees rather than an SJ-Tree.
    pub fn matcher(&self, handle: QueryHandle) -> Result<&SjTreeMatcher, EngineError> {
        self.state(handle)?
            .exec
            .matcher()
            .ok_or(EngineError::WrongQueryKind {
                handle,
                expected: "subgraph",
            })
    }

    // ------------------------------------------------------------------
    // Subscriptions
    // ------------------------------------------------------------------

    /// Attaches a sink to one query: every future match of that query is
    /// delivered to it (in addition to whatever sink an `ingest_with` call
    /// passes). Use [`crate::CountingSink`], [`crate::BufferingSink`],
    /// [`crate::ChannelSink`] or [`crate::CallbackSink`] to observe the
    /// delivery while the engine owns the sink.
    pub fn subscribe(
        &mut self,
        handle: QueryHandle,
        sink: impl EventSink + 'static,
    ) -> Result<SubscriptionId, EngineError> {
        let token = self.next_subscription;
        let state = self.state_mut(handle)?;
        state.subscribers.push(Subscription {
            token,
            sink: Some(Box::new(sink)),
            error: None,
            dropped: 0,
        });
        self.next_subscription += 1;
        Ok(SubscriptionId {
            query: handle.id(),
            token,
        })
    }

    /// Attaches a durable subscription to one query: matches are rendered,
    /// buffered in a bounded outbox and delivered to the serialisable
    /// [`SinkSpec`] destination at the end of each `ingest` call, with
    /// retry/backoff per [`crate::EngineConfig::retry_policy`]. The
    /// subscription's delivery cursor (count of acknowledged matches) is
    /// persisted by [`crate::EngineCheckpoint`], so a restored engine
    /// resumes delivery exactly after the last acknowledged match. Uses a
    /// 1024-entry outbox with [`SinkOverflow::Block`] (drain inline when
    /// full); see [`Self::subscribe_durable_with`] to choose both.
    pub fn subscribe_durable(
        &mut self,
        handle: QueryHandle,
        spec: SinkSpec,
    ) -> Result<SubscriptionId, EngineError> {
        self.subscribe_durable_with(handle, spec, 1024, SinkOverflow::Block)
    }

    /// [`Self::subscribe_durable`] with an explicit outbox capacity and
    /// overflow policy. `DropOldest`/`DropNewest` count every dropped match
    /// on the subscription's drop counter; `Block` drains the outbox inline
    /// before accepting the overflowing match, falling back to
    /// `DropOldest` when the destination is down (delivery happens on the
    /// ingest thread, so truly blocking would deadlock the stream).
    /// [`EngineError::InvalidConfig`] for a zero capacity.
    pub fn subscribe_durable_with(
        &mut self,
        handle: QueryHandle,
        spec: SinkSpec,
        capacity: usize,
        overflow: SinkOverflow,
    ) -> Result<SubscriptionId, EngineError> {
        if capacity == 0 {
            return Err(EngineError::InvalidConfig(
                "durable outbox capacity must be at least 1".into(),
            ));
        }
        let token = self.next_subscription;
        let state = self.state_mut(handle)?;
        state
            .durables
            .push(DurableSub::new(token, spec, capacity, overflow));
        self.next_subscription += 1;
        Ok(SubscriptionId {
            query: handle.id(),
            token,
        })
    }

    /// Puts a quarantined or degraded durable subscription back on
    /// probation: its failure count and backoff gates are cleared and the
    /// next drain reconnects and re-attempts delivery from the cursor.
    /// [`EngineError::UnknownSubscription`] for a non-durable or unknown id.
    pub fn resubscribe(&mut self, sub: SubscriptionId) -> Result<(), EngineError> {
        self.check_poisoned()?;
        let state = self
            .queries
            .get_mut(sub.query.0)
            .and_then(|slot| slot.state.as_mut())
            .ok_or(EngineError::UnknownSubscription(sub))?;
        let durable = state
            .durables
            .iter_mut()
            .find(|d| d.token == sub.token)
            .ok_or(EngineError::UnknownSubscription(sub))?;
        durable.probation();
        Ok(())
    }

    /// Drains every durable subscription's outbox now, ignoring backoff and
    /// quarantine gates (each gets at least one fresh attempt). Returns the
    /// total number of matches still undelivered afterwards — zero means
    /// every durable subscriber is fully caught up. Intended for shutdown
    /// and for tests; regular draining happens at the end of each `ingest`.
    pub fn flush_deliveries(&mut self) -> u64 {
        let start = self.telemetry.as_ref().map(|h| h.core.now_ns());
        let policy = self.config.retry_policy;
        let mut lag = 0;
        for slot in &mut self.queries {
            if let Some(state) = slot.state.as_mut() {
                for durable in &mut state.durables {
                    durable.drain(&policy, true);
                    lag += durable.lag();
                }
            }
        }
        if let (Some(h), Some(start)) = (&self.telemetry, start) {
            h.core
                .record(Stage::DeliveryFlush, h.core.now_ns().saturating_sub(start));
        }
        lag
    }

    /// End-of-ingest delivery pass: every durable subscription whose gates
    /// allow an attempt drains as much of its outbox as the destination
    /// accepts.
    fn drain_deliveries(&mut self) {
        let policy = self.config.retry_policy;
        for slot in &mut self.queries {
            if let Some(state) = slot.state.as_mut() {
                for durable in &mut state.durables {
                    durable.drain(&policy, false);
                }
            }
        }
    }

    /// Detaches a subscription (in-process or durable). The sink is dropped;
    /// a stale or unknown id is rejected. (Deregistering a query drops all
    /// its subscriptions at once.)
    pub fn unsubscribe(&mut self, sub: SubscriptionId) -> Result<(), EngineError> {
        self.check_poisoned()?;
        let state = self
            .queries
            .get_mut(sub.query.0)
            .and_then(|slot| slot.state.as_mut())
            .ok_or(EngineError::UnknownSubscription(sub))?;
        let before = state.subscribers.len() + state.durables.len();
        state.subscribers.retain(|s| s.token != sub.token);
        state.durables.retain(|d| d.token != sub.token);
        if state.subscribers.len() + state.durables.len() == before {
            return Err(EngineError::UnknownSubscription(sub));
        }
        Ok(())
    }

    /// Number of subscriptions on a query — durable ones and quarantined
    /// ones included (they stay registered so their health remains
    /// queryable).
    pub fn subscription_count(&self, handle: QueryHandle) -> Result<usize, EngineError> {
        let state = self.state(handle)?;
        Ok(state.subscribers.len() + state.durables.len())
    }

    /// Ids of the query's durable subscriptions, in registration order. An
    /// engine restored from an [`crate::EngineCheckpoint`] re-attaches
    /// durable subscriptions without handing back their original
    /// [`SubscriptionId`]s; this accessor recovers them so the caller can
    /// still [`Self::resubscribe`], [`Self::unsubscribe`] or query
    /// [`Self::subscription_health`] after a restore.
    pub fn durable_subscriptions(
        &self,
        handle: QueryHandle,
    ) -> Result<Vec<SubscriptionId>, EngineError> {
        let state = self.state(handle)?;
        Ok(state
            .durables
            .iter()
            .map(|d| SubscriptionId {
                query: handle.id(),
                token: d.token,
            })
            .collect())
    }

    /// Health of one subscription: [`SubscriptionHealth::Active`] while its
    /// sink is attached, [`SubscriptionHealth::Quarantined`] once a panic
    /// (or injected delivery error) during match delivery detached it. A
    /// quarantined subscription receives no further events; unsubscribe it
    /// and re-subscribe a fresh sink to resume delivery.
    pub fn subscription_health(
        &self,
        sub: SubscriptionId,
    ) -> Result<SubscriptionHealth, EngineError> {
        self.check_poisoned()?;
        let state = self
            .queries
            .get(sub.query.0)
            .and_then(|slot| slot.state.as_ref())
            .ok_or(EngineError::UnknownSubscription(sub))?;
        if let Some(subscription) = state.subscribers.iter().find(|s| s.token == sub.token) {
            return Ok(match &subscription.error {
                Some(message) => SubscriptionHealth::Quarantined(message.clone()),
                None => SubscriptionHealth::Active,
            });
        }
        let durable = state
            .durables
            .iter()
            .find(|d| d.token == sub.token)
            .ok_or(EngineError::UnknownSubscription(sub))?;
        Ok(match &durable.status {
            DeliveryStatus::Active => SubscriptionHealth::Active,
            DeliveryStatus::Degraded { failures } => SubscriptionHealth::Degraded {
                failures: *failures,
            },
            DeliveryStatus::Quarantined { reason } => {
                SubscriptionHealth::Quarantined(reason.clone())
            }
        })
    }

    // ------------------------------------------------------------------
    // Slot plumbing
    // ------------------------------------------------------------------

    fn rebuild_dispatch(&mut self) {
        self.dispatch.clear();
        self.classic_dispatch.clear();
        for (i, slot) in self.queries.iter().enumerate() {
            if let Some(state) = &slot.state {
                if !state.paused {
                    self.dispatch.push(i as u32);
                    if !state.shared {
                        self.classic_dispatch.push(i as u32);
                    }
                }
            }
        }
        // The shared path only pays off (and only changes the work profile)
        // when some primitive actually fans out; otherwise every query stays
        // on the classic loop and the index lies dormant. A live subtree
        // entry keeps the path active even with a single subscriber: a
        // covered query's private matcher never sees the covered leaves, so
        // the entry must be fed for as long as the subscription exists.
        self.sharing_active = self.config.shared_matching
            && (self.shared.sharing_possible() || self.subtree.has_entries());
    }

    /// Errors with [`EngineError::Poisoned`] once an uncontained shard
    /// failure has invalidated the engine's join state — the gate every
    /// fallible public method passes through.
    fn check_poisoned(&self) -> Result<(), EngineError> {
        match &self.poisoned {
            Some(reason) => Err(EngineError::Poisoned(reason.clone())),
            None => Ok(()),
        }
    }

    /// The uncontained-failure reason poisoning this engine, if any. While
    /// `Some`, every fallible method returns [`EngineError::Poisoned`];
    /// rebuild the engine (e.g. from a checkpoint) to recover.
    pub fn poison_reason(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    fn slot_mut(&mut self, handle: QueryHandle) -> Result<&mut QuerySlot, EngineError> {
        self.check_poisoned()?;
        match self.queries.get_mut(handle.id().0) {
            Some(slot) if slot.generation == handle.generation() && slot.state.is_some() => {
                Ok(slot)
            }
            _ => Err(EngineError::StaleHandle(handle)),
        }
    }

    fn state(&self, handle: QueryHandle) -> Result<&QueryState, EngineError> {
        self.check_poisoned()?;
        match self.queries.get(handle.id().0) {
            Some(slot) if slot.generation == handle.generation() => {
                slot.state.as_ref().ok_or(EngineError::StaleHandle(handle))
            }
            _ => Err(EngineError::StaleHandle(handle)),
        }
    }

    fn state_mut(&mut self, handle: QueryHandle) -> Result<&mut QueryState, EngineError> {
        self.slot_mut(handle)
            .map(|slot| slot.state.as_mut().expect("slot_mut checked liveness"))
    }

    fn extend_retention(&mut self, window: Duration) {
        if self.config.retention.is_some() {
            return; // explicit retention wins
        }
        let needed = Some(match self.graph.retention() {
            Some(current) if current.as_micros() >= window.as_micros() => current,
            _ => window,
        });
        self.graph.set_retention(needed);
    }

    // ------------------------------------------------------------------
    // Stream processing
    // ------------------------------------------------------------------

    /// Absorbs events from any [`Ingest`] source — a single `&EdgeEvent`, a
    /// slice or `Vec` of events, or an iterator wrapped in
    /// [`crate::EventBatch`] — returning the complete matches in arrival
    /// order. Matches are also fanned out to the per-query subscriptions.
    ///
    /// Batch sources report exactly the same matches as feeding the events
    /// one at a time; they additionally amortise the per-event overheads (one
    /// sink and one scratch set for the whole batch) and finish with a single
    /// partial-match prune covering the trailing sub-interval of the prune
    /// cadence.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardFailed`] when a sharded worker died during the
    /// call: with `degraded: true` the failure was contained (state
    /// transplanted onto surviving shards — the engine keeps serving, and
    /// this batch's matches were still delivered to subscriptions, though
    /// not returned here); with `degraded: false` the engine is poisoned
    /// and every subsequent call returns [`EngineError::Poisoned`]. Attach
    /// a subscription ([`Self::subscribe`]) to observe matches across
    /// degraded batches, or use [`Self::ingest_with`].
    pub fn ingest<B: Ingest>(&mut self, batch: B) -> Result<Vec<MatchEvent>, EngineError> {
        let mut sink = CollectingSink::new();
        self.ingest_with(batch, &mut sink)?;
        Ok(sink.into_events())
    }

    /// Like [`Self::ingest`], but delivers matches to `sink` instead of
    /// collecting them. Returns the number of matches emitted (fan-out to
    /// subscriptions does not multiply the count). On
    /// [`EngineError::ShardFailed`] with `degraded: true`, matches of the
    /// faulted batch have already reached `sink` — only the count is
    /// forfeited.
    pub fn ingest_with<B: Ingest>(
        &mut self,
        batch: B,
        sink: &mut dyn EventSink,
    ) -> Result<usize, EngineError> {
        self.check_poisoned()?;
        // Entry failpoint: fires before any state is touched, so a `Panic`
        // action unwinds with the engine still consistent. An `Error` action
        // is meaningless here (nothing has been mutated yet) and is ignored;
        // `Delay` exercises ingest-side latency.
        let _ = crate::failpoint::fire_at("ingest-front", 0);
        let trailing_prune = batch.is_batch();
        let start_seq = self.events_ingested;
        let mut emitted = 0usize;
        batch.drive(&mut |ev| emitted += self.process_event_inner(ev, sink));
        // The batch-boundary stages below cover the whole call; they are
        // timed when the call's sequence range contains a sampled event, and
        // that event's sequence number keys their spans.
        let batch_sample = self.telemetry.as_ref().and_then(|h| {
            h.core
                .first_sampled(start_seq, self.events_ingested)
                .map(|seq| (h.clone(), seq))
        });
        // Sharded queries join asynchronously; the end of the ingest call is
        // the quiescent point where their fan-in is flushed, in stream order.
        let fan_in_start = batch_sample.as_ref().map(|(h, _)| h.core.now_ns());
        emitted += self.flush_sharded(sink);
        if let (Some((h, seq)), Some(start)) = (&batch_sample, fan_in_start) {
            let dur = h.core.now_ns().saturating_sub(start);
            h.core.record(Stage::FanInDrain, dur);
            h.driver_ring.push(*seq, Stage::FanInDrain, start, dur);
        }
        // Cover the trailing partial prune interval so a sequence of batches
        // never carries more than `prune_every` edges of stale partials.
        // (`prune_async` inside records the expiry-sweep stage itself.)
        if trailing_prune && self.edges_since_prune > 0 {
            self.prune_now();
        }
        // Durable subscribers buffer their matches in per-subscription
        // outboxes during dispatch; the end of the ingest call is the one
        // point where delivery (with retry/backoff) is attempted.
        let flush_start = batch_sample.as_ref().map(|(h, _)| h.core.now_ns());
        self.drain_deliveries();
        if let (Some((h, seq)), Some(start)) = (&batch_sample, flush_start) {
            let dur = h.core.now_ns().saturating_sub(start);
            h.core.record(Stage::DeliveryFlush, dur);
            h.driver_ring.push(*seq, Stage::DeliveryFlush, start, dur);
        }
        self.surface_shard_failures()?;
        Ok(emitted)
    }

    /// Surfaces structured failures reported by sharded workers during this
    /// call. Under [`crate::ShardFailurePolicy::Degrade`] the failed shard's
    /// join state was transplanted onto a survivor and the engine keeps
    /// serving; under `FailFast` — or when no survivor was left to adopt
    /// the state — the engine poisons itself so later calls cannot silently
    /// under-report matches.
    fn surface_shard_failures(&mut self) -> Result<(), EngineError> {
        let mut failures: Vec<ShardFailure> = Vec::new();
        for slot in &mut self.queries {
            if let Some(state) = &mut slot.state {
                if let QueryExec::Sharded(sharded) = &mut state.exec {
                    failures.append(&mut sharded.take_failures());
                }
            }
        }
        let Some(first) = failures.into_iter().next() else {
            return Ok(());
        };
        if !first.degraded {
            self.poisoned = Some(first.message.clone());
        }
        Err(EngineError::ShardFailed {
            shard: first.shard,
            message: first.message,
            degraded: first.degraded,
        })
    }

    /// Drains every sharded query's completed-match fan-in: waits for the
    /// shard workers to quiesce, materialises the matches as [`MatchEvent`]s,
    /// and delivers them to each query's subscribers and to `sink` in
    /// arrival order — interleaved across queries by the stream position of
    /// the completing edge (ties fall back to query-slot order, matching the
    /// per-event dispatch order of the in-process path). Single-threaded
    /// queries emit inline and are untouched.
    fn flush_sharded(&mut self, sink: &mut dyn EventSink) -> usize {
        let mut completed: Vec<(u64, usize, PartialMatch)> = Vec::new();
        for (idx, slot) in self.queries.iter_mut().enumerate() {
            let Some(state) = slot.state.as_mut() else {
                continue;
            };
            let QueryExec::Sharded(sharded) = &mut state.exec else {
                continue;
            };
            for (seq, m) in sharded.take_completed() {
                completed.push((seq, idx, m));
            }
        }
        if completed.is_empty() {
            return 0;
        }
        // Stable: preserves each query's own (already seq-sorted) order.
        completed.sort_by_key(|(seq, _, _)| *seq);
        let graph = &self.graph;
        let policy = self.config.retry_policy;
        let mut emitted = 0usize;
        for (_, idx, m) in &completed {
            let slot = &mut self.queries[*idx];
            let handle = QueryHandle::new(QueryId(*idx), slot.generation);
            let state = slot
                .state
                .as_mut()
                .expect("matches were collected from a live slot");
            deliver_match(
                handle,
                &state
                    .exec
                    .plan()
                    .expect("sharded queries carry a plan")
                    .query,
                graph,
                m,
                &mut state.subscribers,
                &mut state.durables,
                &policy,
                sink,
            );
            emitted += 1;
        }
        self.events_emitted += emitted as u64;
        emitted
    }

    fn process_event_inner(&mut self, event: &EdgeEvent, sink: &mut dyn EventSink) -> usize {
        let seq = self.events_ingested;
        self.events_ingested += 1;
        // The hub is only cloned (two `Arc` bumps) for sampled events; for
        // every other event each instrumentation site below is one branch on
        // a `None`.
        let hub = self
            .telemetry
            .as_ref()
            .filter(|h| h.core.should_sample(seq))
            .cloned();
        let ingest_start = hub.as_ref().map(|h| h.core.now_ns());
        // 1. Update the graph.
        let result = self.graph.ingest(event);

        // 2. Update the summary (vertices, new edge, expired edges). The edge
        // is borrowed from the graph for the whole step — matchers, summary
        // and sinks all take the graph immutably, so no clone is needed.
        let Some(edge) = self.graph.edge(result.edge) else {
            // The event arrived so late that it is already outside the
            // retention horizon: the graph expired it on ingest. It cannot
            // participate in any within-window match (every edge it could
            // combine with has expired too), so only account the expiries it
            // caused and move on.
            for expired in &result.expired {
                if let Some(info) = self.live_edge_types.remove(*expired) {
                    if self.config.maintain_summary {
                        self.summary
                            .observe_expiry(info.src_vtype, info.etype, info.dst_vtype);
                    }
                }
            }
            if let (Some(h), Some(start)) = (&hub, ingest_start) {
                let dur = h.core.now_ns().saturating_sub(start);
                h.core.record(Stage::IngestFront, dur);
                h.driver_ring.push(seq, Stage::IngestFront, start, dur);
            }
            return 0;
        };
        if self.config.maintain_summary {
            if result.src_created {
                if let Some(v) = self.graph.vertex(result.src) {
                    self.summary.observe_vertex(v.vtype);
                }
            }
            if result.dst_created {
                if let Some(v) = self.graph.vertex(result.dst) {
                    self.summary.observe_vertex(v.vtype);
                }
            }
            self.summary.observe_insertion(&self.graph, edge);
        }
        let src_vtype = self
            .graph
            .vertex(edge.src)
            .map(|v| v.vtype)
            .unwrap_or(TypeId(0));
        let dst_vtype = self
            .graph
            .vertex(edge.dst)
            .map(|v| v.vtype)
            .unwrap_or(TypeId(0));
        self.live_edge_types.insert(
            edge.id,
            EdgeTypeInfo {
                etype: edge.etype,
                src_vtype,
                dst_vtype,
            },
        );
        for expired in &result.expired {
            if let Some(info) = self.live_edge_types.remove(*expired) {
                if self.config.maintain_summary {
                    self.summary
                        .observe_expiry(info.src_vtype, info.etype, info.dst_vtype);
                }
            }
        }

        if let (Some(h), Some(start)) = (&hub, ingest_start) {
            let dur = h.core.now_ns().saturating_sub(start);
            h.core.record(Stage::IngestFront, dur);
            h.driver_ring.push(seq, Stage::IngestFront, start, dur);
        }

        // 3. Matching. With sharing active, the anchored local search runs
        // once per distinct primitive in the shared index and every
        // embedding is fanned out — remapped through the subscriber's vertex
        // permutation — to each subscribing query's leaf, where the
        // per-query join climb proceeds exactly as on the classic path;
        // queries not covered by the index keep the classic loop. Without
        // sharing, every live, unpaused matcher (the dispatch table) runs
        // its own search. Sharded matchers only route here — their completed
        // matches surface at the next quiescent point (see `flush_sharded`).
        //
        // Telemetry: a sampled event's search work and climb work are
        // accumulated separately across every dispatch path below and
        // recorded once each, so one edge contributes one local-search and
        // one join-climb observation no matter how many queries it touched.
        // (A sharded matcher times its own front search and routing — see
        // `ShardedMatcher::process_edge_at` — so it is excluded here.)
        let match_start = hub.as_ref().map(|h| h.core.now_ns());
        let mut search_ns: Option<u64> = None;
        let mut climb_ns: Option<u64> = None;
        let mut emitted = 0usize;
        let mut complete = std::mem::take(&mut self.match_scratch);
        let graph = &self.graph;
        let policy = self.config.retry_policy;
        if self.sharing_active {
            let t0 = hub.as_ref().map(|h| h.core.now_ns());
            self.shared.search_edge(graph, edge);
            if let (Some(h), Some(t)) = (&hub, t0) {
                *search_ns.get_or_insert(0) += h.core.now_ns().saturating_sub(t);
            }
            let mut deliveries = std::mem::take(&mut self.delivery_scratch);
            deliveries.clear();
            self.shared.collect_deliveries(&mut deliveries);
            // (slot, leaf) order mirrors the classic loop's per-event query
            // order, so subscribers observe the same stream either way.
            deliveries.sort_unstable();
            let mut delivered = 0u64;
            let t0 = hub.as_ref().map(|h| h.core.now_ns());
            for d in &deliveries {
                let (results, sub) = self.shared.delivery(d);
                delivered += results.len() as u64;
                let slot = &mut self.queries[sub.slot as usize];
                let handle = QueryHandle::new(QueryId(sub.slot as usize), slot.generation);
                let state = slot
                    .state
                    .as_mut()
                    .expect("the fan-out only lists live queries");
                match &mut state.exec {
                    QueryExec::Single(matcher) => {
                        complete.clear();
                        for m in results {
                            matcher.absorb_embedding(sub.leaf, sub.remap(m), &mut complete);
                        }
                        for m in complete.drain(..) {
                            deliver_match(
                                handle,
                                &matcher.plan().query,
                                graph,
                                &m,
                                &mut state.subscribers,
                                &mut state.durables,
                                &policy,
                                sink,
                            );
                            emitted += 1;
                        }
                    }
                    QueryExec::Sharded(sharded) => {
                        for m in results {
                            sharded.absorb_embedding_at(sub.leaf, sub.remap(m), seq);
                        }
                    }
                    // RPQs never subscribe to the shared index (they have no
                    // leaf primitives to intern), so the fan-out cannot list
                    // one.
                    QueryExec::Rpq(_) => unreachable!("RPQ in shared fan-out"),
                }
            }
            if let (Some(h), Some(t)) = (&hub, t0) {
                *climb_ns.get_or_insert(0) += h.core.now_ns().saturating_sub(t);
            }
            self.shared.add_deliveries(delivered);
            self.delivery_scratch = deliveries;

            // Subtree fan-out: each shared subtree's anchored searches AND
            // join climb already ran once inside its entry (search_edge);
            // the joined matches are filtered by bound constants (lifted
            // entries), observation-gated per subscriber, remapped, and
            // absorbed at the subscriber's own node — for a whole-tree
            // subscription that is the root, where absorbed matches are
            // complete.
            if self.config.subtree_sharing {
                let t0 = hub.as_ref().map(|h| h.core.now_ns());
                self.subtree.search_edge(graph, edge);
                if let (Some(h), Some(t)) = (&hub, t0) {
                    *search_ns.get_or_insert(0) += h.core.now_ns().saturating_sub(t);
                }
                let mut deliveries = std::mem::take(&mut self.subtree_scratch);
                deliveries.clear();
                self.subtree.collect_deliveries(&mut deliveries);
                deliveries.sort_unstable();
                let t0 = hub.as_ref().map(|h| h.core.now_ns());
                let mut lifted_hits = 0u64;
                for d in &deliveries {
                    let (results, consts, sub, lifted) = self.subtree.delivery(d);
                    let slot = &mut self.queries[sub.slot as usize];
                    let handle = QueryHandle::new(QueryId(sub.slot as usize), slot.generation);
                    let state = slot
                        .state
                        .as_mut()
                        .expect("the fan-out only lists live queries");
                    let observed = &state.observed;
                    match &mut state.exec {
                        QueryExec::Single(matcher) => {
                            complete.clear();
                            for (i, m) in results.iter().enumerate() {
                                if lifted {
                                    match &consts[i] {
                                        Some(c) if c.as_slice() == sub.constants() => {
                                            lifted_hits += 1;
                                        }
                                        _ => continue,
                                    }
                                }
                                if !sub.admits(m, observed) {
                                    continue;
                                }
                                matcher.absorb_joined(sub.node, sub.remap(m), &mut complete);
                            }
                            for m in complete.drain(..) {
                                deliver_match(
                                    handle,
                                    &matcher.plan().query,
                                    graph,
                                    &m,
                                    &mut state.subscribers,
                                    &mut state.durables,
                                    &policy,
                                    sink,
                                );
                                emitted += 1;
                            }
                        }
                        QueryExec::Sharded(sharded) => {
                            for (i, m) in results.iter().enumerate() {
                                if lifted {
                                    match &consts[i] {
                                        Some(c) if c.as_slice() == sub.constants() => {
                                            lifted_hits += 1;
                                        }
                                        _ => continue,
                                    }
                                }
                                if !sub.admits(m, observed) {
                                    continue;
                                }
                                sharded.absorb_joined_at(sub.node, sub.remap(m), seq);
                            }
                        }
                        // RPQs never subscribe to the subtree index.
                        QueryExec::Rpq(_) => unreachable!("RPQ in subtree fan-out"),
                    }
                }
                if let (Some(h), Some(t)) = (&hub, t0) {
                    *climb_ns.get_or_insert(0) += h.core.now_ns().saturating_sub(t);
                }
                self.subtree.add_lifted_hits(lifted_hits);
                self.subtree_scratch = deliveries;
            }
        }
        let classic = if self.sharing_active {
            &self.classic_dispatch
        } else {
            &self.dispatch
        };
        for &idx in classic {
            let slot = &mut self.queries[idx as usize];
            let handle = QueryHandle::new(QueryId(idx as usize), slot.generation);
            let state = slot
                .state
                .as_mut()
                .expect("dispatch table only lists live queries");
            let matcher = match &mut state.exec {
                QueryExec::Single(matcher) => matcher,
                QueryExec::Sharded(sharded) => {
                    sharded.process_edge_at(graph, edge, seq);
                    continue;
                }
                QueryExec::Rpq(rpq) => {
                    // The second query class rides the same dispatch pass:
                    // path matches are materialised as events binding
                    // src/dst and delivered through the shared supervised
                    // emission point. Its delta expansion is all anchored
                    // search — no join climb — so its time lands there.
                    let mut paths = std::mem::take(&mut self.rpq_scratch);
                    paths.clear();
                    let t0 = hub.as_ref().map(|h| h.core.now_ns());
                    rpq.process_edge(graph, edge, &mut paths);
                    if let (Some(h), Some(t)) = (&hub, t0) {
                        *search_ns.get_or_insert(0) += h.core.now_ns().saturating_sub(t);
                    }
                    let name = rpq.query().name();
                    for p in paths.drain(..) {
                        let event = MatchEvent::from_path(handle, name, graph, &p);
                        deliver_event(
                            event,
                            &mut state.subscribers,
                            &mut state.durables,
                            &policy,
                            sink,
                        );
                        emitted += 1;
                    }
                    self.rpq_scratch = paths;
                    continue;
                }
            };
            complete.clear();
            if let Some(h) = &hub {
                // Sampled event: run `process_edge` as its two halves —
                // anchored search, then the join climb — so each half's time
                // lands in its own stage. Matches and counters are identical
                // to the fused path.
                let mut prims = std::mem::take(&mut self.primitive_scratch);
                prims.clear();
                let t0 = h.core.now_ns();
                matcher.primitive_matches_into(graph, edge, &mut prims);
                let t1 = h.core.now_ns();
                *search_ns.get_or_insert(0) += t1.saturating_sub(t0);
                for (leaf, m) in prims.drain(..) {
                    matcher.join_from(leaf, m, &mut complete);
                }
                *climb_ns.get_or_insert(0) += h.core.now_ns().saturating_sub(t1);
                self.primitive_scratch = prims;
            } else {
                matcher.process_edge(graph, edge, &mut complete);
            }
            for m in complete.drain(..) {
                deliver_match(
                    handle,
                    &matcher.plan().query,
                    graph,
                    &m,
                    &mut state.subscribers,
                    &mut state.durables,
                    &policy,
                    sink,
                );
                emitted += 1;
            }
        }
        if let (Some(h), Some(start)) = (&hub, match_start) {
            if let Some(ns) = search_ns {
                h.core.record(Stage::LocalSearch, ns);
                h.driver_ring.push(seq, Stage::LocalSearch, start, ns);
            }
            if let Some(ns) = climb_ns {
                h.core.record(Stage::JoinClimb, ns);
                h.driver_ring.push(seq, Stage::JoinClimb, start, ns);
            }
        }
        self.match_scratch = complete;
        self.events_emitted += emitted as u64;

        // 4. Periodic partial-match pruning. The cadence is preserved even
        // inside batches: deferring pruning to the batch boundary measurably
        // *hurts* (unpruned partial matches bloat the sibling collections
        // every join probes), so batching only amortises the trailing
        // partial interval, never a full `prune_every` window.
        self.edges_since_prune += 1;
        if self.edges_since_prune >= self.config.prune_every {
            self.prune_async();
        }
        emitted
    }

    /// Prunes expired partial matches in every live matcher immediately
    /// (paused queries included — their stale partials keep expiring). For
    /// sharded queries the sweeps run on the shard workers; this method
    /// waits for them, so metrics read afterwards reflect the prune — the
    /// mid-batch cadence prune uses a non-blocking internal variant to
    /// preserve pipelining.
    pub fn prune_now(&mut self) {
        self.prune_async();
        for slot in &mut self.queries {
            if let Some(state) = &mut slot.state {
                if let QueryExec::Sharded(sharded) = &mut state.exec {
                    sharded.sync();
                }
            }
        }
    }

    /// Starts a prune pass in every live matcher: in-process matchers sweep
    /// synchronously, sharded matchers enqueue sweep markers to their
    /// workers without waiting (their metrics catch up at the next
    /// quiescent point — a barrier or the end of the `ingest` call).
    fn prune_async(&mut self) {
        // Prunes are rare (once per `prune_every` edges), so they are timed
        // whenever telemetry is on rather than per-event sampled; sweeps that
        // run on shard workers record their own time there. No span: a sweep
        // covers a window, not one sampled edge.
        let start = self.telemetry.as_ref().map(|h| h.core.now_ns());
        let now = self.graph.now();
        for slot in &mut self.queries {
            if let Some(state) = &mut slot.state {
                state.exec.prune(now);
            }
        }
        self.subtree.prune(now);
        self.edges_since_prune = 0;
        if let (Some(h), Some(start)) = (&self.telemetry, start) {
            h.core
                .record(Stage::ExpirySweep, h.core.now_ns().saturating_sub(start));
        }
    }
}

impl std::fmt::Debug for ContinuousQueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContinuousQueryEngine")
            .field("queries", &self.query_count())
            .field("active", &self.dispatch.len())
            .field("graph", &self.graph.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BufferingSink, CountingSink};
    use streamworks_graph::Timestamp;
    use streamworks_query::QueryGraphBuilder;

    fn engine() -> ContinuousQueryEngine {
        ContinuousQueryEngine::builder().build().unwrap()
    }

    fn ev(src: &str, st: &str, dst: &str, dt: &str, et: &str, t: i64) -> EdgeEvent {
        EdgeEvent::new(src, st, dst, dt, et, Timestamp::from_secs(t))
    }

    fn common_keyword_query(window: Duration) -> QueryGraph {
        QueryGraphBuilder::new("common_keyword")
            .window(window)
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap()
    }

    #[test]
    fn register_and_match_via_dsl() {
        let mut engine = engine();
        let handle = engine
            .register_dsl(
                "QUERY pair WINDOW 1h MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)",
            )
            .unwrap();
        assert_eq!(engine.query_count(), 1);
        let e1 = engine
            .ingest(&ev("a1", "Article", "k1", "Keyword", "mentions", 10))
            .unwrap();
        assert!(e1.is_empty());
        let e2 = engine
            .ingest(&ev("a2", "Article", "k1", "Keyword", "mentions", 20))
            .unwrap();
        assert_eq!(e2.len(), 2);
        assert_eq!(e2[0].query, handle.id());
        assert_eq!(engine.events_emitted(), 2);
        assert_eq!(engine.metrics(handle).unwrap().complete_matches, 2);
    }

    #[test]
    fn window_is_enforced_end_to_end() {
        let mut engine = engine();
        engine
            .register_query(common_keyword_query(Duration::from_secs(30)))
            .unwrap();
        engine
            .ingest(&ev("a1", "Article", "k1", "Keyword", "mentions", 0))
            .unwrap();
        let matches = engine
            .ingest(&ev("a2", "Article", "k1", "Keyword", "mentions", 100))
            .unwrap();
        assert!(matches.is_empty());
        // A third article arriving close to the second *does* match with it.
        let matches = engine
            .ingest(&ev("a3", "Article", "k1", "Keyword", "mentions", 110))
            .unwrap();
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn retention_auto_extends_to_query_window() {
        let mut engine = engine();
        assert_eq!(engine.graph().retention(), None);
        engine
            .register_query(common_keyword_query(Duration::from_secs(600)))
            .unwrap();
        assert_eq!(engine.graph().retention(), Some(Duration::from_secs(600)));
        engine
            .register_query(common_keyword_query(Duration::from_secs(60)))
            .unwrap();
        // Retention keeps covering the largest window.
        assert_eq!(engine.graph().retention(), Some(Duration::from_secs(600)));
    }

    #[test]
    fn multiple_queries_run_side_by_side() {
        let mut engine = engine();
        let keyword_q = engine
            .register_query(common_keyword_query(Duration::from_hours(1)))
            .unwrap();
        let location_q = engine
            .register_dsl(
                "QUERY colocated WINDOW 1h MATCH (a1:Article)-[:located]->(l:Location), (a2:Article)-[:located]->(l)",
            )
            .unwrap();
        let events = [
            ev("a1", "Article", "k1", "Keyword", "mentions", 1),
            ev("a2", "Article", "k1", "Keyword", "mentions", 2),
            ev("a1", "Article", "paris", "Location", "located", 3),
            ev("a2", "Article", "paris", "Location", "located", 4),
        ];
        let all = engine.ingest(&events).unwrap();
        let keyword_hits = all.iter().filter(|e| e.query == keyword_q.id()).count();
        let location_hits = all.iter().filter(|e| e.query == location_q.id()).count();
        assert_eq!(keyword_hits, 2);
        assert_eq!(location_hits, 2);
    }

    #[test]
    fn summary_tracks_live_edges_through_expiry() {
        let mut engine = ContinuousQueryEngine::builder()
            .retention(Duration::from_secs(10))
            .build()
            .unwrap();
        engine
            .register_query(common_keyword_query(Duration::from_secs(10)))
            .unwrap();
        engine
            .ingest(&ev("a1", "Article", "k1", "Keyword", "mentions", 0))
            .unwrap();
        engine
            .ingest(&ev("a2", "Article", "k2", "Keyword", "mentions", 100))
            .unwrap();
        // The first edge expired; the summary's live edge count reflects that.
        let mentions = engine.graph().edge_type_id("mentions").unwrap();
        assert_eq!(engine.summary().types().edge_count(mentions), 1);
        assert_eq!(engine.graph().live_edge_count(), 1);
    }

    #[test]
    fn prune_keeps_partial_match_population_bounded() {
        let mut engine = ContinuousQueryEngine::builder()
            .prune_every(16)
            .build()
            .unwrap();
        let handle = engine
            .register_query_with(
                common_keyword_query(Duration::from_secs(5)),
                &streamworks_query::SelectivityOrdered {
                    max_primitive_size: 1,
                },
                TreeShapeKind::LeftDeep,
            )
            .unwrap();
        // A long stream of articles each mentioning their own keyword: no
        // matches, and partial matches should be pruned as time advances.
        for i in 0..500 {
            engine
                .ingest(&ev(
                    &format!("a{i}"),
                    "Article",
                    &format!("k{}", i % 7),
                    "Keyword",
                    "mentions",
                    i,
                ))
                .unwrap();
        }
        let metrics = engine.metrics(handle).unwrap();
        assert!(metrics.partial_matches_expired > 0);
        assert!(
            metrics.partial_matches_live < 100,
            "live partial matches should stay bounded, got {}",
            metrics.partial_matches_live
        );
    }

    #[test]
    fn replan_uses_learned_statistics_and_keeps_matching() {
        use streamworks_query::LeftDeepEdgeChain;
        let mut engine = engine();
        // Registered before any data: the plan is frequency-blind.
        let handle = engine
            .register_query_with(
                common_keyword_query(Duration::from_hours(1)),
                &LeftDeepEdgeChain,
                TreeShapeKind::LeftDeep,
            )
            .unwrap();
        assert_eq!(
            engine.plan(handle).unwrap().strategy,
            "left-deep-edge-chain"
        );

        engine
            .ingest(&ev("a1", "Article", "k1", "Keyword", "mentions", 1))
            .unwrap();
        engine
            .ingest(&ev("a2", "Article", "k2", "Keyword", "mentions", 2))
            .unwrap();

        // Re-plan with statistics; the strategy name changes and matching
        // continues to work for patterns completed entirely after the re-plan.
        engine
            .replan(
                handle,
                &SelectivityOrdered::default(),
                TreeShapeKind::LeftDeep,
            )
            .unwrap();
        assert_eq!(engine.plan(handle).unwrap().strategy, "selectivity-ordered");
        engine
            .ingest(&ev("a3", "Article", "k3", "Keyword", "mentions", 10))
            .unwrap();
        let matches = engine
            .ingest(&ev("a4", "Article", "k3", "Keyword", "mentions", 11))
            .unwrap();
        assert_eq!(matches.len(), 2);

        // Stale handles are rejected.
        let bogus = QueryHandle::new(QueryId(99), 0);
        assert!(engine
            .replan(
                bogus,
                &SelectivityOrdered::default(),
                TreeShapeKind::LeftDeep
            )
            .is_err());
    }

    #[test]
    fn events_resolve_bindings_to_external_keys() {
        let mut engine = engine();
        engine
            .register_query(common_keyword_query(Duration::from_hours(1)))
            .unwrap();
        engine
            .ingest(&ev("a1", "Article", "k1", "Keyword", "mentions", 1))
            .unwrap();
        let matches = engine
            .ingest(&ev("a2", "Article", "k1", "Keyword", "mentions", 2))
            .unwrap();
        let keys: Vec<_> = matches[0].bindings.iter().map(|b| b.key.as_str()).collect();
        assert!(keys.contains(&"a1"));
        assert!(keys.contains(&"a2"));
        assert!(keys.contains(&"k1"));
    }

    #[test]
    fn sharded_engine_reports_the_same_matches() {
        let mut single = engine();
        let mut sharded = ContinuousQueryEngine::builder().shards(3).build().unwrap();
        let mut handles = Vec::new();
        for e in [&mut single, &mut sharded] {
            handles.push(
                e.register_query(common_keyword_query(Duration::from_hours(1)))
                    .unwrap(),
            );
        }
        let events = vec![
            ev("a1", "Article", "k1", "Keyword", "mentions", 1),
            ev("a2", "Article", "k1", "Keyword", "mentions", 2),
            ev("a3", "Article", "k2", "Keyword", "mentions", 3),
            ev("a4", "Article", "k1", "Keyword", "mentions", 4),
        ];
        let expected = single.ingest(&events).unwrap();
        let got = sharded.ingest(&events).unwrap();
        // Same events in stream order (MatchEvent derives PartialEq).
        let mut expected_sorted = expected.clone();
        let mut got_sorted = got.clone();
        expected_sorted.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        got_sorted.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        assert_eq!(expected_sorted, got_sorted);
        assert_eq!(
            single.metrics(handles[0]).unwrap().complete_matches,
            sharded.metrics(handles[1]).unwrap().complete_matches
        );
        // Per-shard counters exist for the sharded engine only.
        assert_eq!(sharded.shard_metrics(handles[1]).unwrap().unwrap().len(), 3);
        assert!(single.shard_metrics(handles[0]).unwrap().is_none());
    }

    #[test]
    fn subscriptions_fan_out_per_query() {
        let mut engine = engine();
        let keyword_q = engine
            .register_query(common_keyword_query(Duration::from_hours(1)))
            .unwrap();
        let location_q = engine
            .register_dsl(
                "QUERY colocated WINDOW 1h MATCH (a1:Article)-[:located]->(l:Location), (a2:Article)-[:located]->(l)",
            )
            .unwrap();
        let (count_sink, keyword_count) = CountingSink::new();
        engine.subscribe(keyword_q, count_sink).unwrap();
        let (buffer_sink, location_buffer) = BufferingSink::new();
        let location_sub = engine.subscribe(location_q, buffer_sink).unwrap();
        assert_eq!(engine.subscription_count(keyword_q).unwrap(), 1);

        engine
            .ingest(&[
                ev("a1", "Article", "k1", "Keyword", "mentions", 1),
                ev("a2", "Article", "k1", "Keyword", "mentions", 2),
                ev("a1", "Article", "paris", "Location", "located", 3),
                ev("a2", "Article", "paris", "Location", "located", 4),
            ])
            .unwrap();
        // Each tenant saw only its own query's matches.
        assert_eq!(keyword_count.get(), 2);
        let location_events = location_buffer.drain();
        assert_eq!(location_events.len(), 2);
        assert!(location_events.iter().all(|e| e.query == location_q.id()));

        // Unsubscribing stops delivery; a second cancel of the same id fails.
        engine.unsubscribe(location_sub).unwrap();
        assert!(engine.unsubscribe(location_sub).is_err());
        engine
            .ingest(&[
                ev("a3", "Article", "paris", "Location", "located", 5),
                ev("a4", "Article", "paris", "Location", "located", 6),
            ])
            .unwrap();
        assert!(location_buffer.is_empty());
        assert_eq!(engine.subscription_count(location_q).unwrap(), 0);
    }

    #[test]
    fn observed_boundaries_stay_bounded_under_pause_resume_churn() {
        // A service throttling a query with periodic pause/resume must not
        // accumulate observation boundaries forever: intervals wholly behind
        // the retention horizon are trimmed as new boundaries are pushed.
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let handle = engine
            .register_query(common_keyword_query(Duration::from_secs(5)))
            .unwrap();
        for i in 0..50i64 {
            // Events 1000s apart with a 5s window: everything expires.
            engine
                .ingest(&ev(
                    &format!("a{i}"),
                    "Article",
                    "k",
                    "Keyword",
                    "mentions",
                    i * 1_000,
                ))
                .unwrap();
            engine.pause(handle).unwrap();
            engine.resume(handle).unwrap();
        }
        assert!(
            engine.observed_bounds(handle).len() <= 4,
            "boundaries behind the live horizon are trimmed, got {:?}",
            engine.observed_bounds(handle)
        );
    }

    #[test]
    fn invalid_config_panics_in_new() {
        let result = std::panic::catch_unwind(|| {
            ContinuousQueryEngine::new(EngineConfig {
                prune_every: 0,
                ..Default::default()
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn durable_subscriptions_deliver_and_report_metrics() {
        use crate::delivery::{memory_sink_contents, reset_memory_sink, SinkSpec};
        let key = "engine_durable_memory";
        reset_memory_sink(key);
        let mut engine = engine();
        let handle = engine
            .register_query(common_keyword_query(Duration::from_hours(1)))
            .unwrap();
        let sub = engine
            .subscribe_durable(handle, SinkSpec::Memory { key: key.into() })
            .unwrap();
        assert_eq!(engine.subscription_count(handle).unwrap(), 1);
        let events = [
            ev("a1", "Article", "k1", "Keyword", "mentions", 1),
            ev("a2", "Article", "k1", "Keyword", "mentions", 2),
        ];
        engine.ingest(&events).unwrap();
        // Delivery happens at the end of the ingest call, no flush needed.
        let lines = memory_sink_contents(key);
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.contains("common_keyword")));
        let m = engine.metrics(handle).unwrap();
        assert_eq!(m.delivery_attempts, 2);
        assert_eq!(m.delivery_retries, 0);
        assert_eq!(m.cursor_lag, 0);
        assert_eq!(engine.engine_metrics().delivery_attempts, 2);
        assert_eq!(
            engine.subscription_health(sub).unwrap(),
            SubscriptionHealth::Active
        );
        engine.unsubscribe(sub).unwrap();
        assert_eq!(engine.subscription_count(handle).unwrap(), 0);
        reset_memory_sink(key);
    }

    #[test]
    fn shared_buffer_drops_attribute_to_the_evicted_query_via_metrics() {
        let mut engine = engine();
        let q_kw = engine
            .register_query(common_keyword_query(Duration::from_hours(1)))
            .unwrap();
        let q_loc = engine
            .register_dsl(
                "QUERY colocated WINDOW 1h MATCH (a1:Article)-[:located]->(l:Location), (a2:Article)-[:located]->(l)",
            )
            .unwrap();
        // Both queries share one 2-slot DropOldest buffer.
        let (sink, _buffer) = BufferingSink::bounded(2, SinkOverflow::DropOldest);
        let shared = sink.share();
        engine.subscribe(q_kw, sink).unwrap();
        engine.subscribe(q_loc, shared).unwrap();
        // Two keyword matches fill the buffer, then two location matches
        // evict them: the drops belong to the *evicted* keyword query.
        let events = [
            ev("a1", "Article", "k1", "Keyword", "mentions", 1),
            ev("a2", "Article", "k1", "Keyword", "mentions", 2),
            ev("a1", "Article", "paris", "Location", "located", 3),
            ev("a2", "Article", "paris", "Location", "located", 4),
        ];
        engine.ingest(&events).unwrap();
        assert_eq!(engine.metrics(q_kw).unwrap().sink_events_dropped, 2);
        assert_eq!(engine.metrics(q_loc).unwrap().sink_events_dropped, 0);
    }
}
