//! The continuous-query engine: the "StreamWorks" system object.
//!
//! [`ContinuousQueryEngine`] ties the substrates together the way Fig. 1 of
//! the paper sketches: the dynamic graph store and its summaries are updated
//! by every incoming edge event, registered queries are planned against the
//! summaries, and each event is pushed through every query's incremental
//! SJ-Tree matcher, emitting [`MatchEvent`]s for completed patterns.

use crate::binding::PartialMatch;
use crate::config::EngineConfig;
use crate::event::{CollectingSink, EventSink, MatchEvent, QueryId};
use crate::metrics::QueryMetrics;
use crate::sj_matcher::SjTreeMatcher;
use streamworks_graph::{
    Duration, DynamicGraph, EdgeEvent, EdgeId, GraphConfig, GraphStats, TypeId,
};
use streamworks_query::{
    DecompositionStrategy, Planner, QueryError, QueryGraph, QueryPlan, SelectivityOrdered,
    TreeShapeKind,
};
use streamworks_summarize::GraphSummary;

/// Per-edge bookkeeping the engine needs after an edge has expired (the graph
/// drops expired edge records, so their type information is cached here).
#[derive(Debug, Clone, Copy)]
struct EdgeTypeInfo {
    etype: TypeId,
    src_vtype: TypeId,
    dst_vtype: TypeId,
}

/// Id-indexed storage for [`EdgeTypeInfo`], mirroring the graph's dense edge
/// slab: edge ids are sequential and expire nearly in order, so a deque with
/// a base offset replaces a hash map on the per-edge path. Stragglers that
/// would pin the band (timestamp-skewed producers) spill to a small overflow
/// map so memory stays proportional to the live edge count.
#[derive(Debug, Default)]
struct EdgeTypeSlab {
    base: u64,
    slots: std::collections::VecDeque<Option<EdgeTypeInfo>>,
    overflow: streamworks_graph::hash::FxHashMap<EdgeId, EdgeTypeInfo>,
    live: usize,
}

impl EdgeTypeSlab {
    fn insert(&mut self, id: EdgeId, info: EdgeTypeInfo) {
        if self.slots.is_empty() && self.overflow.is_empty() {
            self.base = id.0;
        }
        let Some(idx) = id.0.checked_sub(self.base) else {
            return; // before the live band: an edge that expired on ingest
        };
        let idx = idx as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].replace(info).is_none() {
            self.live += 1;
        }
        if self.slots.len() > 4 * self.live + 1024 {
            self.evict_stragglers();
        }
    }

    fn remove(&mut self, id: EdgeId) -> Option<EdgeTypeInfo> {
        let Some(idx) = id.0.checked_sub(self.base) else {
            let removed = self.overflow.remove(&id);
            if removed.is_some() {
                self.live -= 1;
            }
            return removed;
        };
        let info = self.slots.get_mut(idx as usize)?.take();
        if info.is_some() {
            self.live -= 1;
            while matches!(self.slots.front(), Some(None)) {
                self.slots.pop_front();
                self.base += 1;
            }
        }
        info
    }

    /// Spills live entries pinning the front of an oversized band into the
    /// overflow map (see `EdgeSlab::evict_stragglers` in `streamworks-graph`).
    fn evict_stragglers(&mut self) {
        while self.slots.len() > 4 * self.live + 1024 {
            match self.slots.pop_front() {
                Some(Some(info)) => {
                    self.overflow.insert(EdgeId(self.base), info);
                    self.base += 1;
                }
                Some(None) => self.base += 1,
                None => break,
            }
            while matches!(self.slots.front(), Some(None)) {
                self.slots.pop_front();
                self.base += 1;
            }
        }
    }
}

/// The StreamWorks continuous-query engine.
pub struct ContinuousQueryEngine {
    config: EngineConfig,
    graph: DynamicGraph,
    summary: GraphSummary,
    matchers: Vec<SjTreeMatcher>,
    /// Type info of live edges, used to update the summary on expiry.
    live_edge_types: EdgeTypeSlab,
    edges_since_prune: u64,
    events_emitted: u64,
    /// Reusable buffer for complete matches produced per event.
    match_scratch: Vec<PartialMatch>,
}

impl ContinuousQueryEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        let graph = DynamicGraph::new(GraphConfig {
            retention: config.retention,
            ..Default::default()
        });
        ContinuousQueryEngine {
            summary: GraphSummary::with_config(config.summary),
            graph,
            matchers: Vec::new(),
            live_edge_types: EdgeTypeSlab::default(),
            edges_since_prune: 0,
            events_emitted: 0,
            match_scratch: Vec::new(),
            config,
        }
    }

    /// Creates an engine with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Read access to the data graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Read access to the maintained graph summary.
    pub fn summary(&self) -> &GraphSummary {
        &self.summary
    }

    /// Basic counters of the underlying graph.
    pub fn graph_stats(&self) -> GraphStats {
        self.graph.stats()
    }

    /// Total number of match events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Overrides the emitted-event counter (used by checkpoint restore so the
    /// counter continues from its pre-restart value instead of double-counting
    /// the suppressed replay).
    pub(crate) fn set_events_emitted(&mut self, value: u64) {
        self.events_emitted = value;
    }

    // ------------------------------------------------------------------
    // Query registration
    // ------------------------------------------------------------------

    /// Registers a pre-built plan. Returns the query's id.
    pub fn register_plan(&mut self, plan: QueryPlan) -> QueryId {
        let id = QueryId(self.matchers.len());
        self.extend_retention(plan.query.window());
        let matcher =
            SjTreeMatcher::new(plan, &self.graph).with_match_cap(self.config.max_matches_per_node);
        self.matchers.push(matcher);
        id
    }

    /// Plans a query with the default (selectivity-ordered) strategy using the
    /// engine's current summaries, then registers it.
    pub fn register_query(&mut self, query: QueryGraph) -> Result<QueryId, QueryError> {
        self.register_query_with(
            query,
            &SelectivityOrdered::default(),
            TreeShapeKind::LeftDeep,
        )
    }

    /// Plans a query with an explicit decomposition strategy and tree shape,
    /// then registers it.
    pub fn register_query_with(
        &mut self,
        query: QueryGraph,
        strategy: &dyn DecompositionStrategy,
        tree_kind: TreeShapeKind,
    ) -> Result<QueryId, QueryError> {
        let plan = Planner::new()
            .with_statistics(&self.summary, &self.graph)
            .tree_kind(tree_kind)
            .plan_with(query, strategy)?;
        Ok(self.register_plan(plan))
    }

    /// Parses a DSL query (see `streamworks_query::parse_query`) and registers it.
    pub fn register_dsl(&mut self, text: &str) -> Result<QueryId, QueryError> {
        let query = streamworks_query::parse_query(text)?;
        self.register_query(query)
    }

    /// Re-plans an already-registered query using the engine's *current*
    /// statistics and replaces its matcher.
    ///
    /// Paper §4.3 lists "continuously collecting the statistics information
    /// from the data stream and updating the query decomposition" as future
    /// work; this method implements the mechanism. Partial matches accumulated
    /// under the old plan are discarded (they are keyed to the old SJ-Tree
    /// shape), so matches whose first edges arrived before the re-plan and
    /// whose last edges arrive after it may be missed — call it during quiet
    /// periods or accept the gap, exactly as a production system would.
    pub fn replan_query(
        &mut self,
        id: QueryId,
        strategy: &dyn DecompositionStrategy,
        tree_kind: TreeShapeKind,
    ) -> Result<(), QueryError> {
        let query = self
            .matchers
            .get(id.0)
            .ok_or_else(|| QueryError::InvalidDecomposition(format!("unknown query id {id:?}")))?
            .plan()
            .query
            .clone();
        let plan = Planner::new()
            .with_statistics(&self.summary, &self.graph)
            .tree_kind(tree_kind)
            .plan_with(query, strategy)?;
        let matcher =
            SjTreeMatcher::new(plan, &self.graph).with_match_cap(self.config.max_matches_per_node);
        self.matchers[id.0] = matcher;
        Ok(())
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.matchers.len()
    }

    /// The plan of a registered query.
    pub fn plan(&self, id: QueryId) -> Option<&QueryPlan> {
        self.matchers.get(id.0).map(|m| m.plan())
    }

    /// Metrics of a registered query.
    pub fn metrics(&self, id: QueryId) -> Option<QueryMetrics> {
        self.matchers.get(id.0).map(|m| m.metrics())
    }

    /// Metrics of every registered query, in registration order.
    pub fn all_metrics(&self) -> Vec<(QueryId, QueryMetrics)> {
        self.matchers
            .iter()
            .enumerate()
            .map(|(i, m)| (QueryId(i), m.metrics()))
            .collect()
    }

    /// Direct access to a registered matcher (used by experiments that inspect
    /// per-node match collections).
    pub fn matcher(&self, id: QueryId) -> Option<&SjTreeMatcher> {
        self.matchers.get(id.0)
    }

    fn extend_retention(&mut self, window: Duration) {
        if self.config.retention.is_some() {
            return; // explicit retention wins
        }
        let needed = Some(match self.graph.retention() {
            Some(current) if current.as_micros() >= window.as_micros() => current,
            _ => window,
        });
        self.graph.set_retention(needed);
    }

    // ------------------------------------------------------------------
    // Stream processing
    // ------------------------------------------------------------------

    /// Processes one edge event, returning the complete matches it produced.
    pub fn process(&mut self, event: &EdgeEvent) -> Vec<MatchEvent> {
        let mut sink = CollectingSink::new();
        self.process_with_sink(event, &mut sink);
        sink.into_events()
    }

    /// Processes one edge event, delivering matches to `sink`.
    /// Returns the number of matches emitted.
    pub fn process_with_sink(&mut self, event: &EdgeEvent, sink: &mut dyn EventSink) -> usize {
        self.process_event_inner(event, sink)
    }

    fn process_event_inner(&mut self, event: &EdgeEvent, sink: &mut dyn EventSink) -> usize {
        // 1. Update the graph.
        let result = self.graph.ingest(event);

        // 2. Update the summary (vertices, new edge, expired edges). The edge
        // is borrowed from the graph for the whole step — matchers, summary
        // and sinks all take the graph immutably, so no clone is needed.
        let Some(edge) = self.graph.edge(result.edge) else {
            // The event arrived so late that it is already outside the
            // retention horizon: the graph expired it on ingest. It cannot
            // participate in any within-window match (every edge it could
            // combine with has expired too), so only account the expiries it
            // caused and move on.
            for expired in &result.expired {
                if let Some(info) = self.live_edge_types.remove(*expired) {
                    if self.config.maintain_summary {
                        self.summary
                            .observe_expiry(info.src_vtype, info.etype, info.dst_vtype);
                    }
                }
            }
            return 0;
        };
        if self.config.maintain_summary {
            if result.src_created {
                if let Some(v) = self.graph.vertex(result.src) {
                    self.summary.observe_vertex(v.vtype);
                }
            }
            if result.dst_created {
                if let Some(v) = self.graph.vertex(result.dst) {
                    self.summary.observe_vertex(v.vtype);
                }
            }
            self.summary.observe_insertion(&self.graph, edge);
        }
        let src_vtype = self
            .graph
            .vertex(edge.src)
            .map(|v| v.vtype)
            .unwrap_or(TypeId(0));
        let dst_vtype = self
            .graph
            .vertex(edge.dst)
            .map(|v| v.vtype)
            .unwrap_or(TypeId(0));
        self.live_edge_types.insert(
            edge.id,
            EdgeTypeInfo {
                etype: edge.etype,
                src_vtype,
                dst_vtype,
            },
        );
        for expired in &result.expired {
            if let Some(info) = self.live_edge_types.remove(*expired) {
                if self.config.maintain_summary {
                    self.summary
                        .observe_expiry(info.src_vtype, info.etype, info.dst_vtype);
                }
            }
        }

        // 3. Run every registered matcher.
        let mut emitted = 0usize;
        let mut complete = std::mem::take(&mut self.match_scratch);
        for (idx, matcher) in self.matchers.iter_mut().enumerate() {
            complete.clear();
            matcher.process_edge(&self.graph, edge, &mut complete);
            for m in complete.drain(..) {
                let event =
                    MatchEvent::from_match(QueryId(idx), &matcher.plan().query, &self.graph, &m);
                sink.on_match(event);
                emitted += 1;
            }
        }
        self.match_scratch = complete;
        self.events_emitted += emitted as u64;

        // 4. Periodic partial-match pruning. The cadence is preserved even
        // inside batches: deferring pruning to the batch boundary measurably
        // *hurts* (unpruned partial matches bloat the sibling collections
        // every join probes), so batching only amortises the trailing
        // partial interval, never a full `prune_every` window.
        self.edges_since_prune += 1;
        if self.edges_since_prune >= self.config.prune_every {
            self.prune_now();
        }
        emitted
    }

    /// Processes a batch of events, returning all matches in arrival order.
    ///
    /// Reports exactly the same matches as calling [`Self::process`] per
    /// event. The batch path amortises the per-event overheads the streaming
    /// path cannot avoid — one sink and one scratch set are reused across the
    /// whole batch instead of materialising a `Vec<MatchEvent>` per event —
    /// and finishes with a single partial-match prune covering the trailing
    /// sub-interval of the prune cadence.
    pub fn process_batch<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a EdgeEvent>,
    ) -> Vec<MatchEvent> {
        let mut sink = CollectingSink::new();
        self.process_batch_with_sink(events, &mut sink);
        sink.into_events()
    }

    /// Batch twin of [`Self::process_with_sink`]; returns matches emitted.
    pub fn process_batch_with_sink<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a EdgeEvent>,
        sink: &mut dyn EventSink,
    ) -> usize {
        let mut emitted = 0usize;
        for ev in events {
            emitted += self.process_event_inner(ev, sink);
        }
        // Cover the trailing partial prune interval so a sequence of batches
        // never carries more than `prune_every` edges of stale partials.
        if self.edges_since_prune > 0 {
            self.prune_now();
        }
        emitted
    }

    /// Prunes expired partial matches in every matcher immediately.
    pub fn prune_now(&mut self) {
        let now = self.graph.now();
        for matcher in &mut self.matchers {
            matcher.prune(now);
        }
        self.edges_since_prune = 0;
    }
}

impl std::fmt::Debug for ContinuousQueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContinuousQueryEngine")
            .field("queries", &self.matchers.len())
            .field("graph", &self.graph.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::Timestamp;
    use streamworks_query::QueryGraphBuilder;

    fn ev(src: &str, st: &str, dst: &str, dt: &str, et: &str, t: i64) -> EdgeEvent {
        EdgeEvent::new(src, st, dst, dt, et, Timestamp::from_secs(t))
    }

    fn common_keyword_query(window: Duration) -> QueryGraph {
        QueryGraphBuilder::new("common_keyword")
            .window(window)
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap()
    }

    #[test]
    fn register_and_match_via_dsl() {
        let mut engine = ContinuousQueryEngine::with_defaults();
        let id = engine
            .register_dsl(
                "QUERY pair WINDOW 1h MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)",
            )
            .unwrap();
        assert_eq!(engine.query_count(), 1);
        let e1 = engine.process(&ev("a1", "Article", "k1", "Keyword", "mentions", 10));
        assert!(e1.is_empty());
        let e2 = engine.process(&ev("a2", "Article", "k1", "Keyword", "mentions", 20));
        assert_eq!(e2.len(), 2);
        assert_eq!(e2[0].query, id);
        assert_eq!(engine.events_emitted(), 2);
        assert_eq!(engine.metrics(id).unwrap().complete_matches, 2);
    }

    #[test]
    fn window_is_enforced_end_to_end() {
        let mut engine = ContinuousQueryEngine::with_defaults();
        engine
            .register_query(common_keyword_query(Duration::from_secs(30)))
            .unwrap();
        engine.process(&ev("a1", "Article", "k1", "Keyword", "mentions", 0));
        let matches = engine.process(&ev("a2", "Article", "k1", "Keyword", "mentions", 100));
        assert!(matches.is_empty());
        // A third article arriving close to the second *does* match with it.
        let matches = engine.process(&ev("a3", "Article", "k1", "Keyword", "mentions", 110));
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn retention_auto_extends_to_query_window() {
        let mut engine = ContinuousQueryEngine::with_defaults();
        assert_eq!(engine.graph().retention(), None);
        engine
            .register_query(common_keyword_query(Duration::from_secs(600)))
            .unwrap();
        assert_eq!(engine.graph().retention(), Some(Duration::from_secs(600)));
        engine
            .register_query(common_keyword_query(Duration::from_secs(60)))
            .unwrap();
        // Retention keeps covering the largest window.
        assert_eq!(engine.graph().retention(), Some(Duration::from_secs(600)));
    }

    #[test]
    fn multiple_queries_run_side_by_side() {
        let mut engine = ContinuousQueryEngine::with_defaults();
        let keyword_q = engine
            .register_query(common_keyword_query(Duration::from_hours(1)))
            .unwrap();
        let location_q = engine
            .register_dsl(
                "QUERY colocated WINDOW 1h MATCH (a1:Article)-[:located]->(l:Location), (a2:Article)-[:located]->(l)",
            )
            .unwrap();
        let events = [
            ev("a1", "Article", "k1", "Keyword", "mentions", 1),
            ev("a2", "Article", "k1", "Keyword", "mentions", 2),
            ev("a1", "Article", "paris", "Location", "located", 3),
            ev("a2", "Article", "paris", "Location", "located", 4),
        ];
        let all = engine.process_batch(events.iter());
        let keyword_hits = all.iter().filter(|e| e.query == keyword_q).count();
        let location_hits = all.iter().filter(|e| e.query == location_q).count();
        assert_eq!(keyword_hits, 2);
        assert_eq!(location_hits, 2);
    }

    #[test]
    fn summary_tracks_live_edges_through_expiry() {
        let mut engine = ContinuousQueryEngine::new(EngineConfig {
            retention: Some(Duration::from_secs(10)),
            ..Default::default()
        });
        engine
            .register_query(common_keyword_query(Duration::from_secs(10)))
            .unwrap();
        engine.process(&ev("a1", "Article", "k1", "Keyword", "mentions", 0));
        engine.process(&ev("a2", "Article", "k2", "Keyword", "mentions", 100));
        // The first edge expired; the summary's live edge count reflects that.
        let mentions = engine.graph().edge_type_id("mentions").unwrap();
        assert_eq!(engine.summary().types().edge_count(mentions), 1);
        assert_eq!(engine.graph().live_edge_count(), 1);
    }

    #[test]
    fn prune_keeps_partial_match_population_bounded() {
        let mut engine = ContinuousQueryEngine::new(EngineConfig {
            prune_every: 16,
            ..Default::default()
        });
        let id = engine
            .register_query_with(
                common_keyword_query(Duration::from_secs(5)),
                &streamworks_query::SelectivityOrdered {
                    max_primitive_size: 1,
                },
                TreeShapeKind::LeftDeep,
            )
            .unwrap();
        // A long stream of articles each mentioning their own keyword: no
        // matches, and partial matches should be pruned as time advances.
        for i in 0..500 {
            engine.process(&ev(
                &format!("a{i}"),
                "Article",
                &format!("k{}", i % 7),
                "Keyword",
                "mentions",
                i,
            ));
        }
        let metrics = engine.metrics(id).unwrap();
        assert!(metrics.partial_matches_expired > 0);
        assert!(
            metrics.partial_matches_live < 100,
            "live partial matches should stay bounded, got {}",
            metrics.partial_matches_live
        );
    }

    #[test]
    fn replan_uses_learned_statistics_and_keeps_matching() {
        use streamworks_query::LeftDeepEdgeChain;
        let mut engine = ContinuousQueryEngine::with_defaults();
        // Registered before any data: the plan is frequency-blind.
        let id = engine
            .register_query_with(
                common_keyword_query(Duration::from_hours(1)),
                &LeftDeepEdgeChain,
                TreeShapeKind::LeftDeep,
            )
            .unwrap();
        assert_eq!(engine.plan(id).unwrap().strategy, "left-deep-edge-chain");

        engine.process(&ev("a1", "Article", "k1", "Keyword", "mentions", 1));
        engine.process(&ev("a2", "Article", "k2", "Keyword", "mentions", 2));

        // Re-plan with statistics; the strategy name changes and matching
        // continues to work for patterns completed entirely after the re-plan.
        engine
            .replan_query(id, &SelectivityOrdered::default(), TreeShapeKind::LeftDeep)
            .unwrap();
        assert_eq!(engine.plan(id).unwrap().strategy, "selectivity-ordered");
        engine.process(&ev("a3", "Article", "k3", "Keyword", "mentions", 10));
        let matches = engine.process(&ev("a4", "Article", "k3", "Keyword", "mentions", 11));
        assert_eq!(matches.len(), 2);

        // Unknown ids are rejected.
        assert!(engine
            .replan_query(
                QueryId(99),
                &SelectivityOrdered::default(),
                TreeShapeKind::LeftDeep
            )
            .is_err());
    }

    #[test]
    fn events_resolve_bindings_to_external_keys() {
        let mut engine = ContinuousQueryEngine::with_defaults();
        engine
            .register_query(common_keyword_query(Duration::from_hours(1)))
            .unwrap();
        engine.process(&ev("a1", "Article", "k1", "Keyword", "mentions", 1));
        let matches = engine.process(&ev("a2", "Article", "k1", "Keyword", "mentions", 2));
        let keys: Vec<_> = matches[0].bindings.iter().map(|b| b.key.as_str()).collect();
        assert!(keys.contains(&"a1"));
        assert!(keys.contains(&"a2"));
        assert!(keys.contains(&"k1"));
    }
}
