//! Parallel execution: across queries and *within* one query.
//!
//! The paper's demo runs on a 48-core shared-memory node (§6.1). This module
//! provides both units of parallelism the reproduction supports:
//!
//! * **Across queries** — [`ParallelRunner`] shards a *registry* of queries
//!   over worker threads, each worker replaying the full stream through its
//!   own engine (graph and summaries replicated per worker). Exact semantics
//!   are trivial: each query's results depend only on the stream.
//! * **Within one query** — [`ShardedMatcher`] shards a *single* query's
//!   SJ-Tree match state by **join-key hash**, so one hot query — the
//!   real-time cyber regime StreamWorks targets — can use the whole machine
//!   instead of one core.
//!
//! # How single-query sharding works
//!
//! Two matches at sibling SJ-Tree nodes can only join when they agree on the
//! parent's cut vertices — the join key. Partitioning every node's match
//! collection by `hash(join key) % N` therefore never separates a joinable
//! pair: all the state one join could touch lives in exactly one shard.
//!
//! The calling thread (the engine's ingest thread) keeps the serial,
//! graph-dependent front end: graph updates and the anchored local search.
//! Each primitive embedding it finds is routed — over a crossbeam channel —
//! to the shard owning its join key. Shard workers own one
//! [`crate::SharedJoinStore`] per internal SJ-Tree node (the per-parent
//! shared index: one hash lookup covers probe *and* insert) and run the same
//! allocation-free probe/merge path as the single-threaded matcher. A merged
//! match climbing to the next internal node re-hashes under that node's cut;
//! if its new key belongs to a different shard it is handed off over the
//! worker's peer channels, which is how cross-shard joins at internal nodes
//! are met. Root-level combinations are complete matches and flow into a
//! single fan-in channel.
//!
//! The driver drains that fan-in and, at every quiescent point (the end of
//! each `ingest` call), releases the completed matches ordered by the stream
//! position of the edge that completed them — so a tenant's
//! [`crate::ContinuousQueryEngine::subscribe`] sink observes one unified,
//! correctly-ordered stream no matter how many cores the query runs on.
//!
//! Exactness: every (left, right) pair of sibling matches under one key meets
//! in exactly one shard, and whichever member is filed later probes the
//! earlier one — the same probe-before-store discipline as the in-process
//! matcher — so the emitted match multiset is identical to the
//! single-threaded engine's for any shard count (`tests/sharding.rs` asserts
//! this for 1/2/4/8 shards on both bundled workloads).
//!
//! # Using it through the engine
//!
//! Sharding is a deployment knob, not an API: build the engine with
//! [`crate::EngineBuilder::shards`] and every registered query runs sharded,
//! with subscriptions, pause/resume, deregistration and metrics behaving
//! exactly as in the single-threaded engine.
//!
//! ```
//! use streamworks_core::{BufferingSink, ContinuousQueryEngine};
//! use streamworks_graph::{EdgeEvent, Timestamp};
//!
//! // One query, four shards: the match state is spread over four workers.
//! let mut engine = ContinuousQueryEngine::builder().shards(4).build().unwrap();
//! let pairs = engine
//!     .register_dsl(
//!         "QUERY pair WINDOW 1h \
//!          MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)",
//!     )
//!     .unwrap();
//!
//! // The tenant's subscription sees one unified stream across all shards.
//! let (sink, seen) = BufferingSink::new();
//! engine.subscribe(pairs, sink).unwrap();
//!
//! let matches = engine.ingest(&[
//!     EdgeEvent::new("a1", "Article", "rust", "Keyword", "mentions", Timestamp::from_secs(10)),
//!     EdgeEvent::new("a2", "Article", "rust", "Keyword", "mentions", Timestamp::from_secs(20)),
//! ]).unwrap();
//! assert_eq!(matches.len(), 2); // same multiset as the 1-thread engine
//! assert_eq!(seen.drain().len(), 2);
//!
//! // Per-shard counters show how the state spread.
//! let per_shard = engine.shard_metrics(pairs).unwrap().unwrap();
//! assert_eq!(per_shard.len(), 4);
//! ```

use crate::binding::PartialMatch;
use crate::config::{EngineConfig, ShardFailurePolicy};
use crate::engine::ContinuousQueryEngine;
use crate::error::EngineError;
use crate::event::MatchEvent;
use crate::join::{self, NodeRoute, NO_PARENT};
use crate::match_store::{JoinKey, SharedJoinStore};
use crate::metrics::{QueryMetrics, ShardMetrics};
use crate::sj_matcher::SjTreeMatcher;
use crate::telemetry::{SpanRing, Stage, TelemetryCore, TraceSpan};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use streamworks_graph::hash::FxHasher;
use streamworks_graph::{Duration, DynamicGraph, Edge, EdgeEvent, Timestamp, VertexId};
use streamworks_query::{QueryGraph, QueryPlan, QueryVertexId, SjNodeId};

/// Renders a panic payload for error reporting: panics raised with a string
/// (the overwhelmingly common case — `panic!`, `expect`, assertion macros)
/// keep their message; anything else gets a placeholder.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Outcome of a parallel run.
#[derive(Debug)]
pub struct ParallelRunOutcome {
    /// All match events, ordered by (stream time, query name).
    pub events: Vec<MatchEvent>,
    /// Per-query metrics, keyed by query name, in registration order.
    pub metrics: Vec<(String, QueryMetrics)>,
    /// Number of edge events each worker processed (equal for all workers).
    pub edges_processed: usize,
    /// Number of worker threads used.
    pub workers: usize,
}

/// Shards registered queries across worker threads and replays a stream
/// through every shard in parallel.
#[derive(Debug, Clone)]
pub struct ParallelRunner {
    config: EngineConfig,
    workers: usize,
    queries: Vec<QueryGraph>,
}

impl ParallelRunner {
    /// Creates a runner with `workers` threads (clamped to at least 1).
    pub fn new(config: EngineConfig, workers: usize) -> Self {
        ParallelRunner {
            config,
            workers: workers.max(1),
            queries: Vec::new(),
        }
    }

    /// Registers a query; it will be planned by its worker at run time using
    /// that worker's (initially empty) statistics.
    pub fn register_query(&mut self, query: QueryGraph) -> &mut Self {
        self.queries.push(query);
        self
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Number of worker threads that will be used for the current registry.
    pub fn effective_workers(&self) -> usize {
        self.workers.min(self.queries.len()).max(1)
    }

    /// Replays `events` through every registered query, sharded across the
    /// worker threads, and merges the results. Each worker feeds its engine
    /// through the batched ingest path.
    ///
    /// The configuration is validated up front, so an invalid one surfaces as
    /// [`EngineError::InvalidConfig`] here instead of panicking inside a
    /// worker thread.
    pub fn run(&self, events: &[EdgeEvent]) -> Result<ParallelRunOutcome, EngineError> {
        self.config.validate().map_err(EngineError::InvalidConfig)?;
        if self.queries.is_empty() {
            return Ok(ParallelRunOutcome {
                events: Vec::new(),
                metrics: Vec::new(),
                edges_processed: events.len(),
                workers: 0,
            });
        }
        let workers = self.effective_workers();
        // Round-robin sharding keeps shards balanced in query count.
        let mut shards: Vec<Vec<QueryGraph>> = vec![Vec::new(); workers];
        for (i, q) in self.queries.iter().enumerate() {
            shards[i % workers].push(q.clone());
        }

        let config = self.config;
        type ShardResult = Result<(Vec<MatchEvent>, Vec<(String, QueryMetrics)>), EngineError>;
        let results: Vec<ShardResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    scope.spawn(move || -> Result<_, EngineError> {
                        let mut engine = ContinuousQueryEngine::new(config);
                        let mut registered = Vec::new();
                        for q in shard {
                            let handle = engine.register_query(q.clone())?;
                            registered.push((q.name().to_owned(), handle));
                        }
                        let matches = engine.ingest(events)?;
                        let metrics = registered
                            .into_iter()
                            .map(|(name, handle)| {
                                (name, engine.metrics(handle).unwrap_or_default())
                            })
                            .collect();
                        Ok((matches, metrics))
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(worker, h)| match h.join() {
                    Ok(result) => result,
                    // A panicking worker becomes a structured error, not a
                    // propagated panic: the caller learns which worker died
                    // and why, and the surviving workers' joins still ran.
                    Err(payload) => Err(EngineError::WorkerPanicked {
                        worker,
                        message: panic_message(payload.as_ref()),
                    }),
                })
                .collect()
        });

        let mut all_events = Vec::new();
        let mut all_metrics = Vec::new();
        for r in results {
            let (events, metrics) = r?;
            all_events.extend(events);
            all_metrics.extend(metrics);
        }
        all_events.sort_by(|a, b| a.at.cmp(&b.at).then(a.query_name.cmp(&b.query_name)));
        // Report metrics in the original registration order.
        all_metrics.sort_by_key(|(name, _)| {
            self.queries
                .iter()
                .position(|q| q.name() == name)
                .unwrap_or(usize::MAX)
        });
        Ok(ParallelRunOutcome {
            events: all_events,
            metrics: all_metrics,
            edges_processed: events.len(),
            workers,
        })
    }
}

// ---------------------------------------------------------------------------
// Single-query sharding
// ---------------------------------------------------------------------------

/// Routes a join key to its owning shard. Both the driver (for leaf matches)
/// and the workers (for merged matches climbing the tree) use this, so a
/// key's owner is a pure function of its projection.
#[inline]
fn shard_of(key: &[VertexId], shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    use std::hash::{Hash, Hasher};
    let mut hasher = FxHasher::default();
    for v in key {
        v.0.hash(&mut hasher);
    }
    // Fold the well-mixed high bits of the Fx product into the low bits
    // before reducing: the raw multiply keeps the key's low-bit patterns
    // (dense vertex ids would otherwise land on a subset of the shards).
    let mut h = hasher.finish();
    h ^= h >> 32;
    h ^= h >> 16;
    (h % shards as u64) as usize
}

/// Projects `m` onto `key_vertices` and returns the owning shard.
#[inline]
fn owner_of(m: &PartialMatch, key_vertices: &[QueryVertexId], shards: usize) -> usize {
    let mut key = JoinKey::new();
    let bound = m.binding.project_into(key_vertices, &mut key);
    debug_assert!(bound, "a node-complete match binds its join key");
    shard_of(&key, shards)
}

/// One routed unit of join work: a partial match to file at `node` (and join
/// upward from there). `seq` is the stream position of the producing edge.
struct RoutedMatch {
    node: SjNodeId,
    seq: u64,
    m: PartialMatch,
}

/// Matches buffered per destination before one channel send covers them all:
/// channel and wake-up costs are per *batch*, not per match, which is what
/// keeps the routed hot path cheap.
const ROUTE_BATCH: usize = 128;

/// Work items flowing into a shard worker.
enum ShardItem {
    /// A batch of routed matches (driver → shard, or shard → shard).
    Matches(Vec<RoutedMatch>),
    /// The join stores of a quarantined shard, to be merged into this
    /// worker's stores (the `Degrade` transplant; driver → survivor). Sent
    /// on the same channel as subsequent re-routed matches, so channel FIFO
    /// guarantees the state arrives before anything that probes it.
    Absorb(Vec<Option<SharedJoinStore>>),
    /// Expire stored matches whose earliest edge predates `cutoff`.
    Prune { cutoff: Timestamp },
    /// Drop the worker's channels and exit.
    Shutdown,
}

/// Control-plane messages from workers to the driver, carried on a channel
/// of their own (unbounded: fault traffic must never be able to jam behind
/// the data plane it is reporting about).
enum ShardSignal {
    /// The worker died (caught panic or injected error). Carries everything
    /// the driver needs to quarantine the shard: its join stores and the
    /// routed items it had accepted but not processed.
    Failed {
        shard: usize,
        message: String,
        stores: Vec<Option<SharedJoinStore>>,
        unprocessed: Vec<RoutedMatch>,
    },
    /// A batch that reached a quarantined shard, bounced back for
    /// re-routing. The batch's pending count travels with it — the relay
    /// does not decrement; the driver does, after re-routing — so
    /// quiescence can never be observed while an orphan is in flight.
    Orphan(Vec<RoutedMatch>),
    /// A `Degrade` transplant that reached a shard which *also* died before
    /// absorbing it, bounced back (count travelling, like [`Self::Orphan`])
    /// so the driver can re-home the state on a shard that is still live.
    OrphanStores(Vec<Option<SharedJoinStore>>),
}

/// One reported shard-worker failure (see [`ShardFailurePolicy`] and the
/// module docs). Obtained from [`ShardedMatcher::take_failures`] /
/// [`ShardedMatcher::terminal_failure`]; the engine folds these into
/// [`EngineError::ShardFailed`].
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Index of the shard whose worker died.
    pub shard: usize,
    /// The caught panic payload or injected failure description.
    pub message: String,
    /// True when the matcher quarantined the shard, transplanted its state
    /// and kept serving (`Degrade`); false when the matcher is now failed
    /// terminally (`FailFast`, or no survivor was left to degrade onto).
    pub degraded: bool,
}

/// Per-shard counters, shared between a worker and the driver. Workers batch
/// their updates per work item; the driver snapshots with relaxed loads
/// (exact at quiescent points — between `ingest` calls).
#[derive(Default)]
struct ShardCounters {
    items_routed: AtomicU64,
    handoffs_out: AtomicU64,
    inserted: AtomicU64,
    live: AtomicU64,
    expired: AtomicU64,
    joins_attempted: AtomicU64,
    joins_succeeded: AtomicU64,
    complete: AtomicU64,
    dropped_by_cap: AtomicU64,
    spills: AtomicU64,
}

impl ShardCounters {
    fn snapshot(&self) -> ShardMetrics {
        ShardMetrics {
            items_routed: self.items_routed.load(Ordering::Relaxed),
            handoffs_out: self.handoffs_out.load(Ordering::Relaxed),
            partial_matches_inserted: self.inserted.load(Ordering::Relaxed),
            partial_matches_live: self.live.load(Ordering::Relaxed),
            partial_matches_expired: self.expired.load(Ordering::Relaxed),
            joins_attempted: self.joins_attempted.load(Ordering::Relaxed),
            joins_succeeded: self.joins_succeeded.load(Ordering::Relaxed),
            complete_matches: self.complete.load(Ordering::Relaxed),
            matches_dropped_by_cap: self.dropped_by_cap.load(Ordering::Relaxed),
            binding_spills: self.spills.load(Ordering::Relaxed),
        }
    }
}

/// Join/store counters accumulated across one work batch, flushed to the
/// shared atomics once per batch.
#[derive(Default)]
struct BatchCounters {
    inserted: u64,
    joins_attempted: u64,
    joins_succeeded: u64,
    complete: u64,
    handoffs: u64,
    dropped: u64,
    spills: u64,
}

/// One shard worker: owns a [`SharedJoinStore`] per internal SJ-Tree node
/// covering the slice of the join-key space that hashes to it.
struct ShardWorker {
    id: usize,
    shards: usize,
    /// Per-node climb steps (see [`NodeRoute`]).
    routes: Vec<NodeRoute>,
    /// Per-node join key of the *next* level (`shape.join_key(node)`),
    /// indexed by node id — what a match merged at that node re-hashes on.
    next_keys: Vec<Vec<QueryVertexId>>,
    /// Store per node id; `Some` for internal nodes only (leaves store their
    /// matches in their parent's shared index, the root stores nothing).
    stores: Vec<Option<SharedJoinStore>>,
    rx: crossbeam::channel::Receiver<ShardItem>,
    /// Senders to every shard (self unused) for cross-shard handoffs.
    peers: Vec<crossbeam::channel::Sender<ShardItem>>,
    /// Per-peer buffers of outgoing handoffs, flushed as one batch each.
    /// Doubles as the local overflow escape valve when a peer's bounded
    /// channel is full: the batch stays here (its pending count already
    /// taken — see `handoff_counted`) and is retried from the run loop, so
    /// two workers whose channels fill simultaneously can never deadlock on
    /// each other's sends.
    handoff_buffers: Vec<Vec<RoutedMatch>>,
    /// Whether the owner's buffered batch already carries a pending count
    /// (set when a flush hit a full channel and the batch stayed local).
    handoff_counted: Vec<bool>,
    results: crossbeam::channel::Sender<Vec<(u64, PartialMatch)>>,
    /// Control-plane channel to the driver (failure reports and bounced
    /// orphan batches).
    faults: crossbeam::channel::Sender<ShardSignal>,
    /// Completed matches buffered during one work batch, sent as one message.
    completed_buffer: Vec<(u64, PartialMatch)>,
    pending: Arc<AtomicUsize>,
    counters: Arc<ShardCounters>,
    max_matches_per_node: Option<usize>,
    window: Duration,
    /// Scratch reused across items: pending (node, match) pairs local to
    /// this shard and merge results of one probe.
    stack: Vec<(SjNodeId, PartialMatch)>,
    merged: Vec<PartialMatch>,
    acc: BatchCounters,
    /// Observability hooks: the engine-shared histogram core plus this
    /// worker's own single-writer span ring. `None` when telemetry is off —
    /// the worker pays one branch per batch.
    telemetry: Option<(Arc<TelemetryCore>, Arc<SpanRing>)>,
}

impl ShardWorker {
    fn run(mut self) {
        loop {
            // While a handoff batch is parked on a full peer channel, poll
            // with a short timeout so the retry loop keeps making progress
            // even if nothing new arrives for this shard.
            let item = if self.has_blocked_handoffs() {
                match self.rx.recv_timeout(std::time::Duration::from_millis(1)) {
                    Ok(item) => Some(item),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            } else {
                match self.rx.recv() {
                    Ok(item) => Some(item),
                    Err(_) => return,
                }
            };
            if self.has_blocked_handoffs() {
                self.flush_handoffs();
            }
            let Some(item) = item else { continue };
            match item {
                ShardItem::Matches(batch) => {
                    self.counters
                        .items_routed
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    // A batch carrying a sampled edge times its whole climb
                    // (one histogram entry + one span, keyed by the sampled
                    // seq so the driver-side spans of the same event line
                    // up). Off-telemetry this is a single `None` branch.
                    let climb_sample = self.telemetry.as_ref().and_then(|(core, _)| {
                        batch
                            .iter()
                            .find(|r| core.should_sample(r.seq))
                            .map(|r| (r.seq, core.now_ns()))
                    });
                    // Supervision entry: an injected batch-entry fault (or
                    // a panic from it) fails the shard with the *whole*
                    // batch intact, which is what makes `Degrade` exact
                    // under the chaos suite's injected faults.
                    match catch_unwind(AssertUnwindSafe(|| {
                        crate::failpoint::fire_at("shard-worker", self.id)
                    })) {
                        Ok(false) => {}
                        Ok(true) => {
                            self.fail("injected shard-worker error".to_owned(), batch);
                            return;
                        }
                        Err(payload) => {
                            self.fail(panic_message(payload.as_ref()), batch);
                            return;
                        }
                    }
                    let mut items = batch.into_iter();
                    while let Some(routed) = items.next() {
                        // The per-item site fires *before* the climb, while
                        // the item is still whole: an injected fault loses
                        // nothing, so `Degrade` stays exact under it.
                        match catch_unwind(AssertUnwindSafe(|| {
                            crate::failpoint::fire_at("join-climb", self.id)
                        })) {
                            Ok(false) => {}
                            Ok(true) => {
                                let mut unprocessed = vec![routed];
                                unprocessed.extend(items);
                                self.fail("injected join-climb error".to_owned(), unprocessed);
                                return;
                            }
                            Err(payload) => {
                                let mut unprocessed = vec![routed];
                                unprocessed.extend(items);
                                self.fail(panic_message(payload.as_ref()), unprocessed);
                                return;
                            }
                        }
                        // A genuine mid-climb panic may have applied part of
                        // this one item's effects (documented best-effort),
                        // but `self` stays structurally valid: the stores
                        // are safe to transplant and the remaining items to
                        // re-route.
                        if let Err(payload) =
                            catch_unwind(AssertUnwindSafe(|| self.process(routed)))
                        {
                            let unprocessed: Vec<RoutedMatch> = items.collect();
                            self.fail(panic_message(payload.as_ref()), unprocessed);
                            return;
                        }
                    }
                    if let (Some((seq, start)), Some((core, ring))) =
                        (climb_sample, self.telemetry.as_ref())
                    {
                        let dur = core.now_ns().saturating_sub(start);
                        core.record(Stage::JoinClimb, dur);
                        ring.push(seq, Stage::JoinClimb, start, dur);
                    }
                    if !self.completed_buffer.is_empty() {
                        // The driver may already have dropped the receiver
                        // during shutdown; losing the matches is fine then.
                        let batch = std::mem::take(&mut self.completed_buffer);
                        let _ = self.results.send(batch);
                    }
                    self.flush_handoffs();
                    self.flush_counters();
                    // Decrement only after the batch (and every local
                    // descendant) is fully processed and its handoffs have
                    // been counted: `pending == 0` ⇒ globally quiescent. The
                    // worker that brings the counter to zero wakes the driver
                    // (possibly blocked in `wait_quiescent`) with an empty
                    // result batch, so the barrier never has to spin.
                    // (A handoff batch parked on a full peer channel keeps
                    // its own pending count until actually delivered, so
                    // this decrement can never fake quiescence.)
                    if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let _ = self.results.send(Vec::new());
                    }
                }
                ShardItem::Absorb(stores) => {
                    for (mine, theirs) in self.stores.iter_mut().zip(stores) {
                        if let (Some(mine), Some(theirs)) = (mine, theirs) {
                            mine.absorb(theirs);
                        }
                    }
                    self.publish_live();
                    if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let _ = self.results.send(Vec::new());
                    }
                }
                ShardItem::Prune { cutoff } => {
                    // Sweeps are rare (one marker per prune cadence), so
                    // every one is measured while telemetry is on. No span:
                    // sweeps have no owning edge seq on the worker side.
                    let sweep_start = self.telemetry.as_ref().map(|(core, _)| core.now_ns());
                    match catch_unwind(AssertUnwindSafe(|| {
                        if crate::failpoint::fire_at("expiry-sweep", self.id) {
                            panic!("injected expiry-sweep error");
                        }
                        self.prune(cutoff)
                    })) {
                        Ok(()) => {
                            if let (Some(start), Some((core, _))) =
                                (sweep_start, self.telemetry.as_ref())
                            {
                                core.record(
                                    Stage::ExpirySweep,
                                    core.now_ns().saturating_sub(start),
                                );
                            }
                            // Prune markers are counted in `pending` like
                            // match batches, so a barrier right after a prune
                            // also waits for the sweeps (metrics read exactly
                            // afterwards).
                            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                                let _ = self.results.send(Vec::new());
                            }
                        }
                        Err(payload) => {
                            self.fail(panic_message(payload.as_ref()), Vec::new());
                            return;
                        }
                    }
                }
                ShardItem::Shutdown => return,
            }
        }
        // Dropping `self` here releases the peer senders, letting sibling
        // workers (already shut down themselves) disconnect cleanly.
    }

    fn has_blocked_handoffs(&self) -> bool {
        self.handoff_counted.iter().any(|&c| c)
    }

    /// Terminal failure path: report everything the driver needs to contain
    /// the failure, then turn into a relay (`Self::relay`) so traffic routed
    /// here by the pure hash keeps flowing back for re-routing.
    fn fail(mut self, message: String, mut unprocessed: Vec<RoutedMatch>) {
        // Buffered outgoing handoffs that never took a pending count ride
        // along for re-routing; batches that already took one (parked on a
        // full peer) do too — their counts are released below.
        let mut parked_counts = 0usize;
        for (owner, buf) in self.handoff_buffers.iter_mut().enumerate() {
            if self.handoff_counted[owner] {
                parked_counts += 1;
            }
            unprocessed.append(buf);
        }
        // Flush matches completed before the failure: they are valid
        // outputs (the join discipline emitted them exactly once).
        if !self.completed_buffer.is_empty() {
            let batch = std::mem::take(&mut self.completed_buffer);
            let _ = self.results.send(batch);
        }
        self.flush_counters();
        let stores = std::mem::take(&mut self.stores);
        self.counters.live.store(0, Ordering::Relaxed);
        let _ = self.faults.send(ShardSignal::Failed {
            shard: self.id,
            message,
            stores,
            unprocessed,
        });
        // Release this batch's pending count — plus any parked handoff
        // counts — only *after* the fault (which carries their items) is in
        // the channel: the driver can then never observe quiescence with
        // the failure unseen, because `pending == 0` happens-after the
        // fault became receivable.
        let release = 1 + parked_counts;
        if self.pending.fetch_sub(release, Ordering::AcqRel) == release {
            let _ = self.results.send(Vec::new());
        }
        self.relay();
    }

    /// Post-failure mode: bounce every incoming batch back to the driver
    /// for re-routing (no pending decrement — the count travels with the
    /// orphan), acknowledge control markers, exit on shutdown. Routing
    /// stays a pure function of the join-key hash this way: peers keep
    /// sending here, and channel FIFO through the driver guarantees
    /// re-routed work reaches the adopting shard after its `Absorb`.
    fn relay(self) {
        while let Ok(item) = self.rx.recv() {
            match item {
                ShardItem::Matches(batch) => {
                    let _ = self.faults.send(ShardSignal::Orphan(batch));
                }
                ShardItem::Absorb(stores) => {
                    // A transplant aimed here just before this shard also
                    // died: bounce the state back (count travelling) so the
                    // driver can re-home it on a live shard.
                    let _ = self.faults.send(ShardSignal::OrphanStores(stores));
                }
                ShardItem::Prune { .. } => {
                    // Nothing to sweep here; just release the marker's
                    // count so barriers still complete.
                    if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let _ = self.results.send(Vec::new());
                    }
                }
                ShardItem::Shutdown => break,
            }
        }
    }

    /// The sharded twin of `SjTreeMatcher::insert_and_join`: the same
    /// `crate::join::probe_insert` step, plus cross-shard handoffs when a
    /// merged match's next join key hashes elsewhere.
    fn process(&mut self, routed: RoutedMatch) {
        let RoutedMatch { node, seq, m } = routed;
        let window = self.window;

        let mut stack = std::mem::take(&mut self.stack);
        let mut merged = std::mem::take(&mut self.merged);
        stack.push((node, m));
        while let Some((node, m)) = stack.pop() {
            if m.spilled() {
                self.acc.spills += 1;
            }
            let NodeRoute {
                parent,
                side,
                parent_is_root,
            } = self.routes[node.0];
            debug_assert_ne!(parent, NO_PARENT, "root matches are emitted, never filed");
            let parent = parent as usize;
            let store = self.stores[parent]
                .as_mut()
                .expect("internal node has a shared store");
            if let Some(cap) = self.max_matches_per_node {
                if store.side_len(side) >= cap {
                    self.acc.dropped += 1;
                    continue;
                }
            }

            merged.clear();
            let stats = join::probe_insert(store, side, m, window, &mut merged);
            self.acc.inserted += 1;
            self.acc.joins_attempted += stats.attempted;
            self.acc.joins_succeeded += stats.succeeded;

            for combined in merged.drain(..) {
                if parent_is_root {
                    self.acc.complete += 1;
                    if combined.spilled() {
                        self.acc.spills += 1;
                    }
                    self.completed_buffer.push((seq, combined));
                } else {
                    let owner = owner_of(&combined, &self.next_keys[parent], self.shards);
                    if owner == self.id {
                        stack.push((SjNodeId(parent), combined));
                    } else {
                        self.acc.handoffs += 1;
                        self.handoff_buffers[owner].push(RoutedMatch {
                            node: SjNodeId(parent),
                            seq,
                            m: combined,
                        });
                        if self.handoff_buffers[owner].len() >= ROUTE_BATCH {
                            self.flush_handoff_to(owner);
                        }
                    }
                }
            }
        }
        self.stack = stack;
        self.merged = merged;
    }

    /// Sends one buffered handoff batch with `try_send`. The pending
    /// increment happens *before* the send attempt, so the counter can
    /// never under-report in-flight work; on a full peer channel the batch
    /// stays parked locally (keeping its count — `handoff_counted`) and is
    /// retried from the run loop. A worker never blocks on a peer send,
    /// which is what makes two workers with mutually full channels unable
    /// to deadlock on each other.
    fn flush_handoff_to(&mut self, owner: usize) {
        if self.handoff_buffers[owner].is_empty() {
            return;
        }
        if !self.handoff_counted[owner] {
            self.pending.fetch_add(1, Ordering::Relaxed);
            self.handoff_counted[owner] = true;
        }
        let batch = std::mem::take(&mut self.handoff_buffers[owner]);
        match self.peers[owner].try_send(ShardItem::Matches(batch)) {
            Ok(()) => self.handoff_counted[owner] = false,
            Err(crossbeam::channel::TrySendError::Full(item)) => {
                let ShardItem::Matches(batch) = item else {
                    unreachable!("try_send returns the item it was given")
                };
                self.handoff_buffers[owner] = batch;
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                // Peer gone (shutdown teardown): the work is moot, but its
                // count must be released so barriers still complete.
                self.handoff_counted[owner] = false;
                if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _ = self.results.send(Vec::new());
                }
            }
        }
    }

    fn flush_handoffs(&mut self) {
        for owner in 0..self.handoff_buffers.len() {
            self.flush_handoff_to(owner);
        }
    }

    fn flush_counters(&mut self) {
        let acc = std::mem::take(&mut self.acc);
        let c = &self.counters;
        c.inserted.fetch_add(acc.inserted, Ordering::Relaxed);
        c.joins_attempted
            .fetch_add(acc.joins_attempted, Ordering::Relaxed);
        c.joins_succeeded
            .fetch_add(acc.joins_succeeded, Ordering::Relaxed);
        c.complete.fetch_add(acc.complete, Ordering::Relaxed);
        c.handoffs_out.fetch_add(acc.handoffs, Ordering::Relaxed);
        c.dropped_by_cap.fetch_add(acc.dropped, Ordering::Relaxed);
        c.spills.fetch_add(acc.spills, Ordering::Relaxed);
        self.publish_live();
    }

    fn prune(&mut self, cutoff: Timestamp) {
        let mut removed = 0usize;
        for store in self.stores.iter_mut().flatten() {
            removed += store.expire_older_than(cutoff);
        }
        self.counters
            .expired
            .fetch_add(removed as u64, Ordering::Relaxed);
        self.publish_live();
    }

    fn publish_live(&self) {
        let live: usize = self.stores.iter().flatten().map(SharedJoinStore::len).sum();
        self.counters.live.store(live as u64, Ordering::Relaxed);
    }
}

/// Sharded execution of **one** query's SJ-Tree: match state partitioned by
/// join-key hash across `N` worker threads, results fanned back in over a
/// crossbeam channel (see the module docs for the full design).
///
/// Most deployments use this through
/// [`crate::EngineBuilder::shards`] rather than directly: the engine routes
/// edges, flushes the fan-in at the end of every `ingest` call, and delivers
/// the unified stream to per-query subscriptions. Driving it by hand means
/// calling [`ShardedMatcher::process_edge`] per edge and
/// [`ShardedMatcher::take_completed`] at every point where results are
/// needed in order.
pub struct ShardedMatcher {
    /// Serial front end (shared with the single-threaded matcher): compiled
    /// constraints, anchor dispatch and local search. Its per-node stores
    /// stay empty — all join state lives in the shard workers.
    front: SjTreeMatcher,
    shards: usize,
    senders: Vec<crossbeam::channel::Sender<ShardItem>>,
    /// Per-shard buffers of routed matches; one channel send covers a batch.
    route_buffers: Vec<Vec<RoutedMatch>>,
    results_rx: crossbeam::channel::Receiver<Vec<(u64, PartialMatch)>>,
    /// Work items routed but not yet fully processed (including cross-shard
    /// handoffs); zero ⇔ the shards are quiescent.
    pending: Arc<AtomicUsize>,
    /// Control-plane fan-in: failure reports and orphan bounces (unbounded —
    /// fault traffic must never jam behind the data plane).
    faults_rx: crossbeam::channel::Receiver<ShardSignal>,
    /// Current owner of each *original* shard index's key slice. Identity
    /// until a `Degrade` quarantine re-homes a dead shard's slice onto a
    /// survivor. Only the driver consults it — workers always hash to
    /// original indices and a quarantined shard's relay bounces, which is
    /// what keeps re-routed work ordered after the survivor's `Absorb`.
    assignment: Vec<usize>,
    dead: Vec<bool>,
    policy: ShardFailurePolicy,
    /// Failures recorded but not yet drained by [`Self::take_failures`].
    failures: Vec<ShardFailure>,
    /// Terminal failure message: set under `FailFast`, or under `Degrade`
    /// once no live shard remains. New work is dropped from then on.
    failed: Option<String>,
    /// Reentrancy guard: fault handling re-routes through the draining
    /// send, which itself drains faults when blocked on a full channel.
    fault_guard: bool,
    counters: Vec<Arc<ShardCounters>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Stream position of the next edge (stamps completed matches so the
    /// fan-in can be released in stream order).
    seq: u64,
    /// Completed matches drained from the fan-in, awaiting release.
    completed: Vec<(u64, PartialMatch)>,
    complete_emitted: u64,
    /// Spill count for matches completed on the driver (single-leaf plans).
    driver_spills: u64,
    primitive_scratch: Vec<(SjNodeId, PartialMatch)>,
    /// Observability hooks on the driver side: the engine-shared histogram
    /// core plus the engine thread's span ring (local search and routing of
    /// sampled edges are timed here, where the two halves are visible).
    telemetry: Option<(Arc<TelemetryCore>, Arc<SpanRing>)>,
    /// Each worker's span ring, retained so snapshots can collect them.
    span_rings: Vec<Arc<SpanRing>>,
}

impl ShardedMatcher {
    /// Creates a sharded matcher for `plan` with `shards` worker threads
    /// (clamped to at least 1) and an optional per-shard, per-node cap on
    /// live partial matches. Channels default to a capacity of 1024 items
    /// and shard failures to [`ShardFailurePolicy::FailFast`]; use
    /// [`Self::with_options`] to choose either.
    pub fn new(
        plan: QueryPlan,
        graph: &DynamicGraph,
        shards: usize,
        max_matches_per_node: Option<usize>,
    ) -> Self {
        Self::with_options(
            plan,
            graph,
            shards,
            max_matches_per_node,
            1024,
            ShardFailurePolicy::FailFast,
        )
    }

    /// Like [`Self::new`], choosing the per-channel capacity (routing,
    /// handoff and fan-in channels are all bounded — a slow consumer
    /// backpressures the producer instead of growing an unbounded queue)
    /// and the [`ShardFailurePolicy`] applied when a shard worker dies.
    pub fn with_options(
        plan: QueryPlan,
        graph: &DynamicGraph,
        shards: usize,
        max_matches_per_node: Option<usize>,
        channel_capacity: usize,
        policy: ShardFailurePolicy,
    ) -> Self {
        Self::with_telemetry(
            plan,
            graph,
            shards,
            max_matches_per_node,
            channel_capacity,
            policy,
            None,
        )
    }

    /// [`Self::with_options`] plus the engine's telemetry hooks: the shared
    /// histogram core and the engine thread's span ring. Workers are spawned
    /// here, so the hooks must be present at construction; `None` disables
    /// all measurement (one branch per site).
    pub(crate) fn with_telemetry(
        plan: QueryPlan,
        graph: &DynamicGraph,
        shards: usize,
        max_matches_per_node: Option<usize>,
        channel_capacity: usize,
        policy: ShardFailurePolicy,
        telemetry: Option<(Arc<TelemetryCore>, Arc<SpanRing>)>,
    ) -> Self {
        let shards = shards.max(1);
        // Zero capacity would make every channel a rendezvous; clamp rather
        // than deadlock (the builder validates user-facing configs anyway).
        let channel_capacity = channel_capacity.max(1);
        // Everything the workers need from the plan is extracted up front
        // (stores, climb routes, next-level keys); the plan itself moves
        // into the driver-side front end.
        let routes = join::node_routes(&plan);
        let next_keys: Vec<Vec<QueryVertexId>> = plan
            .shape
            .nodes()
            .map(|n| plan.shape.join_key(n.id).to_vec())
            .collect();
        let cuts: Vec<Option<Vec<QueryVertexId>>> = plan
            .shape
            .nodes()
            .map(|n| n.children.map(|_| n.cut_vertices.clone()))
            .collect();
        let front = SjTreeMatcher::new(plan, graph);
        let window = front.window();
        let pending = Arc::new(AtomicUsize::new(0));
        let (results_tx, results_rx) = crossbeam::channel::bounded(channel_capacity);
        let (faults_tx, faults_rx) = crossbeam::channel::unbounded();

        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = crossbeam::channel::bounded(channel_capacity);
            senders.push(tx);
            receivers.push(rx);
        }
        let counters: Vec<Arc<ShardCounters>> = (0..shards)
            .map(|_| Arc::new(ShardCounters::default()))
            .collect();
        let span_rings: Vec<Arc<SpanRing>> = (0..shards)
            .map(|id| Arc::new(SpanRing::new(id as i64)))
            .collect();

        let workers = receivers
            .into_iter()
            .enumerate()
            .map(|(id, rx)| {
                let stores = cuts
                    .iter()
                    .map(|cut| cut.clone().map(SharedJoinStore::new))
                    .collect();
                let worker = ShardWorker {
                    id,
                    shards,
                    routes: routes.clone(),
                    next_keys: next_keys.clone(),
                    stores,
                    rx,
                    peers: senders.clone(),
                    handoff_buffers: (0..shards).map(|_| Vec::new()).collect(),
                    handoff_counted: vec![false; shards],
                    results: results_tx.clone(),
                    faults: faults_tx.clone(),
                    completed_buffer: Vec::new(),
                    pending: Arc::clone(&pending),
                    counters: Arc::clone(&counters[id]),
                    max_matches_per_node,
                    window,
                    stack: Vec::new(),
                    merged: Vec::new(),
                    acc: BatchCounters::default(),
                    telemetry: telemetry
                        .as_ref()
                        .map(|(core, _)| (Arc::clone(core), Arc::clone(&span_rings[id]))),
                };
                std::thread::Builder::new()
                    .name(format!("sw-shard-{id}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard worker thread")
            })
            .collect();

        ShardedMatcher {
            front,
            shards,
            senders,
            route_buffers: (0..shards).map(|_| Vec::new()).collect(),
            results_rx,
            pending,
            faults_rx,
            assignment: (0..shards).collect(),
            dead: vec![false; shards],
            policy,
            failures: Vec::new(),
            failed: None,
            fault_guard: false,
            counters,
            workers,
            seq: 0,
            completed: Vec::new(),
            complete_emitted: 0,
            driver_spills: 0,
            primitive_scratch: Vec::new(),
            telemetry,
            span_rings,
        }
    }

    /// Number of shard worker threads.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of shards still live (not quarantined).
    pub fn live_shards(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Shard failures recorded since the last call (drained). Call after a
    /// barrier ([`Self::sync`] / [`Self::take_completed`]) for an exact
    /// picture; the engine folds these into
    /// [`crate::EngineError::ShardFailed`].
    pub fn take_failures(&mut self) -> Vec<ShardFailure> {
        std::mem::take(&mut self.failures)
    }

    /// Terminal failure message, if the matcher has stopped accepting work:
    /// a shard died under [`ShardFailurePolicy::FailFast`], or under
    /// [`ShardFailurePolicy::Degrade`] with no survivor left to adopt its
    /// state.
    pub fn terminal_failure(&self) -> Option<&str> {
        self.failed.as_deref()
    }

    /// The plan this matcher executes.
    pub fn plan(&self) -> &QueryPlan {
        self.front.plan()
    }

    /// Blocks until every routed match and prune marker enqueued so far has
    /// been fully processed (completed matches stay buffered for the next
    /// [`Self::take_completed`]). Afterwards [`Self::metrics`] and
    /// [`Self::shard_metrics`] reflect all prior work exactly.
    pub fn sync(&mut self) {
        self.flush_routes();
        self.wait_quiescent();
    }

    /// The driver-side front end (local search state; its match stores are
    /// empty — join state lives in the shards).
    pub(crate) fn front(&self) -> &SjTreeMatcher {
        &self.front
    }

    /// Runs local search for one edge and routes every primitive embedding to
    /// the shard owning its join key. Complete matches surface later, through
    /// [`Self::take_completed`] — the shards process asynchronously, so the
    /// driver can pipeline the next edge's graph work while they join.
    ///
    /// The edge's stream position is taken from an internal per-matcher
    /// counter; a caller interleaving several matchers over one stream (the
    /// engine) should use [`Self::process_edge_at`] with a shared counter so
    /// positions are comparable across matchers.
    pub fn process_edge(&mut self, graph: &DynamicGraph, edge: &Edge) {
        let seq = self.seq;
        self.process_edge_at(graph, edge, seq);
    }

    /// Like [`Self::process_edge`] with an explicit stream position, which
    /// stamps any match this edge completes (see [`Self::take_completed`]).
    /// Positions must be non-decreasing across calls.
    pub fn process_edge_at(&mut self, graph: &DynamicGraph, edge: &Edge, seq: u64) {
        debug_assert!(
            seq >= self.seq.saturating_sub(1),
            "stream positions regress"
        );
        self.seq = seq + 1;
        let mut primitives = std::mem::take(&mut self.primitive_scratch);
        primitives.clear();
        // A sampled edge times the two driver-side halves separately — the
        // anchored local search and the join-key routing (including any
        // backpressure blocking in the send).
        let sampled = self
            .telemetry
            .as_ref()
            .filter(|(core, _)| core.should_sample(seq))
            .map(|(core, ring)| (Arc::clone(core), Arc::clone(ring)));
        let search_start = sampled.as_ref().map(|(core, _)| core.now_ns());
        self.front
            .primitive_matches_into(graph, edge, &mut primitives);
        let route_start = if let (Some((core, ring)), Some(start)) = (&sampled, search_start) {
            let now = core.now_ns();
            let dur = now.saturating_sub(start);
            core.record(Stage::LocalSearch, dur);
            ring.push(seq, Stage::LocalSearch, start, dur);
            Some(now)
        } else {
            None
        };
        for (leaf, m) in primitives.drain(..) {
            self.route_embedding(leaf, m, seq);
        }
        if let (Some((core, ring)), Some(start)) = (&sampled, route_start) {
            let dur = core.now_ns().saturating_sub(start);
            core.record(Stage::ShardRouting, dur);
            ring.push(seq, Stage::ShardRouting, start, dur);
        }
        self.primitive_scratch = primitives;
        // Opportunistic drain keeps the fan-in channel shallow mid-batch.
        while let Ok(results) = self.results_rx.try_recv() {
            self.completed.extend(results);
        }
    }

    /// Feeds one embedding produced by the engine's shared primitive index
    /// (already remapped into this query's vertex/edge space) into the
    /// sharded execution at `leaf`, stamped with stream position `seq` —
    /// the same routing tail as [`Self::process_edge_at`], minus the local
    /// search (the shared index ran it). `seq` only advances the matcher's
    /// position when it moves forward, since many embeddings of one event
    /// share a position.
    pub(crate) fn absorb_embedding_at(&mut self, leaf: SjNodeId, m: PartialMatch, seq: u64) {
        if seq >= self.seq {
            self.seq = seq + 1;
        }
        self.front.note_shared_embedding();
        self.route_timed(leaf, m, seq);
        // Opportunistic drain keeps the fan-in channel shallow mid-batch.
        while let Ok(results) = self.results_rx.try_recv() {
            self.completed.extend(results);
        }
    }

    /// Feeds one *joined* match produced by a shared subtree entry (already
    /// remapped into this query's space) into the sharded execution at
    /// `node` — the subscription point, an internal node or the root. Same
    /// routing tail as [`Self::absorb_embedding_at`], but no primitive match
    /// is counted: the searches and the joins below `node` ran inside the
    /// shared entry.
    pub(crate) fn absorb_joined_at(&mut self, node: SjNodeId, m: PartialMatch, seq: u64) {
        if seq >= self.seq {
            self.seq = seq + 1;
        }
        self.route_timed(node, m, seq);
        while let Ok(results) = self.results_rx.try_recv() {
            self.completed.extend(results);
        }
    }

    /// [`Self::route_embedding`] with routing-latency accounting for sampled
    /// edges — the shared-index fan-out entry points come through here, one
    /// embedding at a time, so only the histogram is fed (a span per
    /// embedding would flood the ring; end-to-end spans come from
    /// `process_edge_at` and the worker climbs).
    fn route_timed(&mut self, node: SjNodeId, m: PartialMatch, seq: u64) {
        let sampled = self
            .telemetry
            .as_ref()
            .filter(|(core, _)| core.should_sample(seq))
            .map(|(core, _)| Arc::clone(core));
        let start = sampled.as_ref().map(|core| core.now_ns());
        self.route_embedding(node, m, seq);
        if let (Some(core), Some(start)) = (sampled, start) {
            core.record(Stage::ShardRouting, core.now_ns().saturating_sub(start));
        }
    }

    /// Copies every worker span ring's live spans into `out` (the engine's
    /// snapshot path; call at quiescence for exact contents).
    pub(crate) fn collect_spans(&self, out: &mut Vec<TraceSpan>) {
        for ring in &self.span_rings {
            ring.collect_into(out);
        }
    }

    /// Routes one embedding into the sharded execution: a root-leaf
    /// embedding (single-primitive plan) is already a complete match and
    /// stays on the driver; anything else goes to the shard owning its join
    /// key, batched per [`ROUTE_BATCH`]. The single routing step both entry
    /// points — per-query local search and shared-index fan-out — go
    /// through.
    fn route_embedding(&mut self, leaf: SjNodeId, m: PartialMatch, seq: u64) {
        let root = self.front.plan().shape.root();
        if leaf == root {
            if m.spilled() {
                self.driver_spills += 1;
            }
            self.completed.push((seq, m));
        } else {
            let owner = owner_of(&m, self.front.plan().shape.join_key(leaf), self.shards);
            self.route_buffers[owner].push(RoutedMatch { node: leaf, seq, m });
            if self.route_buffers[owner].len() >= ROUTE_BATCH {
                self.flush_route_to(owner);
            }
        }
    }

    /// Sends one buffered route batch (pending incremented before the send,
    /// so quiescence can never be observed early).
    fn flush_route_to(&mut self, owner: usize) {
        if self.route_buffers[owner].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.route_buffers[owner]);
        self.send_counted(owner, ShardItem::Matches(batch));
    }

    /// Takes a pending count and delivers `item` to the shard currently
    /// owning original shard `owner`'s key slice. While the bounded channel
    /// is full the driver drains the fan-in and fault channels instead of
    /// blocking blind — every consumer keeps consuming, so no
    /// driver↔worker send cycle can deadlock. After a terminal failure the
    /// item is dropped and its count released.
    fn send_counted(&mut self, owner: usize, item: ShardItem) {
        self.pending.fetch_add(1, Ordering::Relaxed);
        let mut item = item;
        loop {
            if self.failed.is_some() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return;
            }
            let target = self.assignment[owner];
            item = match self.senders[target].try_send(item) {
                Ok(()) => return,
                Err(crossbeam::channel::TrySendError::Full(back)) => {
                    while let Ok(results) = self.results_rx.try_recv() {
                        self.completed.extend(results);
                    }
                    self.handle_faults();
                    // Park briefly on the fan-in: a worker finishing a batch
                    // wakes us, and the timeout bounds the wait if the
                    // target is merely slow.
                    if let Ok(results) = self
                        .results_rx
                        .recv_timeout(std::time::Duration::from_millis(1))
                    {
                        self.completed.extend(results);
                    }
                    back
                }
                Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                    // Worker gone (teardown): drop the work, release the
                    // count so barriers still complete.
                    self.pending.fetch_sub(1, Ordering::AcqRel);
                    return;
                }
            };
        }
    }

    /// Drains the control-plane channel: quarantines failed shards and
    /// re-routes bounced work. Guarded against reentry — re-routing goes
    /// through [`Self::send_counted`], which calls back here when blocked.
    fn handle_faults(&mut self) {
        if self.fault_guard {
            return;
        }
        self.fault_guard = true;
        while let Ok(signal) = self.faults_rx.try_recv() {
            match signal {
                ShardSignal::Failed {
                    shard,
                    message,
                    stores,
                    unprocessed,
                } => self.on_shard_failed(shard, message, stores, unprocessed),
                ShardSignal::Orphan(batch) => self.on_orphan(batch),
                ShardSignal::OrphanStores(stores) => self.on_orphan_stores(stores),
            }
        }
        self.fault_guard = false;
    }

    /// Applies one shard failure under the configured policy. `FailFast`
    /// (or `Degrade` with no survivor left) fails the matcher terminally;
    /// `Degrade` re-homes the dead shard's key slice onto the first live
    /// shard, transplants its join stores wholesale (exact: the slices are
    /// disjoint, so nothing is re-probed) and re-routes the items the dead
    /// worker had accepted but not processed. The `Absorb` is sent before
    /// any re-routed item on the same channel, so FIFO guarantees the
    /// survivor's state is in place before anything probes it.
    fn on_shard_failed(
        &mut self,
        shard: usize,
        message: String,
        stores: Vec<Option<SharedJoinStore>>,
        unprocessed: Vec<RoutedMatch>,
    ) {
        debug_assert!(!self.dead[shard], "a worker reports failure once");
        self.dead[shard] = true;
        let survivor = (0..self.shards).find(|&s| !self.dead[s]);
        let survivor = match (self.policy, survivor) {
            (ShardFailurePolicy::Degrade, Some(s)) => s,
            _ => {
                self.failures.push(ShardFailure {
                    shard,
                    message: message.clone(),
                    degraded: false,
                });
                if self.failed.is_none() {
                    self.failed = Some(message);
                }
                return; // the stores and unprocessed items die with the matcher
            }
        };
        for owner in &mut self.assignment {
            if *owner == shard {
                *owner = survivor;
            }
        }
        self.failures.push(ShardFailure {
            shard,
            message,
            degraded: true,
        });
        self.send_counted(survivor, ShardItem::Absorb(stores));
        self.reroute(unprocessed);
    }

    /// Re-routes recovered items. Their owner hash is unchanged — routing
    /// is a pure function of the join key — only the owner→shard mapping
    /// has moved, and [`Self::send_counted`] applies it.
    fn reroute(&mut self, items: Vec<RoutedMatch>) {
        if items.is_empty() {
            return;
        }
        let mut per_owner: Vec<Vec<RoutedMatch>> = (0..self.shards).map(|_| Vec::new()).collect();
        for routed in items {
            let owner = owner_of(
                &routed.m,
                self.front.plan().shape.join_key(routed.node),
                self.shards,
            );
            per_owner[owner].push(routed);
        }
        for (owner, batch) in per_owner.into_iter().enumerate() {
            if !batch.is_empty() {
                self.send_counted(owner, ShardItem::Matches(batch));
            }
        }
    }

    /// A batch bounced off a quarantined shard: re-route it, then release
    /// the count that travelled with it (new counts were taken first, so
    /// pending can never dip to zero with the work still in flight).
    fn on_orphan(&mut self, batch: Vec<RoutedMatch>) {
        if self.failed.is_none() {
            self.reroute(batch);
        }
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    /// A transplant bounced off a shard that died before absorbing it:
    /// re-home the state on a shard that is still live.
    fn on_orphan_stores(&mut self, stores: Vec<Option<SharedJoinStore>>) {
        if self.failed.is_none() {
            if let Some(survivor) = (0..self.shards).find(|&s| !self.dead[s]) {
                self.send_counted(survivor, ShardItem::Absorb(stores));
            }
        }
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    fn flush_routes(&mut self) {
        for owner in 0..self.route_buffers.len() {
            self.flush_route_to(owner);
        }
    }

    /// Waits for the shards to quiesce, then returns every completed match
    /// accumulated since the last call, sorted by the stream position of the
    /// completing edge (ties keep fan-in arrival order).
    pub fn take_completed(&mut self) -> Vec<(u64, PartialMatch)> {
        self.flush_routes();
        self.wait_quiescent();
        while let Ok(results) = self.results_rx.try_recv() {
            self.completed.extend(results);
        }
        let mut out = std::mem::take(&mut self.completed);
        out.sort_by_key(|(seq, _)| *seq);
        self.complete_emitted += out.len() as u64;
        out
    }

    /// Sends a prune marker to every shard; stored matches whose earliest
    /// edge predates `now - window` are expired asynchronously (call
    /// [`Self::sync`] or [`Self::take_completed`] afterwards to observe the
    /// sweeps in the metrics). A merged match handed off between shards
    /// concurrently with the markers may be filed after the sweep and live
    /// until the next prune — harmless for match output (out-of-window
    /// state can never complete a match), but `partial_matches_live` can
    /// transiently read high, and with a per-node cap set, which matches
    /// are dropped near the cap can vary run to run.
    pub fn prune(&mut self, now: Timestamp) {
        // Route buffered matches first so the prune marker never overtakes
        // work produced before it.
        self.flush_routes();
        let cutoff = now.minus(self.front.window());
        for shard in 0..self.shards {
            // Quarantined shards have nothing to sweep (their state moved
            // to a survivor, which gets its own marker).
            if self.dead[shard] {
                continue;
            }
            self.send_counted(shard, ShardItem::Prune { cutoff });
        }
    }

    /// Aggregated metrics: driver-side local-search counters plus the sum of
    /// the per-shard join/store counters (exact between `ingest` calls).
    pub fn metrics(&self) -> QueryMetrics {
        let mut m = self.front.metrics();
        m.complete_matches = self.complete_emitted;
        m.binding_spills += self.driver_spills;
        for c in &self.counters {
            let s = c.snapshot();
            m.partial_matches_inserted += s.partial_matches_inserted;
            m.partial_matches_live += s.partial_matches_live;
            m.partial_matches_expired += s.partial_matches_expired;
            m.joins_attempted += s.joins_attempted;
            m.joins_succeeded += s.joins_succeeded;
            m.matches_dropped_by_cap += s.matches_dropped_by_cap;
            m.binding_spills += s.binding_spills;
        }
        m
    }

    /// Per-shard counter snapshot, in shard order.
    pub fn shard_metrics(&self) -> Vec<ShardMetrics> {
        self.counters.iter().map(|c| c.snapshot()).collect()
    }

    /// Blocks until every routed work item (including cross-shard handoffs)
    /// has been fully processed. The wait parks on the result channel — the
    /// last worker to go idle sends a wake — so the driver never burns a
    /// core spinning while the shards drain their queues.
    fn wait_quiescent(&mut self) {
        loop {
            while let Ok(results) = self.results_rx.try_recv() {
                self.completed.extend(results);
            }
            self.handle_faults();
            if self.pending.load(Ordering::Acquire) == 0 {
                // A failing worker publishes its fault *before* releasing
                // its pending count, so at pending == 0 any failure — and
                // any orphan still carrying a count was already nonzero —
                // is receivable: drain once more and re-check, since
                // handling may have re-routed work (new counts).
                self.handle_faults();
                if self.pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                continue;
            }
            if self
                .workers
                .iter()
                .all(std::thread::JoinHandle::is_finished)
            {
                self.handle_faults();
                break; // every worker exited; don't hang the driver
            }
            // The timeout only matters if a worker dies without decrementing
            // the pending counter (a bug); it turns a hang into a stall.
            match self
                .results_rx
                .recv_timeout(std::time::Duration::from_millis(50))
            {
                Ok(results) => self.completed.extend(results),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        }
    }
}

impl Drop for ShardedMatcher {
    fn drop(&mut self) {
        // Quiesce first so no worker is mid-handoff, then shut them down in
        // order; workers drop their peer senders as they exit.
        self.flush_routes();
        self.wait_quiescent();
        for tx in &self.senders {
            let _ = tx.send(ShardItem::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ShardedMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMatcher")
            .field("query", &self.front.plan().query.name())
            .field("shards", &self.shards)
            .field("live_shards", &self.live_shards())
            .field("pending", &self.pending.load(Ordering::Relaxed))
            .field("failed", &self.failed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{Duration, Timestamp};
    use streamworks_query::QueryGraphBuilder;

    fn pair_query(name: &str, etype: &str) -> QueryGraph {
        QueryGraphBuilder::new(name)
            .window(Duration::from_hours(1))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", etype, "k")
            .edge("a2", etype, "k")
            .build()
            .unwrap()
    }

    fn stream() -> Vec<EdgeEvent> {
        let mut events = Vec::new();
        for i in 0..30i64 {
            events.push(EdgeEvent::new(
                format!("a{}", i % 6),
                "Article",
                format!("k{}", i % 3),
                "Keyword",
                if i % 2 == 0 { "mentions" } else { "cites" },
                Timestamp::from_secs(i * 5),
            ));
        }
        events
    }

    #[test]
    fn parallel_run_matches_sequential_run() {
        let queries = vec![
            pair_query("mentions_pair", "mentions"),
            pair_query("cites_pair", "cites"),
        ];
        let events = stream();

        // Sequential reference.
        let mut sequential = ContinuousQueryEngine::builder().build().unwrap();
        for q in &queries {
            sequential.register_query(q.clone()).unwrap();
        }
        let mut seq_events = Vec::new();
        for ev in &events {
            seq_events.extend(sequential.ingest(ev).unwrap());
        }

        // Parallel runs with 1, 2 and 4 workers all agree with it.
        for workers in [1usize, 2, 4] {
            let mut runner = ParallelRunner::new(EngineConfig::default(), workers);
            for q in &queries {
                runner.register_query(q.clone());
            }
            let outcome = runner.run(&events).unwrap();
            assert_eq!(outcome.events.len(), seq_events.len(), "workers={workers}");
            assert_eq!(outcome.edges_processed, events.len());
            assert_eq!(outcome.metrics.len(), 2);
            let total: u64 = outcome
                .metrics
                .iter()
                .map(|(_, m)| m.complete_matches)
                .sum();
            assert_eq!(total as usize, seq_events.len());
        }
    }

    #[test]
    fn invalid_config_is_an_error_not_a_worker_panic() {
        let mut runner = ParallelRunner::new(
            EngineConfig {
                prune_every: 0,
                ..EngineConfig::default()
            },
            2,
        );
        runner.register_query(pair_query("p", "mentions"));
        match runner.run(&stream()) {
            Err(crate::error::EngineError::InvalidConfig(msg)) => {
                assert!(msg.contains("prune_every"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn empty_registry_is_a_noop() {
        let runner = ParallelRunner::new(EngineConfig::default(), 4);
        let outcome = runner.run(&stream()).unwrap();
        assert!(outcome.events.is_empty());
        assert_eq!(outcome.workers, 0);
    }

    #[test]
    fn effective_workers_is_bounded_by_query_count() {
        let mut runner = ParallelRunner::new(EngineConfig::default(), 8);
        runner.register_query(pair_query("only", "mentions"));
        assert_eq!(runner.effective_workers(), 1);
        assert_eq!(runner.query_count(), 1);
    }

    #[test]
    fn metrics_follow_registration_order() {
        let mut runner = ParallelRunner::new(EngineConfig::default(), 2);
        runner.register_query(pair_query("zz_last_name", "mentions"));
        runner.register_query(pair_query("aa_first_name", "cites"));
        let outcome = runner.run(&stream()).unwrap();
        assert_eq!(outcome.metrics[0].0, "zz_last_name");
        assert_eq!(outcome.metrics[1].0, "aa_first_name");
    }

    // -- ShardedMatcher ----------------------------------------------------

    use crate::sj_matcher::SjTreeMatcher;
    use std::collections::BTreeSet;
    use streamworks_query::{Planner, SelectivityOrdered};

    /// Multi-leaf plan (single-edge primitives) so the tree genuinely joins.
    fn planned(query: QueryGraph) -> QueryPlan {
        Planner::new()
            .plan_with(
                query,
                &SelectivityOrdered {
                    max_primitive_size: 1,
                },
            )
            .unwrap()
    }

    fn drive_sharded(
        plan: &QueryPlan,
        events: &[EdgeEvent],
        shards: usize,
    ) -> (BTreeSet<u64>, usize, ShardedMatcher) {
        let mut graph = streamworks_graph::DynamicGraph::unbounded();
        let mut matcher = ShardedMatcher::new(plan.clone(), &graph, shards, None);
        let mut signatures = BTreeSet::new();
        let mut count = 0usize;
        for ev in events {
            let r = graph.ingest(ev);
            let edge = graph.edge(r.edge).unwrap().clone();
            matcher.process_edge(&graph, &edge);
        }
        let mut last_seq = 0u64;
        for (seq, m) in matcher.take_completed() {
            assert!(seq >= last_seq, "fan-in must release in stream order");
            last_seq = seq;
            signatures.insert(m.signature());
            count += 1;
        }
        (signatures, count, matcher)
    }

    /// A stream where several articles genuinely share keywords, so the pair
    /// query produces matches (unlike `stream()`, whose type interleaving
    /// gives every article its own keyword).
    fn mention_stream(n: i64) -> Vec<EdgeEvent> {
        (0..n)
            .map(|i| {
                EdgeEvent::new(
                    format!("a{}", i % 7),
                    "Article",
                    format!("k{}", i % 3),
                    "Keyword",
                    "mentions",
                    Timestamp::from_secs(i * 3),
                )
            })
            .collect()
    }

    #[test]
    fn sharded_matcher_agrees_with_single_threaded_for_any_shard_count() {
        let plan = planned(pair_query("pair", "mentions"));
        let events = mention_stream(40);

        // Single-threaded reference.
        let mut graph = streamworks_graph::DynamicGraph::unbounded();
        let mut single = SjTreeMatcher::new(plan.clone(), &graph);
        let mut expected = BTreeSet::new();
        let mut expected_count = 0usize;
        let mut out = Vec::new();
        for ev in &events {
            let r = graph.ingest(ev);
            let edge = graph.edge(r.edge).unwrap().clone();
            out.clear();
            single.process_edge(&graph, &edge, &mut out);
            for m in &out {
                expected.insert(m.signature());
                expected_count += 1;
            }
        }
        assert!(expected_count > 0, "the stream must produce matches");

        for shards in [1usize, 2, 4, 8] {
            let (signatures, count, matcher) = drive_sharded(&plan, &events, shards);
            assert_eq!(signatures, expected, "shards={shards}");
            assert_eq!(count, expected_count, "shards={shards}");
            let metrics = matcher.metrics();
            assert_eq!(metrics.complete_matches, expected_count as u64);
            assert_eq!(metrics.edges_processed, events.len() as u64);
            // Store work happened in the shards, not the driver front end.
            assert_eq!(
                metrics.partial_matches_inserted,
                single.metrics().partial_matches_inserted
            );
            let per_shard = matcher.shard_metrics();
            assert_eq!(per_shard.len(), shards);
            let routed: u64 = per_shard.iter().map(|s| s.items_routed).sum();
            assert!(routed > 0);
        }
    }

    #[test]
    fn sharded_matcher_spreads_state_across_shards() {
        // Many distinct keywords → many distinct join keys → every shard of a
        // 4-way split should own some of them.
        let plan = planned(pair_query("pair", "mentions"));
        let mut events = Vec::new();
        for i in 0..400i64 {
            events.push(EdgeEvent::new(
                format!("a{i}"),
                "Article",
                format!("k{}", i % 97),
                "Keyword",
                "mentions",
                Timestamp::from_secs(i),
            ));
        }
        let (_, _, matcher) = drive_sharded(&plan, &events, 4);
        let per_shard = matcher.shard_metrics();
        assert!(
            per_shard.iter().all(|s| s.items_routed > 0),
            "all shards took work: {per_shard:?}"
        );
        let live: u64 = per_shard.iter().map(|s| s.partial_matches_live).sum();
        assert_eq!(live, matcher.metrics().partial_matches_live);
    }

    #[test]
    fn sharded_matcher_prunes_windowed_state() {
        let plan = planned(pair_query("pair", "mentions"));
        let mut graph = streamworks_graph::DynamicGraph::unbounded();
        let mut matcher = ShardedMatcher::new(plan, &graph, 2, None);
        for i in 0..50i64 {
            let r = graph.ingest(&EdgeEvent::new(
                format!("a{i}"),
                "Article",
                format!("k{i}"),
                "Keyword",
                "mentions",
                Timestamp::from_secs(i),
            ));
            let edge = graph.edge(r.edge).unwrap().clone();
            matcher.process_edge(&graph, &edge);
        }
        matcher.take_completed();
        assert!(matcher.metrics().partial_matches_live > 0);
        // The pair query's window is 1h; advance far beyond it and prune.
        matcher.prune(Timestamp::from_secs(1_000_000));
        matcher.take_completed(); // barrier so the prune markers are processed
        let metrics = matcher.metrics();
        assert_eq!(metrics.partial_matches_live, 0);
        assert!(metrics.partial_matches_expired >= 50);
    }

    #[test]
    fn sharded_matcher_handles_multi_level_plans() {
        // Three-leaf query: internal-node joins must hand matches across
        // shards when the next join key hashes elsewhere.
        let q = QueryGraphBuilder::new("triple")
            .window(Duration::from_hours(6))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .edge("a1", "located", "l")
            .build()
            .unwrap();
        let plan = planned(q);
        assert!(plan.shape.node_count() >= 5, "three leaves, two joins");
        let mut events = Vec::new();
        for i in 0..60i64 {
            events.push(EdgeEvent::new(
                format!("a{}", i % 10),
                "Article",
                format!("k{}", i % 4),
                "Keyword",
                "mentions",
                Timestamp::from_secs(2 * i),
            ));
            events.push(EdgeEvent::new(
                format!("a{}", i % 10),
                "Article",
                format!("city{}", i % 3),
                "Location",
                "located",
                Timestamp::from_secs(2 * i + 1),
            ));
        }
        let (expected, expected_count, _) = drive_sharded(&plan, &events, 1);
        assert!(expected_count > 0);
        for shards in [2usize, 4] {
            let (signatures, count, matcher) = drive_sharded(&plan, &events, shards);
            assert_eq!(signatures, expected, "shards={shards}");
            assert_eq!(count, expected_count, "shards={shards}");
            let handoffs: u64 = matcher.shard_metrics().iter().map(|s| s.handoffs_out).sum();
            // With several shards and mixed join keys, at least some merged
            // matches must migrate between shards.
            assert!(handoffs > 0, "expected cross-shard handoffs at {shards}");
        }
    }

    #[test]
    fn tiny_channel_capacity_backpressures_without_deadlock_or_loss() {
        // Capacity 1 forces every send through the full/park/retry paths —
        // driver routing, worker handoffs and the fan-in all backpressure —
        // and the match multiset must still be exact.
        let q = QueryGraphBuilder::new("triple")
            .window(Duration::from_hours(6))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .edge("a1", "located", "l")
            .build()
            .unwrap();
        let plan = planned(q);
        let mut events = Vec::new();
        for i in 0..40i64 {
            events.push(EdgeEvent::new(
                format!("a{}", i % 8),
                "Article",
                format!("k{}", i % 3),
                "Keyword",
                "mentions",
                Timestamp::from_secs(2 * i),
            ));
            events.push(EdgeEvent::new(
                format!("a{}", i % 8),
                "Article",
                format!("city{}", i % 2),
                "Location",
                "located",
                Timestamp::from_secs(2 * i + 1),
            ));
        }
        let (expected, expected_count, _) = drive_sharded(&plan, &events, 1);
        assert!(expected_count > 0);

        for shards in [2usize, 4] {
            let mut graph = streamworks_graph::DynamicGraph::unbounded();
            let mut matcher = ShardedMatcher::with_options(
                plan.clone(),
                &graph,
                shards,
                None,
                1,
                ShardFailurePolicy::Degrade,
            );
            for ev in &events {
                let r = graph.ingest(ev);
                let edge = graph.edge(r.edge).unwrap().clone();
                matcher.process_edge(&graph, &edge);
            }
            let completed = matcher.take_completed();
            assert_eq!(completed.len(), expected_count, "shards={shards}");
            let signatures: BTreeSet<u64> = completed.iter().map(|(_, m)| m.signature()).collect();
            assert_eq!(signatures, expected, "shards={shards}");
            assert_eq!(matcher.live_shards(), shards, "no failures happened");
            assert!(matcher.take_failures().is_empty());
            assert!(matcher.terminal_failure().is_none());
        }
    }

    #[test]
    fn sharded_matcher_per_shard_cap_drops_matches() {
        let plan = planned(pair_query("pair", "mentions"));
        let mut graph = streamworks_graph::DynamicGraph::unbounded();
        let mut matcher = ShardedMatcher::new(plan, &graph, 1, Some(3));
        for i in 0..30i64 {
            let r = graph.ingest(&EdgeEvent::new(
                format!("a{i}"),
                "Article",
                "k0",
                "Keyword",
                "mentions",
                Timestamp::from_secs(i),
            ));
            let edge = graph.edge(r.edge).unwrap().clone();
            matcher.process_edge(&graph, &edge);
        }
        matcher.take_completed();
        let metrics = matcher.metrics();
        assert!(metrics.matches_dropped_by_cap > 0);
        assert!(metrics.partial_matches_live <= 12);
    }
}
