//! Multi-query parallel execution.
//!
//! The paper's demo runs on a 48-core shared-memory node (§6.1). The natural
//! unit of parallelism in StreamWorks is the *registered query*: matchers for
//! different queries never share mutable state, so a registry of queries can
//! be sharded across worker threads, each worker maintaining its own graph and
//! summaries and processing the full edge stream for its shard. This module
//! provides that batch-oriented runner on top of crossbeam's scoped threads.
//!
//! Sharding by query replicates the graph per worker (memory trades for
//! scalability); it preserves exact semantics because each query's results
//! depend only on the stream, not on other queries.

use crate::config::EngineConfig;
use crate::engine::ContinuousQueryEngine;
use crate::error::EngineError;
use crate::event::MatchEvent;
use crate::metrics::QueryMetrics;
use streamworks_graph::EdgeEvent;
use streamworks_query::QueryGraph;

/// Outcome of a parallel run.
#[derive(Debug)]
pub struct ParallelRunOutcome {
    /// All match events, ordered by (stream time, query name).
    pub events: Vec<MatchEvent>,
    /// Per-query metrics, keyed by query name, in registration order.
    pub metrics: Vec<(String, QueryMetrics)>,
    /// Number of edge events each worker processed (equal for all workers).
    pub edges_processed: usize,
    /// Number of worker threads used.
    pub workers: usize,
}

/// Shards registered queries across worker threads and replays a stream
/// through every shard in parallel.
#[derive(Debug, Clone)]
pub struct ParallelRunner {
    config: EngineConfig,
    workers: usize,
    queries: Vec<QueryGraph>,
}

impl ParallelRunner {
    /// Creates a runner with `workers` threads (clamped to at least 1).
    pub fn new(config: EngineConfig, workers: usize) -> Self {
        ParallelRunner {
            config,
            workers: workers.max(1),
            queries: Vec::new(),
        }
    }

    /// Registers a query; it will be planned by its worker at run time using
    /// that worker's (initially empty) statistics.
    pub fn register_query(&mut self, query: QueryGraph) -> &mut Self {
        self.queries.push(query);
        self
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Number of worker threads that will be used for the current registry.
    pub fn effective_workers(&self) -> usize {
        self.workers.min(self.queries.len()).max(1)
    }

    /// Replays `events` through every registered query, sharded across the
    /// worker threads, and merges the results. Each worker feeds its engine
    /// through the batched ingest path.
    ///
    /// The configuration is validated up front, so an invalid one surfaces as
    /// [`EngineError::InvalidConfig`] here instead of panicking inside a
    /// worker thread.
    pub fn run(&self, events: &[EdgeEvent]) -> Result<ParallelRunOutcome, EngineError> {
        self.config.validate().map_err(EngineError::InvalidConfig)?;
        if self.queries.is_empty() {
            return Ok(ParallelRunOutcome {
                events: Vec::new(),
                metrics: Vec::new(),
                edges_processed: events.len(),
                workers: 0,
            });
        }
        let workers = self.effective_workers();
        // Round-robin sharding keeps shards balanced in query count.
        let mut shards: Vec<Vec<QueryGraph>> = vec![Vec::new(); workers];
        for (i, q) in self.queries.iter().enumerate() {
            shards[i % workers].push(q.clone());
        }

        let config = self.config;
        type ShardResult = Result<(Vec<MatchEvent>, Vec<(String, QueryMetrics)>), EngineError>;
        let results: Vec<ShardResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    scope.spawn(move || -> Result<_, EngineError> {
                        let mut engine = ContinuousQueryEngine::new(config);
                        let mut registered = Vec::new();
                        for q in shard {
                            let handle = engine.register_query(q.clone())?;
                            registered.push((q.name().to_owned(), handle));
                        }
                        let matches = engine.ingest(events);
                        let metrics = registered
                            .into_iter()
                            .map(|(name, handle)| {
                                (name, engine.metrics(handle).unwrap_or_default())
                            })
                            .collect();
                        Ok((matches, metrics))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        let mut all_events = Vec::new();
        let mut all_metrics = Vec::new();
        for r in results {
            let (events, metrics) = r?;
            all_events.extend(events);
            all_metrics.extend(metrics);
        }
        all_events.sort_by(|a, b| a.at.cmp(&b.at).then(a.query_name.cmp(&b.query_name)));
        // Report metrics in the original registration order.
        all_metrics.sort_by_key(|(name, _)| {
            self.queries
                .iter()
                .position(|q| q.name() == name)
                .unwrap_or(usize::MAX)
        });
        Ok(ParallelRunOutcome {
            events: all_events,
            metrics: all_metrics,
            edges_processed: events.len(),
            workers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{Duration, Timestamp};
    use streamworks_query::QueryGraphBuilder;

    fn pair_query(name: &str, etype: &str) -> QueryGraph {
        QueryGraphBuilder::new(name)
            .window(Duration::from_hours(1))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", etype, "k")
            .edge("a2", etype, "k")
            .build()
            .unwrap()
    }

    fn stream() -> Vec<EdgeEvent> {
        let mut events = Vec::new();
        for i in 0..30i64 {
            events.push(EdgeEvent::new(
                format!("a{}", i % 6),
                "Article",
                format!("k{}", i % 3),
                "Keyword",
                if i % 2 == 0 { "mentions" } else { "cites" },
                Timestamp::from_secs(i * 5),
            ));
        }
        events
    }

    #[test]
    fn parallel_run_matches_sequential_run() {
        let queries = vec![
            pair_query("mentions_pair", "mentions"),
            pair_query("cites_pair", "cites"),
        ];
        let events = stream();

        // Sequential reference.
        let mut sequential = ContinuousQueryEngine::builder().build().unwrap();
        for q in &queries {
            sequential.register_query(q.clone()).unwrap();
        }
        let mut seq_events = Vec::new();
        for ev in &events {
            seq_events.extend(sequential.ingest(ev));
        }

        // Parallel runs with 1, 2 and 4 workers all agree with it.
        for workers in [1usize, 2, 4] {
            let mut runner = ParallelRunner::new(EngineConfig::default(), workers);
            for q in &queries {
                runner.register_query(q.clone());
            }
            let outcome = runner.run(&events).unwrap();
            assert_eq!(outcome.events.len(), seq_events.len(), "workers={workers}");
            assert_eq!(outcome.edges_processed, events.len());
            assert_eq!(outcome.metrics.len(), 2);
            let total: u64 = outcome
                .metrics
                .iter()
                .map(|(_, m)| m.complete_matches)
                .sum();
            assert_eq!(total as usize, seq_events.len());
        }
    }

    #[test]
    fn invalid_config_is_an_error_not_a_worker_panic() {
        let mut runner = ParallelRunner::new(
            EngineConfig {
                prune_every: 0,
                ..EngineConfig::default()
            },
            2,
        );
        runner.register_query(pair_query("p", "mentions"));
        match runner.run(&stream()) {
            Err(crate::error::EngineError::InvalidConfig(msg)) => {
                assert!(msg.contains("prune_every"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn empty_registry_is_a_noop() {
        let runner = ParallelRunner::new(EngineConfig::default(), 4);
        let outcome = runner.run(&stream()).unwrap();
        assert!(outcome.events.is_empty());
        assert_eq!(outcome.workers, 0);
    }

    #[test]
    fn effective_workers_is_bounded_by_query_count() {
        let mut runner = ParallelRunner::new(EngineConfig::default(), 8);
        runner.register_query(pair_query("only", "mentions"));
        assert_eq!(runner.effective_workers(), 1);
        assert_eq!(runner.query_count(), 1);
    }

    #[test]
    fn metrics_follow_registration_order() {
        let mut runner = ParallelRunner::new(EngineConfig::default(), 2);
        runner.register_query(pair_query("zz_last_name", "mentions"));
        runner.register_query(pair_query("aa_first_name", "cites"));
        let outcome = runner.run(&stream()).unwrap();
        assert_eq!(outcome.metrics[0].0, "zz_last_name");
        assert_eq!(outcome.metrics[1].0, "aa_first_name");
    }
}
