//! Match events and event sinks.
//!
//! When the SJ-Tree matcher assembles a complete match inside the query
//! window, the engine emits a [`MatchEvent`]. Sinks decouple the engine from
//! what the application does with events (collect them, forward them over a
//! channel to a UI thread, call back into user code) — the library analogue of
//! the demo's map/table/graph views.

use crate::binding::PartialMatch;
use serde::{Deserialize, Serialize};
use streamworks_graph::{Duration, DynamicGraph, EdgeId, Timestamp, VertexId};
use streamworks_query::QueryGraph;

/// Identifier assigned to a registered query by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub usize);

/// One binding of a query variable in a match event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundVertex {
    /// The query variable name.
    pub variable: String,
    /// The data vertex bound to it.
    pub vertex: VertexId,
    /// The data vertex's external key (e.g. IP address, article URI).
    pub key: String,
}

/// A complete match of a registered query, reported as it is discovered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchEvent {
    /// Which registered query matched.
    pub query: QueryId,
    /// The query's name.
    pub query_name: String,
    /// Stream time at which the match completed (timestamp of its latest edge).
    pub at: Timestamp,
    /// Span `τ(g)` of the match.
    pub span: Duration,
    /// Variable bindings, in query-vertex order.
    pub bindings: Vec<BoundVertex>,
    /// The data edges realising the query edges, in query-edge order.
    pub edges: Vec<EdgeId>,
}

impl MatchEvent {
    /// Builds an event from a root-level partial match.
    pub fn from_match(
        query_id: QueryId,
        query: &QueryGraph,
        graph: &DynamicGraph,
        m: &PartialMatch,
    ) -> Self {
        let bindings = m
            .binding
            .iter()
            .map(|(qv, dv)| BoundVertex {
                variable: query.vertex(qv).name.clone(),
                vertex: dv,
                key: graph.vertex_key(dv).unwrap_or("<unknown>").to_owned(),
            })
            .collect();
        MatchEvent {
            query: query_id,
            query_name: query.name().to_owned(),
            at: m.latest,
            span: m.span(),
            bindings,
            edges: m.edges.iter().map(|(_, e)| *e).collect(),
        }
    }

    /// The data vertex bound to a query variable, if present.
    pub fn binding(&self, variable: &str) -> Option<&BoundVertex> {
        self.bindings.iter().find(|b| b.variable == variable)
    }

    /// Compact single-line rendering, e.g. for the tabular event views.
    pub fn render(&self) -> String {
        let vars: Vec<String> = self
            .bindings
            .iter()
            .map(|b| format!("{}={}", b.variable, b.key))
            .collect();
        format!(
            "[t={}s] {} span={}s {}",
            self.at.as_micros() / 1_000_000,
            self.query_name,
            self.span.as_secs(),
            vars.join(" ")
        )
    }
}

/// Where the engine delivers match events.
pub trait EventSink {
    /// Called once per complete match, in discovery order.
    fn on_match(&mut self, event: MatchEvent);
}

/// A sink that stores every event in memory.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Vec<MatchEvent>,
}

impl CollectingSink {
    /// Creates an empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events collected so far.
    pub fn events(&self) -> &[MatchEvent] {
        &self.events
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the sink, returning the events.
    pub fn into_events(self) -> Vec<MatchEvent> {
        self.events
    }
}

impl EventSink for CollectingSink {
    fn on_match(&mut self, event: MatchEvent) {
        self.events.push(event);
    }
}

/// A sink that invokes a closure for every event.
pub struct CallbackSink<F: FnMut(MatchEvent)> {
    callback: F,
}

impl<F: FnMut(MatchEvent)> CallbackSink<F> {
    /// Wraps a closure as a sink.
    pub fn new(callback: F) -> Self {
        CallbackSink { callback }
    }
}

impl<F: FnMut(MatchEvent)> EventSink for CallbackSink<F> {
    fn on_match(&mut self, event: MatchEvent) {
        (self.callback)(event);
    }
}

/// A sink that forwards events over a crossbeam channel (e.g. to a UI or
/// logging thread), dropping events if the receiver has disconnected.
pub struct ChannelSink {
    sender: crossbeam::channel::Sender<MatchEvent>,
}

impl ChannelSink {
    /// Creates an unbounded channel sink, returning the sink and the receiver.
    pub fn unbounded() -> (Self, crossbeam::channel::Receiver<MatchEvent>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        (ChannelSink { sender: tx }, rx)
    }
}

impl EventSink for ChannelSink {
    fn on_match(&mut self, event: MatchEvent) {
        let _ = self.sender.send(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::EdgeEvent;
    use streamworks_query::{QueryEdgeId, QueryGraphBuilder, QueryVertexId};

    fn sample_event() -> (DynamicGraph, QueryGraph, PartialMatch) {
        let mut g = DynamicGraph::unbounded();
        let r = g.ingest(&EdgeEvent::new(
            "a1",
            "Article",
            "k1",
            "Keyword",
            "mentions",
            Timestamp::from_secs(5),
        ));
        let q = QueryGraphBuilder::new("demo")
            .vertex("a", "Article")
            .vertex("k", "Keyword")
            .edge("a", "mentions", "k")
            .build()
            .unwrap();
        let mut m = PartialMatch::seed(2, QueryEdgeId(0), r.edge, Timestamp::from_secs(5));
        m.binding.bind(QueryVertexId(0), r.src);
        m.binding.bind(QueryVertexId(1), r.dst);
        (g, q, m)
    }

    #[test]
    fn events_resolve_variable_names_and_keys() {
        let (g, q, m) = sample_event();
        let ev = MatchEvent::from_match(QueryId(0), &q, &g, &m);
        assert_eq!(ev.query_name, "demo");
        assert_eq!(ev.binding("a").unwrap().key, "a1");
        assert_eq!(ev.binding("k").unwrap().key, "k1");
        assert!(ev.binding("ghost").is_none());
        assert_eq!(ev.edges.len(), 1);
        let line = ev.render();
        assert!(line.contains("demo"));
        assert!(line.contains("a=a1"));
    }

    #[test]
    fn collecting_sink_accumulates() {
        let (g, q, m) = sample_event();
        let ev = MatchEvent::from_match(QueryId(0), &q, &g, &m);
        let mut sink = CollectingSink::new();
        assert!(sink.is_empty());
        sink.on_match(ev.clone());
        sink.on_match(ev);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.into_events().len(), 2);
    }

    #[test]
    fn callback_and_channel_sinks_deliver() {
        let (g, q, m) = sample_event();
        let ev = MatchEvent::from_match(QueryId(3), &q, &g, &m);
        let mut count = 0usize;
        {
            let mut cb = CallbackSink::new(|_e| count += 1);
            cb.on_match(ev.clone());
            cb.on_match(ev.clone());
        }
        assert_eq!(count, 2);

        let (mut chan, rx) = ChannelSink::unbounded();
        chan.on_match(ev);
        let received = rx.try_recv().unwrap();
        assert_eq!(received.query, QueryId(3));
    }
}
