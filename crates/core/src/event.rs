//! Match events and event sinks.
//!
//! When the SJ-Tree matcher assembles a complete match inside the query
//! window, the engine emits a [`MatchEvent`]. Sinks decouple the engine from
//! what the application does with events (collect them, forward them over a
//! channel to a UI thread, call back into user code) — the library analogue of
//! the demo's map/table/graph views.
//!
//! Sinks are always invoked on the engine's ingest thread, whatever the
//! execution backend: a sharded query ([`crate::EngineBuilder::shards`])
//! fans its workers' results into one channel and the engine drains it at
//! the end of each `ingest` call, delivering to sinks in stream order. Sink
//! implementations therefore need no synchronisation of their own (the
//! shareable observers — [`CountingSink`]/[`MatchCounter`] and
//! [`BufferingSink`]/[`MatchBuffer`] — synchronise only because their
//! *observer* half may live on another thread).

use crate::binding::PartialMatch;
use crate::handle::QueryHandle;
use serde::{Deserialize, Serialize};
use streamworks_graph::{Duration, DynamicGraph, EdgeId, Timestamp, VertexId};
use streamworks_query::QueryGraph;

/// Identifier assigned to a registered query by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub usize);

/// One binding of a query variable in a match event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundVertex {
    /// The query variable name.
    pub variable: String,
    /// The data vertex bound to it.
    pub vertex: VertexId,
    /// The data vertex's external key (e.g. IP address, article URI).
    pub key: String,
}

/// A complete match of a registered query, reported as it is discovered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchEvent {
    /// Which registered query matched.
    pub query: QueryId,
    /// Slot generation of the emitting query. Query ids are recycled by
    /// deregister/register churn; the generation distinguishes matches of a
    /// slot's previous occupants from its current one — compare via
    /// [`MatchEvent::handle`] rather than `query` when queries come and go.
    pub query_generation: u32,
    /// The query's name.
    pub query_name: String,
    /// Stream time at which the match completed (timestamp of its latest edge).
    pub at: Timestamp,
    /// Span `τ(g)` of the match.
    pub span: Duration,
    /// Variable bindings, in query-vertex order.
    pub bindings: Vec<BoundVertex>,
    /// The data edges realising the query edges, in query-edge order.
    pub edges: Vec<EdgeId>,
}

impl MatchEvent {
    /// Builds an event from a root-level partial match.
    pub fn from_match(
        handle: QueryHandle,
        query: &QueryGraph,
        graph: &DynamicGraph,
        m: &PartialMatch,
    ) -> Self {
        let bindings = m
            .binding
            .iter()
            .map(|(qv, dv)| BoundVertex {
                variable: query.vertex(qv).name.clone(),
                vertex: dv,
                key: graph.vertex_key(dv).unwrap_or("<unknown>").to_owned(),
            })
            .collect();
        MatchEvent {
            query: handle.id(),
            query_generation: handle.generation(),
            query_name: query.name().to_owned(),
            at: m.latest,
            span: m.span(),
            bindings,
            edges: m.edges.iter().map(|(_, e)| *e).collect(),
        }
    }

    /// Builds an event from an RPQ path match: `src`/`dst` bindings for the
    /// path endpoints, the witness edges in path order, `at` the freshest
    /// witness timestamp and `span` the witness's temporal extent. Witness
    /// edges are live at emission time (the matcher emits only inside the
    /// window), so their timestamps resolve against the graph.
    pub(crate) fn from_path(
        handle: QueryHandle,
        query_name: &str,
        graph: &DynamicGraph,
        path: &crate::rpq::RpqPathMatch,
    ) -> Self {
        let mut earliest = Timestamp(i64::MAX);
        let mut latest = Timestamp(i64::MIN);
        for &e in &path.edges {
            if let Some(edge) = graph.edge(e) {
                earliest = earliest.min(edge.timestamp);
                latest = latest.max(edge.timestamp);
            }
        }
        if earliest > latest {
            // Defensive: an empty or fully-expired witness collapses to now.
            earliest = graph.now();
            latest = earliest;
        }
        let bind = |variable: &str, v: VertexId| BoundVertex {
            variable: variable.to_owned(),
            vertex: v,
            key: graph.vertex_key(v).unwrap_or("<unknown>").to_owned(),
        };
        MatchEvent {
            query: handle.id(),
            query_generation: handle.generation(),
            query_name: query_name.to_owned(),
            at: latest,
            span: latest.since(earliest),
            bindings: vec![bind("src", path.source), bind("dst", path.target)],
            edges: path.edges.clone(),
        }
    }

    /// The handle of the query that emitted this event — equal to the handle
    /// `register_*` returned for it, and never equal to the handle of a
    /// different query that later recycled the same id.
    pub fn handle(&self) -> QueryHandle {
        QueryHandle::new(self.query, self.query_generation)
    }

    /// The data vertex bound to a query variable, if present.
    pub fn binding(&self, variable: &str) -> Option<&BoundVertex> {
        self.bindings.iter().find(|b| b.variable == variable)
    }

    /// Compact single-line rendering, e.g. for the tabular event views.
    pub fn render(&self) -> String {
        let vars: Vec<String> = self
            .bindings
            .iter()
            .map(|b| format!("{}={}", b.variable, b.key))
            .collect();
        format!(
            "[t={}s] {} span={}s {}",
            self.at.as_micros() / 1_000_000,
            self.query_name,
            self.span.as_secs(),
            vars.join(" ")
        )
    }
}

/// Where the engine delivers match events.
///
/// Delivery is supervised: a sink that panics inside [`EventSink::on_match`]
/// is detached from its subscription and the panic recorded — it never
/// poisons the engine or other subscribers (see
/// [`crate::ContinuousQueryEngine::subscription_health`]).
pub trait EventSink {
    /// Called once per complete match, in discovery order.
    fn on_match(&mut self, event: MatchEvent);

    /// Events this sink has discarded under a bounded-queue overflow policy
    /// (see [`SinkOverflow`]). The engine folds the per-subscriber totals
    /// into [`crate::QueryMetrics::sink_events_dropped`]. Unbounded sinks
    /// keep the default of zero.
    fn events_dropped(&self) -> u64 {
        0
    }

    /// Discarded events attributed to `query`'s subscription. Attribution
    /// follows the *discarded* match: under [`SinkOverflow::DropOldest`]
    /// the evicted match's query pays, not the incoming one's — they
    /// differ when subscriptions of several queries share one bounded
    /// buffer (see [`BufferingSink::share`]). The default charges the
    /// whole [`EventSink::events_dropped`] total, which is exact for the
    /// common case of a sink serving a single subscription.
    fn events_dropped_for(&self, query: QueryId) -> u64 {
        let _ = query;
        self.events_dropped()
    }
}

/// What a bounded sink queue does when it is full (see
/// [`BufferingSink::bounded`] and [`ChannelSink::bounded`]).
///
/// `Block` preserves every event at the cost of stalling the engine's
/// ingest thread until the consumer drains; the drop policies keep ingest
/// non-blocking and count what they discard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SinkOverflow {
    /// Wait for space: correctness-preserving backpressure onto the ingest
    /// thread.
    Block,
    /// Evict the oldest queued event to admit the new one (the consumer
    /// sees the freshest window of matches).
    DropOldest,
    /// Discard the new event (the consumer sees the oldest matches).
    DropNewest,
}

/// A sink that stores every event in memory.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Vec<MatchEvent>,
}

impl CollectingSink {
    /// Creates an empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events collected so far.
    pub fn events(&self) -> &[MatchEvent] {
        &self.events
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the sink, returning the events.
    pub fn into_events(self) -> Vec<MatchEvent> {
        self.events
    }
}

impl EventSink for CollectingSink {
    fn on_match(&mut self, event: MatchEvent) {
        self.events.push(event);
    }
}

/// A sink that invokes a closure for every event.
pub struct CallbackSink<F: FnMut(MatchEvent)> {
    callback: F,
}

impl<F: FnMut(MatchEvent)> CallbackSink<F> {
    /// Wraps a closure as a sink.
    pub fn new(callback: F) -> Self {
        CallbackSink { callback }
    }
}

impl<F: FnMut(MatchEvent)> EventSink for CallbackSink<F> {
    fn on_match(&mut self, event: MatchEvent) {
        (self.callback)(event);
    }
}

/// A sink that forwards events over a crossbeam channel (e.g. to a UI or
/// logging thread), dropping events if the receiver has disconnected.
pub struct ChannelSink {
    sender: crossbeam::channel::Sender<MatchEvent>,
    lossy: bool,
    dropped: u64,
}

impl ChannelSink {
    /// Creates an unbounded channel sink, returning the sink and the receiver.
    pub fn unbounded() -> (Self, crossbeam::channel::Receiver<MatchEvent>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        (
            ChannelSink {
                sender: tx,
                lossy: false,
                dropped: 0,
            },
            rx,
        )
    }

    /// Creates a bounded channel sink with [`SinkOverflow::Block`]
    /// semantics: when `capacity` events are queued, delivery (and with it
    /// the engine's ingest thread) blocks until the receiver drains — a slow
    /// consumer backpressures the stream instead of growing memory.
    pub fn bounded(capacity: usize) -> (Self, crossbeam::channel::Receiver<MatchEvent>) {
        let (tx, rx) = crossbeam::channel::bounded(capacity.max(1));
        (
            ChannelSink {
                sender: tx,
                lossy: false,
                dropped: 0,
            },
            rx,
        )
    }

    /// Creates a bounded channel sink with [`SinkOverflow::DropNewest`]
    /// semantics: when the queue is full the new event is discarded and
    /// counted ([`EventSink::events_dropped`]) — ingest never blocks.
    /// `DropOldest` is not offered here because a channel's sender half
    /// cannot evict queued elements; use [`BufferingSink::bounded`] for it.
    pub fn bounded_lossy(capacity: usize) -> (Self, crossbeam::channel::Receiver<MatchEvent>) {
        let (tx, rx) = crossbeam::channel::bounded(capacity.max(1));
        (
            ChannelSink {
                sender: tx,
                lossy: true,
                dropped: 0,
            },
            rx,
        )
    }
}

impl EventSink for ChannelSink {
    fn on_match(&mut self, event: MatchEvent) {
        if self.lossy {
            if let Err(crossbeam::channel::TrySendError::Full(_)) = self.sender.try_send(event) {
                self.dropped += 1;
            }
        } else {
            let _ = self.sender.send(event);
        }
    }

    fn events_dropped(&self) -> u64 {
        self.dropped
    }
}

/// A sink that only counts matches, observable through its paired
/// [`MatchCounter`] while the engine owns the sink — the cheapest way for a
/// tenant to watch a subscription (see
/// [`crate::ContinuousQueryEngine::subscribe`]).
#[derive(Debug)]
pub struct CountingSink {
    count: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl CountingSink {
    /// Creates the sink and the shared counter observing it.
    pub fn new() -> (CountingSink, MatchCounter) {
        let count = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        (
            CountingSink {
                count: count.clone(),
            },
            MatchCounter(count),
        )
    }
}

impl EventSink for CountingSink {
    fn on_match(&mut self, _event: MatchEvent) {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Shared observer of a [`CountingSink`].
#[derive(Debug, Clone)]
pub struct MatchCounter(std::sync::Arc<std::sync::atomic::AtomicU64>);

impl MatchCounter {
    /// Matches delivered to the paired sink so far.
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Shared state behind a [`BufferingSink`] / [`MatchBuffer`] pair.
///
/// The mutex is locked with poison *recovery* ([`PoisonError::into_inner`]):
/// a panic on some other thread that held the lock must not cascade into the
/// engine's delivery path — a `VecDeque` of events is valid after any
/// interrupted push, so the data is safe to keep using.
#[derive(Debug, Default)]
struct BufferShared {
    queue: std::sync::Mutex<std::collections::VecDeque<MatchEvent>>,
    dropped: std::sync::atomic::AtomicU64,
    /// Per-query drop attribution, keyed by the *discarded* match's query
    /// id — exact even when subscriptions of several queries share one
    /// bounded buffer.
    dropped_by_query: std::sync::Mutex<std::collections::BTreeMap<usize, u64>>,
}

impl BufferShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, std::collections::VecDeque<MatchEvent>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn charge_drop(&self, query: usize) {
        self.dropped
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        *self
            .dropped_by_query
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(query)
            .or_insert(0) += 1;
    }

    fn dropped_for(&self, query: usize) -> u64 {
        self.dropped_by_query
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&query)
            .copied()
            .unwrap_or(0)
    }
}

/// A sink that buffers every event behind a shared handle, so a subscriber
/// can drain its matches between ingest calls while the engine owns the sink
/// itself. The buffering twin of [`CollectingSink`] for the subscription API.
///
/// [`BufferingSink::new`] buffers without bound; [`BufferingSink::bounded`]
/// caps the queue with a declared [`SinkOverflow`] policy.
#[derive(Debug)]
pub struct BufferingSink {
    shared: std::sync::Arc<BufferShared>,
    capacity: Option<usize>,
    policy: SinkOverflow,
}

impl BufferingSink {
    /// Creates the sink and the shared buffer observing it (unbounded).
    pub fn new() -> (BufferingSink, MatchBuffer) {
        let shared = std::sync::Arc::new(BufferShared::default());
        (
            BufferingSink {
                shared: shared.clone(),
                capacity: None,
                policy: SinkOverflow::Block,
            },
            MatchBuffer(shared),
        )
    }

    /// Creates a sink whose buffer holds at most `capacity` events, applying
    /// `policy` when full. With [`SinkOverflow::Block`] the delivering
    /// thread waits for the observer to [`MatchBuffer::drain`]; the drop
    /// policies discard and count instead ([`MatchBuffer::dropped`]).
    pub fn bounded(capacity: usize, policy: SinkOverflow) -> (BufferingSink, MatchBuffer) {
        let shared = std::sync::Arc::new(BufferShared::default());
        (
            BufferingSink {
                shared: shared.clone(),
                capacity: Some(capacity.max(1)),
                policy,
            },
            MatchBuffer(shared),
        )
    }

    /// A second sink over the *same* buffer (same capacity and overflow
    /// policy), so subscriptions of several queries can share one bounded
    /// queue. Drop counters stay exact per subscription: an overflow is
    /// attributed to the discarded match's query
    /// ([`EventSink::events_dropped_for`]).
    pub fn share(&self) -> BufferingSink {
        BufferingSink {
            shared: self.shared.clone(),
            capacity: self.capacity,
            policy: self.policy,
        }
    }
}

impl EventSink for BufferingSink {
    fn on_match(&mut self, event: MatchEvent) {
        let cap = self.capacity.unwrap_or(usize::MAX);
        loop {
            let mut queue = self.shared.lock();
            if queue.len() < cap {
                queue.push_back(event);
                return;
            }
            match self.policy {
                SinkOverflow::Block => {
                    // Release the lock so the observer can drain, then retry.
                    drop(queue);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                SinkOverflow::DropOldest => {
                    // The *evicted* match's subscription pays for the drop,
                    // not the incoming one's.
                    let victim = queue.pop_front().map_or(event.query.0, |e| e.query.0);
                    queue.push_back(event);
                    drop(queue);
                    self.shared.charge_drop(victim);
                    return;
                }
                SinkOverflow::DropNewest => {
                    let victim = event.query.0;
                    drop(queue);
                    self.shared.charge_drop(victim);
                    return;
                }
            }
        }
    }

    fn events_dropped(&self) -> u64 {
        self.shared
            .dropped
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    fn events_dropped_for(&self, query: QueryId) -> u64 {
        self.shared.dropped_for(query.0)
    }
}

/// Shared observer of a [`BufferingSink`].
#[derive(Debug, Clone)]
pub struct MatchBuffer(std::sync::Arc<BufferShared>);

impl MatchBuffer {
    /// Removes and returns every buffered event, in delivery order.
    pub fn drain(&self) -> Vec<MatchEvent> {
        self.0.lock().drain(..).collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events the paired sink has discarded under its overflow policy.
    pub fn dropped(&self) -> u64 {
        self.0.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Discards attributed to `query` — the discarded match's query, exact
    /// when several queries' subscriptions share this buffer (see
    /// [`BufferingSink::share`]).
    pub fn dropped_for(&self, query: QueryId) -> u64 {
        self.0.dropped_for(query.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::EdgeEvent;
    use streamworks_query::{QueryEdgeId, QueryGraphBuilder, QueryVertexId};

    fn sample_event() -> (DynamicGraph, QueryGraph, PartialMatch) {
        let mut g = DynamicGraph::unbounded();
        let r = g.ingest(&EdgeEvent::new(
            "a1",
            "Article",
            "k1",
            "Keyword",
            "mentions",
            Timestamp::from_secs(5),
        ));
        let q = QueryGraphBuilder::new("demo")
            .vertex("a", "Article")
            .vertex("k", "Keyword")
            .edge("a", "mentions", "k")
            .build()
            .unwrap();
        let mut m = PartialMatch::seed(2, QueryEdgeId(0), r.edge, Timestamp::from_secs(5));
        m.binding.bind(QueryVertexId(0), r.src);
        m.binding.bind(QueryVertexId(1), r.dst);
        (g, q, m)
    }

    #[test]
    fn events_resolve_variable_names_and_keys() {
        let (g, q, m) = sample_event();
        let ev = MatchEvent::from_match(QueryHandle::new(QueryId(0), 0), &q, &g, &m);
        assert_eq!(ev.query_name, "demo");
        assert_eq!(ev.binding("a").unwrap().key, "a1");
        assert_eq!(ev.binding("k").unwrap().key, "k1");
        assert!(ev.binding("ghost").is_none());
        assert_eq!(ev.edges.len(), 1);
        let line = ev.render();
        assert!(line.contains("demo"));
        assert!(line.contains("a=a1"));
    }

    #[test]
    fn collecting_sink_accumulates() {
        let (g, q, m) = sample_event();
        let ev = MatchEvent::from_match(QueryHandle::new(QueryId(0), 0), &q, &g, &m);
        let mut sink = CollectingSink::new();
        assert!(sink.is_empty());
        sink.on_match(ev.clone());
        sink.on_match(ev);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.into_events().len(), 2);
    }

    #[test]
    fn callback_and_channel_sinks_deliver() {
        let (g, q, m) = sample_event();
        let ev = MatchEvent::from_match(QueryHandle::new(QueryId(3), 0), &q, &g, &m);
        let mut count = 0usize;
        {
            let mut cb = CallbackSink::new(|_e| count += 1);
            cb.on_match(ev.clone());
            cb.on_match(ev.clone());
        }
        assert_eq!(count, 2);

        let (mut chan, rx) = ChannelSink::unbounded();
        chan.on_match(ev);
        let received = rx.try_recv().unwrap();
        assert_eq!(received.query, QueryId(3));
    }

    #[test]
    fn counting_sink_is_observable_while_owned_elsewhere() {
        let (g, q, m) = sample_event();
        let ev = MatchEvent::from_match(QueryHandle::new(QueryId(0), 0), &q, &g, &m);
        let (mut sink, counter) = CountingSink::new();
        assert_eq!(counter.get(), 0);
        sink.on_match(ev.clone());
        sink.on_match(ev);
        // The sink can live inside the engine; the counter observes remotely.
        drop(sink);
        assert_eq!(counter.get(), 2);
    }

    #[test]
    fn buffering_sink_drains_in_delivery_order() {
        let (g, q, m) = sample_event();
        let (mut sink, buffer) = BufferingSink::new();
        assert!(buffer.is_empty());
        sink.on_match(MatchEvent::from_match(
            QueryHandle::new(QueryId(0), 0),
            &q,
            &g,
            &m,
        ));
        sink.on_match(MatchEvent::from_match(
            QueryHandle::new(QueryId(1), 0),
            &q,
            &g,
            &m,
        ));
        assert_eq!(buffer.len(), 2);
        let drained = buffer.drain();
        assert_eq!(drained[0].query, QueryId(0));
        assert_eq!(drained[1].query, QueryId(1));
        assert!(buffer.is_empty());
        sink.on_match(MatchEvent::from_match(
            QueryHandle::new(QueryId(2), 0),
            &q,
            &g,
            &m,
        ));
        assert_eq!(buffer.drain().len(), 1);
    }

    fn event_for(query: usize) -> MatchEvent {
        let (g, q, m) = sample_event();
        MatchEvent::from_match(QueryHandle::new(QueryId(query), 0), &q, &g, &m)
    }

    #[test]
    fn bounded_buffer_drop_oldest_keeps_freshest_and_counts() {
        let (mut sink, buffer) = BufferingSink::bounded(2, SinkOverflow::DropOldest);
        for i in 0..5 {
            sink.on_match(event_for(i));
        }
        let kept: Vec<usize> = buffer.drain().iter().map(|e| e.query.0).collect();
        assert_eq!(kept, vec![3, 4]);
        assert_eq!(buffer.dropped(), 3);
        assert_eq!(sink.events_dropped(), 3);
    }

    #[test]
    fn shared_buffer_drop_oldest_charges_the_evicted_subscription() {
        // Two subscriptions (queries 0 and 1) share one bounded buffer.
        // Query 1's flood evicts query 0's queued matches: the drops belong
        // to query 0 (the evicted side), not to the incoming query 1.
        let (mut sink_a, buffer) = BufferingSink::bounded(2, SinkOverflow::DropOldest);
        let mut sink_b = sink_a.share();
        sink_a.on_match(event_for(0));
        sink_a.on_match(event_for(0));
        for _ in 0..2 {
            sink_b.on_match(event_for(1));
        }
        let kept: Vec<usize> = buffer.drain().iter().map(|e| e.query.0).collect();
        assert_eq!(kept, vec![1, 1]);
        assert_eq!(buffer.dropped(), 2);
        assert_eq!(buffer.dropped_for(QueryId(0)), 2);
        assert_eq!(buffer.dropped_for(QueryId(1)), 0);
        assert_eq!(sink_a.events_dropped_for(QueryId(0)), 2);
        assert_eq!(sink_b.events_dropped_for(QueryId(1)), 0);
        // DropNewest attribution stays on the refused (incoming) match.
        let (mut sink_c, buffer) = BufferingSink::bounded(1, SinkOverflow::DropNewest);
        let mut sink_d = sink_c.share();
        sink_c.on_match(event_for(0));
        sink_d.on_match(event_for(1));
        assert_eq!(buffer.dropped_for(QueryId(1)), 1);
        assert_eq!(buffer.dropped_for(QueryId(0)), 0);
    }

    #[test]
    fn bounded_buffer_drop_newest_keeps_oldest_and_counts() {
        let (mut sink, buffer) = BufferingSink::bounded(2, SinkOverflow::DropNewest);
        for i in 0..5 {
            sink.on_match(event_for(i));
        }
        let kept: Vec<usize> = buffer.drain().iter().map(|e| e.query.0).collect();
        assert_eq!(kept, vec![0, 1]);
        assert_eq!(buffer.dropped(), 3);
    }

    #[test]
    fn bounded_buffer_block_waits_for_the_observer() {
        let (mut sink, buffer) = BufferingSink::bounded(1, SinkOverflow::Block);
        sink.on_match(event_for(0));
        let drainer = {
            let buffer = buffer.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                buffer.drain().len()
            })
        };
        // Blocks until the observer thread drains, then succeeds; no drops.
        sink.on_match(event_for(1));
        assert_eq!(drainer.join().unwrap(), 1);
        assert_eq!(buffer.dropped(), 0);
        assert_eq!(buffer.drain().len(), 1);
    }

    #[test]
    fn lossy_channel_sink_counts_overflow_instead_of_blocking() {
        let (mut sink, rx) = ChannelSink::bounded_lossy(2);
        for i in 0..5 {
            sink.on_match(event_for(i));
        }
        assert_eq!(sink.events_dropped(), 3);
        let received: Vec<usize> = rx.try_iter().map(|e| e.query.0).collect();
        assert_eq!(received, vec![0, 1]);
    }

    #[test]
    fn match_buffer_recovers_from_a_poisoning_panic() {
        let (mut sink, buffer) = BufferingSink::new();
        sink.on_match(event_for(0));
        let poisoner = {
            let buffer = buffer.clone();
            std::thread::spawn(move || {
                let _guard = buffer.0.lock();
                panic!("poison the buffer mutex");
            })
        };
        assert!(poisoner.join().is_err());
        // The buffer stays usable for both halves despite the poisoned lock.
        sink.on_match(event_for(1));
        assert_eq!(buffer.len(), 2);
        assert_eq!(buffer.drain().len(), 2);
    }
}
