//! Match events and event sinks.
//!
//! When the SJ-Tree matcher assembles a complete match inside the query
//! window, the engine emits a [`MatchEvent`]. Sinks decouple the engine from
//! what the application does with events (collect them, forward them over a
//! channel to a UI thread, call back into user code) — the library analogue of
//! the demo's map/table/graph views.
//!
//! Sinks are always invoked on the engine's ingest thread, whatever the
//! execution backend: a sharded query ([`crate::EngineBuilder::shards`])
//! fans its workers' results into one channel and the engine drains it at
//! the end of each `ingest` call, delivering to sinks in stream order. Sink
//! implementations therefore need no synchronisation of their own (the
//! shareable observers — [`CountingSink`]/[`MatchCounter`] and
//! [`BufferingSink`]/[`MatchBuffer`] — synchronise only because their
//! *observer* half may live on another thread).

use crate::binding::PartialMatch;
use crate::handle::QueryHandle;
use serde::{Deserialize, Serialize};
use streamworks_graph::{Duration, DynamicGraph, EdgeId, Timestamp, VertexId};
use streamworks_query::QueryGraph;

/// Identifier assigned to a registered query by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub usize);

/// One binding of a query variable in a match event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundVertex {
    /// The query variable name.
    pub variable: String,
    /// The data vertex bound to it.
    pub vertex: VertexId,
    /// The data vertex's external key (e.g. IP address, article URI).
    pub key: String,
}

/// A complete match of a registered query, reported as it is discovered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchEvent {
    /// Which registered query matched.
    pub query: QueryId,
    /// Slot generation of the emitting query. Query ids are recycled by
    /// deregister/register churn; the generation distinguishes matches of a
    /// slot's previous occupants from its current one — compare via
    /// [`MatchEvent::handle`] rather than `query` when queries come and go.
    pub query_generation: u32,
    /// The query's name.
    pub query_name: String,
    /// Stream time at which the match completed (timestamp of its latest edge).
    pub at: Timestamp,
    /// Span `τ(g)` of the match.
    pub span: Duration,
    /// Variable bindings, in query-vertex order.
    pub bindings: Vec<BoundVertex>,
    /// The data edges realising the query edges, in query-edge order.
    pub edges: Vec<EdgeId>,
}

impl MatchEvent {
    /// Builds an event from a root-level partial match.
    pub fn from_match(
        handle: QueryHandle,
        query: &QueryGraph,
        graph: &DynamicGraph,
        m: &PartialMatch,
    ) -> Self {
        let bindings = m
            .binding
            .iter()
            .map(|(qv, dv)| BoundVertex {
                variable: query.vertex(qv).name.clone(),
                vertex: dv,
                key: graph.vertex_key(dv).unwrap_or("<unknown>").to_owned(),
            })
            .collect();
        MatchEvent {
            query: handle.id(),
            query_generation: handle.generation(),
            query_name: query.name().to_owned(),
            at: m.latest,
            span: m.span(),
            bindings,
            edges: m.edges.iter().map(|(_, e)| *e).collect(),
        }
    }

    /// The handle of the query that emitted this event — equal to the handle
    /// `register_*` returned for it, and never equal to the handle of a
    /// different query that later recycled the same id.
    pub fn handle(&self) -> QueryHandle {
        QueryHandle::new(self.query, self.query_generation)
    }

    /// The data vertex bound to a query variable, if present.
    pub fn binding(&self, variable: &str) -> Option<&BoundVertex> {
        self.bindings.iter().find(|b| b.variable == variable)
    }

    /// Compact single-line rendering, e.g. for the tabular event views.
    pub fn render(&self) -> String {
        let vars: Vec<String> = self
            .bindings
            .iter()
            .map(|b| format!("{}={}", b.variable, b.key))
            .collect();
        format!(
            "[t={}s] {} span={}s {}",
            self.at.as_micros() / 1_000_000,
            self.query_name,
            self.span.as_secs(),
            vars.join(" ")
        )
    }
}

/// Where the engine delivers match events.
pub trait EventSink {
    /// Called once per complete match, in discovery order.
    fn on_match(&mut self, event: MatchEvent);
}

/// A sink that stores every event in memory.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Vec<MatchEvent>,
}

impl CollectingSink {
    /// Creates an empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events collected so far.
    pub fn events(&self) -> &[MatchEvent] {
        &self.events
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the sink, returning the events.
    pub fn into_events(self) -> Vec<MatchEvent> {
        self.events
    }
}

impl EventSink for CollectingSink {
    fn on_match(&mut self, event: MatchEvent) {
        self.events.push(event);
    }
}

/// A sink that invokes a closure for every event.
pub struct CallbackSink<F: FnMut(MatchEvent)> {
    callback: F,
}

impl<F: FnMut(MatchEvent)> CallbackSink<F> {
    /// Wraps a closure as a sink.
    pub fn new(callback: F) -> Self {
        CallbackSink { callback }
    }
}

impl<F: FnMut(MatchEvent)> EventSink for CallbackSink<F> {
    fn on_match(&mut self, event: MatchEvent) {
        (self.callback)(event);
    }
}

/// A sink that forwards events over a crossbeam channel (e.g. to a UI or
/// logging thread), dropping events if the receiver has disconnected.
pub struct ChannelSink {
    sender: crossbeam::channel::Sender<MatchEvent>,
}

impl ChannelSink {
    /// Creates an unbounded channel sink, returning the sink and the receiver.
    pub fn unbounded() -> (Self, crossbeam::channel::Receiver<MatchEvent>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        (ChannelSink { sender: tx }, rx)
    }
}

impl EventSink for ChannelSink {
    fn on_match(&mut self, event: MatchEvent) {
        let _ = self.sender.send(event);
    }
}

/// A sink that only counts matches, observable through its paired
/// [`MatchCounter`] while the engine owns the sink — the cheapest way for a
/// tenant to watch a subscription (see
/// [`crate::ContinuousQueryEngine::subscribe`]).
#[derive(Debug)]
pub struct CountingSink {
    count: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl CountingSink {
    /// Creates the sink and the shared counter observing it.
    pub fn new() -> (CountingSink, MatchCounter) {
        let count = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        (
            CountingSink {
                count: count.clone(),
            },
            MatchCounter(count),
        )
    }
}

impl EventSink for CountingSink {
    fn on_match(&mut self, _event: MatchEvent) {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Shared observer of a [`CountingSink`].
#[derive(Debug, Clone)]
pub struct MatchCounter(std::sync::Arc<std::sync::atomic::AtomicU64>);

impl MatchCounter {
    /// Matches delivered to the paired sink so far.
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A sink that buffers every event behind a shared handle, so a subscriber
/// can drain its matches between ingest calls while the engine owns the sink
/// itself. The buffering twin of [`CollectingSink`] for the subscription API.
#[derive(Debug)]
pub struct BufferingSink {
    buffer: std::sync::Arc<std::sync::Mutex<Vec<MatchEvent>>>,
}

impl BufferingSink {
    /// Creates the sink and the shared buffer observing it.
    pub fn new() -> (BufferingSink, MatchBuffer) {
        let buffer = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        (
            BufferingSink {
                buffer: buffer.clone(),
            },
            MatchBuffer(buffer),
        )
    }
}

impl EventSink for BufferingSink {
    fn on_match(&mut self, event: MatchEvent) {
        self.buffer
            .lock()
            .expect("match buffer poisoned")
            .push(event);
    }
}

/// Shared observer of a [`BufferingSink`].
#[derive(Debug, Clone)]
pub struct MatchBuffer(std::sync::Arc<std::sync::Mutex<Vec<MatchEvent>>>);

impl MatchBuffer {
    /// Removes and returns every buffered event, in delivery order.
    pub fn drain(&self) -> Vec<MatchEvent> {
        std::mem::take(&mut *self.0.lock().expect("match buffer poisoned"))
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.0.lock().expect("match buffer poisoned").len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::EdgeEvent;
    use streamworks_query::{QueryEdgeId, QueryGraphBuilder, QueryVertexId};

    fn sample_event() -> (DynamicGraph, QueryGraph, PartialMatch) {
        let mut g = DynamicGraph::unbounded();
        let r = g.ingest(&EdgeEvent::new(
            "a1",
            "Article",
            "k1",
            "Keyword",
            "mentions",
            Timestamp::from_secs(5),
        ));
        let q = QueryGraphBuilder::new("demo")
            .vertex("a", "Article")
            .vertex("k", "Keyword")
            .edge("a", "mentions", "k")
            .build()
            .unwrap();
        let mut m = PartialMatch::seed(2, QueryEdgeId(0), r.edge, Timestamp::from_secs(5));
        m.binding.bind(QueryVertexId(0), r.src);
        m.binding.bind(QueryVertexId(1), r.dst);
        (g, q, m)
    }

    #[test]
    fn events_resolve_variable_names_and_keys() {
        let (g, q, m) = sample_event();
        let ev = MatchEvent::from_match(QueryHandle::new(QueryId(0), 0), &q, &g, &m);
        assert_eq!(ev.query_name, "demo");
        assert_eq!(ev.binding("a").unwrap().key, "a1");
        assert_eq!(ev.binding("k").unwrap().key, "k1");
        assert!(ev.binding("ghost").is_none());
        assert_eq!(ev.edges.len(), 1);
        let line = ev.render();
        assert!(line.contains("demo"));
        assert!(line.contains("a=a1"));
    }

    #[test]
    fn collecting_sink_accumulates() {
        let (g, q, m) = sample_event();
        let ev = MatchEvent::from_match(QueryHandle::new(QueryId(0), 0), &q, &g, &m);
        let mut sink = CollectingSink::new();
        assert!(sink.is_empty());
        sink.on_match(ev.clone());
        sink.on_match(ev);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.into_events().len(), 2);
    }

    #[test]
    fn callback_and_channel_sinks_deliver() {
        let (g, q, m) = sample_event();
        let ev = MatchEvent::from_match(QueryHandle::new(QueryId(3), 0), &q, &g, &m);
        let mut count = 0usize;
        {
            let mut cb = CallbackSink::new(|_e| count += 1);
            cb.on_match(ev.clone());
            cb.on_match(ev.clone());
        }
        assert_eq!(count, 2);

        let (mut chan, rx) = ChannelSink::unbounded();
        chan.on_match(ev);
        let received = rx.try_recv().unwrap();
        assert_eq!(received.query, QueryId(3));
    }

    #[test]
    fn counting_sink_is_observable_while_owned_elsewhere() {
        let (g, q, m) = sample_event();
        let ev = MatchEvent::from_match(QueryHandle::new(QueryId(0), 0), &q, &g, &m);
        let (mut sink, counter) = CountingSink::new();
        assert_eq!(counter.get(), 0);
        sink.on_match(ev.clone());
        sink.on_match(ev);
        // The sink can live inside the engine; the counter observes remotely.
        drop(sink);
        assert_eq!(counter.get(), 2);
    }

    #[test]
    fn buffering_sink_drains_in_delivery_order() {
        let (g, q, m) = sample_event();
        let (mut sink, buffer) = BufferingSink::new();
        assert!(buffer.is_empty());
        sink.on_match(MatchEvent::from_match(
            QueryHandle::new(QueryId(0), 0),
            &q,
            &g,
            &m,
        ));
        sink.on_match(MatchEvent::from_match(
            QueryHandle::new(QueryId(1), 0),
            &q,
            &g,
            &m,
        ));
        assert_eq!(buffer.len(), 2);
        let drained = buffer.drain();
        assert_eq!(drained[0].query, QueryId(0));
        assert_eq!(drained[1].query, QueryId(1));
        assert!(buffer.is_empty());
        sink.on_match(MatchEvent::from_match(
            QueryHandle::new(QueryId(2), 0),
            &q,
            &g,
            &m,
        ));
        assert_eq!(buffer.drain().len(), 1);
    }
}
