//! Per-query runtime counters.
//!
//! The metrics mirror the quantities the paper's evaluation narrative cares
//! about: how many partial matches a plan materialises (the cost the
//! selectivity-driven decomposition is designed to minimise, §4.1), how many
//! join attempts succeed, and how many complete matches are emitted.

use serde::{Deserialize, Serialize};

/// Counters for one registered query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// Data edges offered to the matcher.
    pub edges_processed: u64,
    /// Candidate data edges examined during local search.
    pub local_search_candidates: u64,
    /// Embeddings of leaf primitives produced by local search.
    pub primitive_matches: u64,
    /// Partial matches inserted across all SJ-Tree nodes (including leaves).
    pub partial_matches_inserted: u64,
    /// Partial matches currently stored (updated on insert/expiry).
    ///
    /// **Exact on every execution path** since the store unification: the
    /// shared join store's min-heap-scheduled expiry never retains stale
    /// matches behind an in-window head, so this reads 0 after a full-window
    /// drain — single-threaded and sharded alike.
    pub partial_matches_live: u64,
    /// Partial matches removed by window expiry.
    pub partial_matches_expired: u64,
    /// Join attempts between sibling match collections.
    pub joins_attempted: u64,
    /// Join attempts that produced a larger partial match.
    pub joins_succeeded: u64,
    /// Complete matches emitted (root-level combinations within the window).
    pub complete_matches: u64,
    /// Partial matches dropped because a per-node cap was reached.
    pub matches_dropped_by_cap: u64,
    /// Partial matches whose inline hot-path storage spilled to the heap
    /// (queries with more than 8 vertices or 6 edges — see
    /// `streamworks_core::binding`). A non-zero count flags a query that is
    /// silently paying a per-match allocation the paper-sized fast path
    /// avoids.
    pub binding_spills: u64,
    /// Match events dropped by this query's subscriber sinks under a
    /// `DropOldest`/`DropNewest` overflow policy (see
    /// `streamworks_core::SinkOverflowPolicy`). Sinks with the `Block`
    /// policy — and unbounded sinks — never contribute here. Defaults to 0
    /// when absent from serialized form (snapshots written before overflow
    /// policies existed).
    #[serde(default)]
    pub sink_events_dropped: u64,
    /// RPQ only: product-graph spanning-tree nodes currently live across the
    /// query's trees (0 for SJ-Tree queries). Exact after a prune: reads 0
    /// once a full window has drained.
    #[serde(default)]
    pub rpq_tree_nodes_live: u64,
    /// RPQ only: tree-node creations and timestamp refinements performed by
    /// the product-graph relaxation (the RPQ analogue of `joins_attempted`).
    #[serde(default)]
    pub rpq_expansions: u64,
    /// RPQ only: accepting-state arrivals, i.e. path matches emitted. Equal
    /// to `complete_matches` for a pure RPQ query; kept separate so absorbed
    /// mixed-kind aggregates can still attribute accepts.
    #[serde(default)]
    pub rpq_accepts: u64,
    /// Durable delivery attempts performed for this query's durable
    /// subscriptions (every try counts: first attempts, retries and
    /// probation probes). Zero when no durable subscribers are registered.
    #[serde(default)]
    pub delivery_attempts: u64,
    /// Delivery attempts that were retries or probation probes — performed
    /// while the subscription was `Degraded` or `Quarantined`.
    #[serde(default)]
    pub delivery_retries: u64,
    /// Promotions of a durable subscription back to `Active` after a
    /// degraded or quarantined spell.
    #[serde(default)]
    pub delivery_recoveries: u64,
    /// Gauge: matches routed to this query's durable subscriptions but not
    /// yet acknowledged (the summed outbox depth). Zero when every durable
    /// subscriber is caught up.
    #[serde(default)]
    pub cursor_lag: u64,
}

impl QueryMetrics {
    /// Join success ratio (1.0 when no joins were attempted).
    pub fn join_success_rate(&self) -> f64 {
        if self.joins_attempted == 0 {
            1.0
        } else {
            self.joins_succeeded as f64 / self.joins_attempted as f64
        }
    }

    /// Complete matches per processed edge.
    pub fn matches_per_edge(&self) -> f64 {
        if self.edges_processed == 0 {
            0.0
        } else {
            self.complete_matches as f64 / self.edges_processed as f64
        }
    }

    /// Adds another metrics snapshot into this one (used to aggregate across
    /// queries or runs).
    pub fn absorb(&mut self, other: &QueryMetrics) {
        self.edges_processed += other.edges_processed;
        self.local_search_candidates += other.local_search_candidates;
        self.primitive_matches += other.primitive_matches;
        self.partial_matches_inserted += other.partial_matches_inserted;
        self.partial_matches_live += other.partial_matches_live;
        self.partial_matches_expired += other.partial_matches_expired;
        self.joins_attempted += other.joins_attempted;
        self.joins_succeeded += other.joins_succeeded;
        self.complete_matches += other.complete_matches;
        self.matches_dropped_by_cap += other.matches_dropped_by_cap;
        self.binding_spills += other.binding_spills;
        self.sink_events_dropped += other.sink_events_dropped;
        self.rpq_tree_nodes_live += other.rpq_tree_nodes_live;
        self.rpq_expansions += other.rpq_expansions;
        self.rpq_accepts += other.rpq_accepts;
        self.delivery_attempts += other.delivery_attempts;
        self.delivery_retries += other.delivery_retries;
        self.delivery_recoveries += other.delivery_recoveries;
        self.cursor_lag += other.cursor_lag;
    }
}

/// Engine-level counters of the multi-query sharing subsystem (the canonical
/// primitive index — see `ARCHITECTURE.md`'s "query registration & sharing"
/// layer).
///
/// The headline figure is the **dedup ratio**: how many subscribed leaf
/// primitives are served per distinct interned primitive. With sharing
/// active, the engine runs one anchored local search per distinct primitive
/// per event instead of one per subscription, so `searches_saved` counts the
/// per-query searches that never had to run. Obtained from
/// [`crate::ContinuousQueryEngine::engine_metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Live distinct primitives in the shared index (interned canonical
    /// forms with at least one subscription).
    pub distinct_primitives: u64,
    /// Live subscriptions (one per SJ-Tree leaf of every registered,
    /// index-covered query).
    pub subscribed_primitives: u64,
    /// Anchored local searches actually run by the shared dispatch path.
    pub shared_searches_run: u64,
    /// Anchored searches the per-query path would have run in addition
    /// (one per extra active subscriber of every search run).
    pub searches_saved: u64,
    /// Embeddings produced by shared searches (pre-fan-out, canonical space).
    pub shared_embeddings: u64,
    /// Embeddings delivered to subscriber leaves (post-fan-out; one shared
    /// embedding counts once per receiving subscription).
    pub fanout_deliveries: u64,
    /// Live distinct shared subtrees (interned canonical join subtrees with
    /// at least one subscription). Zero when subtree sharing is off or
    /// absent from serialized form (pre-subtree snapshots).
    #[serde(default)]
    pub distinct_subtrees: u64,
    /// Live subtree subscriptions (one per (query, subscription node) pair).
    #[serde(default)]
    pub subscribed_subtrees: u64,
    /// Join-climb steps (join attempts) actually run inside shared subtree
    /// entries.
    #[serde(default)]
    pub subtree_joins_run: u64,
    /// Join-climb steps the per-query path would have run in addition (one
    /// per extra active subscriber of every entry's climb).
    #[serde(default)]
    pub subtree_joins_saved: u64,
    /// Joined matches delivered through constant dispatch of a *lifted*
    /// entry: the embedding was found by a constant-free search and routed to
    /// its tenants by hashing the bound constants instead of running one
    /// search per distinct constant.
    #[serde(default)]
    pub lifted_dispatch_hits: u64,
    /// Durable delivery attempts across every registered query (see
    /// [`QueryMetrics::delivery_attempts`]).
    #[serde(default)]
    pub delivery_attempts: u64,
    /// Retry/probe attempts across every registered query (see
    /// [`QueryMetrics::delivery_retries`]).
    #[serde(default)]
    pub delivery_retries: u64,
    /// Promotions back to `Active` across every registered query (see
    /// [`QueryMetrics::delivery_recoveries`]).
    #[serde(default)]
    pub delivery_recoveries: u64,
    /// Gauge: undelivered durable outbox entries across every registered
    /// query (see [`QueryMetrics::cursor_lag`]).
    #[serde(default)]
    pub cursor_lag: u64,
}

impl EngineMetrics {
    /// Subscribed-to-distinct primitive ratio: `1.0` means no structural
    /// overlap between registered queries, `N` means each distinct primitive
    /// serves `N` query leaves on average. (`1.0` when the index is empty.)
    pub fn dedup_ratio(&self) -> f64 {
        if self.distinct_primitives == 0 {
            1.0
        } else {
            self.subscribed_primitives as f64 / self.distinct_primitives as f64
        }
    }

    /// Subscribed-to-distinct *subtree* ratio: `N` means each interned join
    /// subtree serves `N` subscriptions on average (`1.0` when the subtree
    /// layer is empty or off).
    pub fn subtree_dedup_ratio(&self) -> f64 {
        if self.distinct_subtrees == 0 {
            1.0
        } else {
            self.subscribed_subtrees as f64 / self.distinct_subtrees as f64
        }
    }

    /// Fraction of all would-be anchored searches that the shared index
    /// eliminated (`0.0` when nothing has been searched yet).
    pub fn search_savings_rate(&self) -> f64 {
        let total = self.shared_searches_run + self.searches_saved;
        if total == 0 {
            0.0
        } else {
            self.searches_saved as f64 / total as f64
        }
    }
}

/// Counters for one shard of a sharded single-query matcher
/// (see `crate::ShardedMatcher`).
///
/// Shard counters are updated by the worker threads through relaxed atomics
/// and snapshotted by [`crate::ShardedMatcher::shard_metrics`] /
/// [`crate::ContinuousQueryEngine::shard_metrics`]; they are exact whenever
/// the matcher is quiescent (between `ingest` calls). Comparing
/// `items_routed` across shards shows how evenly the join-key hash spreads
/// the query's live state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMetrics {
    /// Work items (primitive or merged matches) this shard received, from the
    /// driver or from other shards.
    pub items_routed: u64,
    /// Merged matches this shard produced whose next join key hashed to a
    /// *different* shard (cross-shard handoffs at internal SJ-Tree nodes).
    pub handoffs_out: u64,
    /// Partial matches filed into this shard's join stores.
    pub partial_matches_inserted: u64,
    /// Partial matches currently stored in this shard.
    pub partial_matches_live: u64,
    /// Partial matches removed by window expiry.
    pub partial_matches_expired: u64,
    /// Join attempts against sibling matches in this shard.
    pub joins_attempted: u64,
    /// Join attempts that produced a larger partial match.
    pub joins_succeeded: u64,
    /// Complete (root-level) matches this shard emitted into the fan-in
    /// channel.
    pub complete_matches: u64,
    /// Partial matches dropped because the per-shard node cap was reached.
    pub matches_dropped_by_cap: u64,
    /// Matches processed here whose inline storage had spilled to the heap.
    pub binding_spills: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let m = QueryMetrics::default();
        assert_eq!(m.join_success_rate(), 1.0);
        assert_eq!(m.matches_per_edge(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let m = QueryMetrics {
            edges_processed: 100,
            joins_attempted: 10,
            joins_succeeded: 4,
            complete_matches: 2,
            ..Default::default()
        };
        assert!((m.join_success_rate() - 0.4).abs() < 1e-12);
        assert!((m.matches_per_edge() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_counters() {
        let mut a = QueryMetrics {
            edges_processed: 1,
            complete_matches: 2,
            ..Default::default()
        };
        let b = QueryMetrics {
            edges_processed: 3,
            complete_matches: 4,
            partial_matches_expired: 7,
            binding_spills: 5,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.edges_processed, 4);
        assert_eq!(a.complete_matches, 6);
        assert_eq!(a.partial_matches_expired, 7);
        assert_eq!(a.binding_spills, 5);
    }
}
