//! Adaptive re-planning: continuously collected statistics drive plan updates.
//!
//! Paper §4.3 closes with: "Continuously collecting the statistics information
//! from the data stream and updating the query decomposition and search
//! strategy remains an area for future work." The engine already maintains the
//! statistics ([`crate::ContinuousQueryEngine::summary`]) and exposes the
//! mechanism ([`crate::ContinuousQueryEngine::replan`]); this module adds
//! the *policy*: an [`AdaptiveReplanner`] that watches how far the live
//! edge-type distribution has drifted from the distribution each plan was
//! built against, predicts (with the plan cost model of `streamworks-query`)
//! whether a fresh statistics-driven plan would store fewer partial matches,
//! and re-plans only when the predicted improvement clears a configurable
//! threshold.
//!
//! The replanner is deliberately separate from the engine so applications can
//! call [`AdaptiveReplanner::check`] on their own cadence (every N edges, on a
//! timer, during quiet periods) — re-planning discards partial matches
//! accumulated under the old plan, so the policy should not fire on noise.

use crate::engine::ContinuousQueryEngine;
use crate::handle::QueryHandle;
use serde::{Deserialize, Serialize};
use streamworks_graph::hash::FxHashMap;
use streamworks_query::{
    estimate_shape_cost, CostBasedOrdered, DecompositionStrategy, Planner, SelectivityEstimator,
    SelectivityOrdered, TreeShapeKind, TriadWedges,
};
use streamworks_summarize::EdgeTripleKey;

/// Which statistics-driven strategy the replanner should switch plans to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplanStrategy {
    /// Cost-model join-order search (`cost-based`).
    CostBased,
    /// The paper's greedy selectivity ordering (`selectivity-ordered`).
    SelectivityOrdered,
    /// Triad-statistics wedge pairing (`triad-wedges`).
    TriadWedges,
}

impl ReplanStrategy {
    fn as_strategy(&self) -> Box<dyn DecompositionStrategy> {
        match self {
            ReplanStrategy::CostBased => Box::new(CostBasedOrdered::default()),
            ReplanStrategy::SelectivityOrdered => Box::new(SelectivityOrdered::default()),
            ReplanStrategy::TriadWedges => Box::new(TriadWedges::default()),
        }
    }
}

/// Policy knobs of the adaptive replanner.
///
/// The defaults are tuned for the **exact** O(#types) triad/type statistics
/// the summaries maintain (`streamworks-summarize`). The original values
/// (`min_edges_between_replans: 5_000`, `drift_threshold: 0.10`,
/// `min_improvement: 1.2`) were chosen when triad counts came from capped
/// neighbourhood *sampling*: large observation windows and wide margins
/// existed to keep estimator variance from triggering spurious re-plans.
/// With exact counts the measured drift carries no sampling noise — any
/// movement is real distribution change — so the observation window and both
/// thresholds tighten: see [`Default`] for the current values and
/// `EngineConfig`'s module docs for the pointer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Minimum number of newly observed edges between two re-plans of the same
    /// query (prevents thrashing on bursts). Default **2_000**: with exact
    /// statistics the window only needs to cover enough stream for the
    /// drifted distribution to be representative, not to average out
    /// estimator noise (was 5_000 under the sampled estimator).
    pub min_edges_between_replans: u64,
    /// Minimum total-variation distance between the edge-type distribution at
    /// plan time and now before a re-plan is even considered (0 = always
    /// consider, 1 = never). Default **0.05**: exact triad/type counts have
    /// zero sampling variance, so 5 points of measured drift is genuine
    /// (was 0.10 to stay above sampling jitter).
    pub drift_threshold: f64,
    /// Required ratio `current_cost / candidate_cost` before the re-plan is
    /// applied (1.0 = replan on any predicted improvement). Default **1.15**:
    /// the cost model's inputs are exact, so a 15% predicted reduction in
    /// stored partial matches is trustworthy enough to outweigh the
    /// partial-state discard a re-plan costs (was 1.2).
    pub min_improvement: f64,
    /// Strategy used for the candidate plan.
    pub strategy: ReplanStrategy,
    /// Tree shape used for the candidate plan.
    pub tree_kind: TreeShapeKind,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_edges_between_replans: 2_000,
            drift_threshold: 0.05,
            min_improvement: 1.15,
            strategy: ReplanStrategy::CostBased,
            tree_kind: TreeShapeKind::LeftDeep,
        }
    }
}

/// Outcome of one re-plan consideration for one query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplanDecision {
    /// The query considered.
    pub query: QueryHandle,
    /// Total-variation distance between the baseline and current edge-type
    /// distributions (0 = identical, 1 = disjoint).
    pub drift: f64,
    /// Predicted stored-partial-match population of the current plan under the
    /// *current* statistics.
    pub current_cost: f64,
    /// Predicted stored-partial-match population of the candidate plan.
    pub candidate_cost: f64,
    /// Whether the candidate plan replaced the current one.
    pub replanned: bool,
    /// Why the decision came out the way it did.
    pub reason: String,
}

/// Snapshot of the edge-type (triple) distribution a plan was built against.
#[derive(Debug, Clone, Default)]
struct StatSnapshot {
    triples: FxHashMap<EdgeTripleKey, u64>,
    total: u64,
    edges_observed: u64,
}

impl StatSnapshot {
    fn capture(engine: &ContinuousQueryEngine) -> Self {
        let types = engine.summary().types();
        let mut triples = FxHashMap::default();
        let mut total = 0u64;
        for (key, count) in types.triples() {
            triples.insert(key, count);
            total += count;
        }
        StatSnapshot {
            triples,
            total,
            edges_observed: engine.summary().edges_observed(),
        }
    }

    /// Total-variation distance between this snapshot and the engine's current
    /// live edge-type distribution.
    fn drift_from(&self, engine: &ContinuousQueryEngine) -> f64 {
        let current = StatSnapshot::capture(engine);
        if self.total == 0 && current.total == 0 {
            return 0.0;
        }
        if self.total == 0 || current.total == 0 {
            return 1.0;
        }
        let mut keys: Vec<EdgeTripleKey> = self.triples.keys().copied().collect();
        for k in current.triples.keys() {
            if !self.triples.contains_key(k) {
                keys.push(*k);
            }
        }
        let mut distance = 0.0;
        for k in keys {
            let p = *self.triples.get(&k).unwrap_or(&0) as f64 / self.total as f64;
            let q = *current.triples.get(&k).unwrap_or(&0) as f64 / current.total as f64;
            distance += (p - q).abs();
        }
        distance / 2.0
    }
}

/// Watches statistics drift and re-plans registered queries when a fresh
/// statistics-driven plan is predicted to store materially fewer partial
/// matches. See the module documentation for the policy.
#[derive(Debug)]
pub struct AdaptiveReplanner {
    config: AdaptiveConfig,
    /// Baseline statistics snapshot per live query handle.
    baselines: FxHashMap<QueryHandle, StatSnapshot>,
    decisions: Vec<ReplanDecision>,
}

impl AdaptiveReplanner {
    /// Creates a replanner with the given policy.
    pub fn new(config: AdaptiveConfig) -> Self {
        AdaptiveReplanner {
            config,
            baselines: FxHashMap::default(),
            decisions: Vec::new(),
        }
    }

    /// Creates a replanner with the default policy.
    pub fn with_defaults() -> Self {
        Self::new(AdaptiveConfig::default())
    }

    /// The policy in effect.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Every decision taken so far (including "considered but kept the plan").
    pub fn decisions(&self) -> &[ReplanDecision] {
        &self.decisions
    }

    /// Number of re-plans actually applied.
    pub fn replans_applied(&self) -> usize {
        self.decisions.iter().filter(|d| d.replanned).count()
    }

    /// Considers every registered query of `engine` for re-planning and applies
    /// the re-plan where the policy says so. Returns the decisions taken in
    /// this round (also appended to [`AdaptiveReplanner::decisions`]).
    pub fn check(&mut self, engine: &mut ContinuousQueryEngine) -> Vec<ReplanDecision> {
        let handles = engine.handles();
        // Forget deregistered queries; snapshot a baseline for new arrivals.
        self.baselines.retain(|h, _| handles.contains(h));
        for &handle in &handles {
            self.baselines
                .entry(handle)
                .or_insert_with(|| StatSnapshot::capture(engine));
        }

        let mut round = Vec::new();
        for handle in handles {
            let decision = self.consider(engine, handle);
            if let Some(d) = decision {
                round.push(d.clone());
                self.decisions.push(d);
            }
        }
        round
    }

    fn consider(
        &mut self,
        engine: &mut ContinuousQueryEngine,
        handle: QueryHandle,
    ) -> Option<ReplanDecision> {
        let baseline = self.baselines.get(&handle)?;
        let observed_since = engine
            .summary()
            .edges_observed()
            .saturating_sub(baseline.edges_observed);
        if observed_since < self.config.min_edges_between_replans {
            return None;
        }
        let drift = baseline.drift_from(engine);
        if drift < self.config.drift_threshold {
            return Some(ReplanDecision {
                query: handle,
                drift,
                current_cost: f64::NAN,
                candidate_cost: f64::NAN,
                replanned: false,
                reason: format!(
                    "drift {:.3} below threshold {:.3}",
                    drift, self.config.drift_threshold
                ),
            });
        }

        // Predict the cost of the current plan and of a candidate plan under
        // the *current* statistics.
        let strategy = self.config.strategy.as_strategy();
        let (current_cost, candidate_cost) = {
            let summary = engine.summary();
            let graph = engine.graph();
            let estimator = SelectivityEstimator::with_summary(summary, graph);
            let current_plan = engine.plan(handle).ok()?;
            let current_cost =
                estimate_shape_cost(&current_plan.query, &estimator, &current_plan.shape)
                    .stored_partial_matches;
            let candidate = Planner::new()
                .with_statistics(summary, graph)
                .tree_kind(self.config.tree_kind)
                .plan_with(current_plan.query.clone(), strategy.as_ref());
            let candidate_cost = match candidate {
                Ok(plan) => {
                    estimate_shape_cost(&plan.query, &estimator, &plan.shape).stored_partial_matches
                }
                Err(_) => f64::INFINITY,
            };
            (current_cost, candidate_cost)
        };

        let improvement = if candidate_cost > 0.0 {
            current_cost / candidate_cost
        } else if current_cost > 0.0 {
            f64::INFINITY
        } else {
            // Both plans are predicted to store no partial matches (e.g. a
            // single-primitive tree): there is nothing to improve.
            1.0
        };
        if !improvement.is_finite() && candidate_cost.is_infinite() {
            return Some(ReplanDecision {
                query: handle,
                drift,
                current_cost,
                candidate_cost,
                replanned: false,
                reason: "candidate planning failed".into(),
            });
        }
        if improvement < self.config.min_improvement {
            return Some(ReplanDecision {
                query: handle,
                drift,
                current_cost,
                candidate_cost,
                replanned: false,
                reason: format!(
                    "predicted improvement {:.2}x below required {:.2}x",
                    improvement, self.config.min_improvement
                ),
            });
        }

        let applied = engine
            .replan(handle, strategy.as_ref(), self.config.tree_kind)
            .is_ok();
        if applied {
            self.baselines.insert(handle, StatSnapshot::capture(engine));
        }
        Some(ReplanDecision {
            query: handle,
            drift,
            current_cost,
            candidate_cost,
            replanned: applied,
            reason: if applied {
                format!(
                    "drift {:.3}, predicted improvement {:.2}x — replanned",
                    drift, improvement
                )
            } else {
                "engine rejected the re-plan".into()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use streamworks_graph::{Duration, EdgeEvent, Timestamp};
    use streamworks_query::{LeftDeepEdgeChain, QueryGraph, QueryGraphBuilder};

    fn ev(src: &str, st: &str, dst: &str, dt: &str, et: &str, t: i64) -> EdgeEvent {
        EdgeEvent::new(src, st, dst, dt, et, Timestamp::from_secs(t))
    }

    fn wedge_query(window: Duration) -> QueryGraph {
        QueryGraphBuilder::new("wedge")
            .window(window)
            .vertex("a1", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a1", "located", "l")
            .build()
            .unwrap()
    }

    /// Feeds a stream where `mentions` edges vastly outnumber `located` edges,
    /// so a blind plan that anchors on `mentions` is predictably worse than a
    /// statistics-driven plan anchoring on `located`.
    fn feed_skewed(engine: &mut ContinuousQueryEngine, n: usize, start: i64) {
        let mut t = start;
        for i in 0..n {
            engine
                .ingest(&ev(
                    &format!("a{}", i % 50),
                    "Article",
                    &format!("k{}", i % 10),
                    "Keyword",
                    "mentions",
                    t,
                ))
                .unwrap();
            t += 1;
            if i % 40 == 0 {
                engine
                    .ingest(&ev(
                        &format!("a{}", i % 50),
                        "Article",
                        "paris",
                        "Location",
                        "located",
                        t,
                    ))
                    .unwrap();
                t += 1;
            }
        }
    }

    #[test]
    fn replans_after_drift_and_improvement() {
        let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
        let handle = engine
            .register_query_with(
                wedge_query(Duration::from_hours(2)),
                &LeftDeepEdgeChain,
                TreeShapeKind::LeftDeep,
            )
            .unwrap();
        assert_eq!(
            engine.plan(handle).unwrap().strategy,
            "left-deep-edge-chain"
        );

        let mut replanner = AdaptiveReplanner::new(AdaptiveConfig {
            min_edges_between_replans: 100,
            drift_threshold: 0.05,
            min_improvement: 1.0,
            ..AdaptiveConfig::default()
        });
        // Baseline snapshot is taken on the first check (empty graph).
        assert!(replanner.check(&mut engine).is_empty());

        feed_skewed(&mut engine, 500, 0);
        let decisions = replanner.check(&mut engine);
        assert_eq!(decisions.len(), 1);
        assert!(decisions[0].replanned, "reason: {}", decisions[0].reason);
        assert_eq!(engine.plan(handle).unwrap().strategy, "cost-based");
        assert_eq!(replanner.replans_applied(), 1);
        // The new plan still finds matches arriving after the re-plan.
        let out = engine
            .ingest(&[
                ev("fresh", "Article", "k0", "Keyword", "mentions", 10_000),
                ev("fresh", "Article", "paris", "Location", "located", 10_001),
            ])
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn does_not_replan_below_drift_threshold() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(wedge_query(Duration::from_hours(1)))
            .unwrap();
        let mut replanner = AdaptiveReplanner::new(AdaptiveConfig {
            min_edges_between_replans: 10,
            drift_threshold: 0.9,
            ..AdaptiveConfig::default()
        });
        // Capture the baseline on an already-populated graph, then keep feeding
        // the same distribution so the drift stays near zero.
        feed_skewed(&mut engine, 100, 0);
        replanner.check(&mut engine);
        feed_skewed(&mut engine, 100, 1_000);
        let decisions = replanner.check(&mut engine);
        assert!(decisions.iter().all(|d| !d.replanned));
        assert!(decisions
            .iter()
            .all(|d| d.reason.contains("drift") || d.reason.contains("improvement")));
        assert_eq!(replanner.replans_applied(), 0);
    }

    #[test]
    fn respects_min_edges_between_replans() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(wedge_query(Duration::from_hours(1)))
            .unwrap();
        let mut replanner = AdaptiveReplanner::new(AdaptiveConfig {
            min_edges_between_replans: 1_000_000,
            drift_threshold: 0.0,
            ..AdaptiveConfig::default()
        });
        replanner.check(&mut engine);
        feed_skewed(&mut engine, 200, 0);
        // Not enough edges observed since the baseline: no decision at all.
        assert!(replanner.check(&mut engine).is_empty());
    }

    #[test]
    fn keeps_plan_when_improvement_is_too_small() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        // Register with the statistics-driven strategy already — the candidate
        // cannot beat it by the required margin.
        engine
            .register_query(wedge_query(Duration::from_hours(1)))
            .unwrap();
        let mut replanner = AdaptiveReplanner::new(AdaptiveConfig {
            min_edges_between_replans: 10,
            drift_threshold: 0.0,
            min_improvement: 100.0,
            ..AdaptiveConfig::default()
        });
        replanner.check(&mut engine);
        feed_skewed(&mut engine, 200, 0);
        let decisions = replanner.check(&mut engine);
        assert!(!decisions.is_empty());
        assert!(decisions.iter().all(|d| !d.replanned));
        assert!(decisions
            .iter()
            .any(|d| d.reason.contains("improvement") || d.reason.contains("drift")));
    }

    #[test]
    fn handles_multiple_queries_and_late_registration() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query_with(
                wedge_query(Duration::from_hours(1)),
                &LeftDeepEdgeChain,
                TreeShapeKind::LeftDeep,
            )
            .unwrap();
        let mut replanner = AdaptiveReplanner::new(AdaptiveConfig {
            min_edges_between_replans: 50,
            drift_threshold: 0.05,
            min_improvement: 1.0,
            strategy: ReplanStrategy::TriadWedges,
            ..AdaptiveConfig::default()
        });
        replanner.check(&mut engine);
        feed_skewed(&mut engine, 200, 0);
        // Register a second query after the stream started.
        engine
            .register_query_with(
                wedge_query(Duration::from_hours(1)),
                &LeftDeepEdgeChain,
                TreeShapeKind::LeftDeep,
            )
            .unwrap();
        let decisions = replanner.check(&mut engine);
        // Both queries get a decision slot eventually; the late one only after
        // it accumulates its own observation budget.
        assert!(!decisions.is_empty());
        feed_skewed(&mut engine, 200, 1_000);
        let second_round = replanner.check(&mut engine);
        assert!(second_round
            .iter()
            .any(|d| d.query.id() == crate::event::QueryId(1)));
        for d in replanner.decisions() {
            if d.replanned {
                assert_eq!(
                    engine.plan(d.query).unwrap().strategy,
                    "triad-wedges",
                    "replanned queries must carry the configured strategy"
                );
            }
        }
    }
}
