//! Engine-level errors.

use crate::handle::{QueryHandle, SubscriptionId};
use streamworks_query::QueryError;

/// Errors produced by the service-facing engine API.
#[derive(Debug)]
pub enum EngineError {
    /// The handle's query has been deregistered. (Handles are only meaningful
    /// on the engine that issued them — using one on another engine, e.g. one
    /// restored from a checkpoint, is not detectable and must be avoided; see
    /// [`crate::EngineCheckpoint`].)
    StaleHandle(QueryHandle),
    /// The subscription is unknown or was already cancelled.
    UnknownSubscription(SubscriptionId),
    /// A configuration rejected by [`crate::EngineBuilder::build`].
    InvalidConfig(String),
    /// Query parsing or planning failed.
    Planning(QueryError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::StaleHandle(h) => {
                write!(f, "stale query handle {h}: the query was deregistered")
            }
            EngineError::UnknownSubscription(s) => {
                write!(f, "unknown or cancelled subscription {s}")
            }
            EngineError::InvalidConfig(msg) => write!(f, "invalid engine configuration: {msg}"),
            EngineError::Planning(e) => write!(f, "query planning failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Planning(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Planning(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QueryId;

    #[test]
    fn errors_render_their_context() {
        let stale = EngineError::StaleHandle(QueryHandle::new(QueryId(2), 1));
        assert!(stale.to_string().contains("q2@1"));
        let invalid = EngineError::InvalidConfig("prune_every must be positive".into());
        assert!(invalid.to_string().contains("prune_every"));
        let sub = EngineError::UnknownSubscription(SubscriptionId {
            query: QueryId(0),
            token: 4,
        });
        assert!(sub.to_string().contains("sub4.q0"));
    }

    #[test]
    fn planning_errors_chain_their_source() {
        use std::error::Error;
        let e: EngineError = QueryError::EmptyQuery.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("planning failed"));
    }
}
