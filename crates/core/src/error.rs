//! Engine-level errors.

use crate::handle::{QueryHandle, SubscriptionId};
use streamworks_query::QueryError;

/// Errors produced by the service-facing engine API.
#[derive(Debug)]
pub enum EngineError {
    /// The handle's query has been deregistered. (Handles are only meaningful
    /// on the engine that issued them — using one on another engine, e.g. one
    /// restored from a checkpoint, is not detectable and must be avoided; see
    /// [`crate::EngineCheckpoint`].)
    StaleHandle(QueryHandle),
    /// The subscription is unknown or was already cancelled.
    UnknownSubscription(SubscriptionId),
    /// A configuration rejected by [`crate::EngineBuilder::build`].
    InvalidConfig(String),
    /// Query parsing or planning failed.
    Planning(QueryError),
    /// A worker thread of a [`crate::ParallelRunner`] panicked; carries the
    /// worker index and the stringified panic payload.
    WorkerPanicked {
        /// Index of the worker thread that died (0-based).
        worker: usize,
        /// The panic payload, rendered to a string when possible.
        message: String,
    },
    /// A shard worker of a sharded query died mid-stream. Under the
    /// [`crate::ShardFailurePolicy::FailFast`] policy the engine is poisoned
    /// after surfacing this; under `Degrade` the shard's join state has been
    /// transplanted onto the surviving workers and the engine keeps serving.
    ShardFailed {
        /// Index of the shard whose worker died (0-based).
        shard: usize,
        /// The panic payload or failure description.
        message: String,
        /// True when the engine quarantined the shard and kept serving
        /// (`Degrade`); false when the engine is now poisoned (`FailFast`).
        degraded: bool,
    },
    /// The operation applies only to the other query class — e.g. asking for
    /// the SJ-Tree plan or matcher of a registered regular path query, or
    /// the RPQ pattern of a subgraph query.
    WrongQueryKind {
        /// The handle the operation was attempted on.
        handle: QueryHandle,
        /// The query kind the operation requires (`"subgraph"` or
        /// `"regular path"`).
        expected: &'static str,
    },
    /// The engine was poisoned by an earlier shard failure under the
    /// `FailFast` policy; every subsequent operation returns this until the
    /// engine is rebuilt (e.g. from a checkpoint).
    Poisoned(String),
    /// A checkpoint file could not be parsed — typically a partially-written
    /// or truncated snapshot.
    CorruptCheckpoint {
        /// Byte offset where parsing stopped, when the JSON scanner got that
        /// far; `None` for shape errors detected after parsing.
        offset: Option<usize>,
        /// Human-readable description of the parse failure.
        detail: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::StaleHandle(h) => {
                write!(f, "stale query handle {h}: the query was deregistered")
            }
            EngineError::UnknownSubscription(s) => {
                write!(f, "unknown or cancelled subscription {s}")
            }
            EngineError::InvalidConfig(msg) => write!(f, "invalid engine configuration: {msg}"),
            EngineError::Planning(e) => write!(f, "query planning failed: {e}"),
            EngineError::WorkerPanicked { worker, message } => {
                write!(f, "worker thread {worker} panicked: {message}")
            }
            EngineError::ShardFailed {
                shard,
                message,
                degraded,
            } => {
                if *degraded {
                    write!(
                        f,
                        "shard {shard} failed and was quarantined (state transplanted onto \
                         surviving shards): {message}"
                    )
                } else {
                    write!(f, "shard {shard} failed, engine poisoned: {message}")
                }
            }
            EngineError::WrongQueryKind { handle, expected } => {
                write!(f, "query {handle} is not a {expected} query")
            }
            EngineError::Poisoned(msg) => {
                write!(f, "engine poisoned by an earlier shard failure: {msg}")
            }
            EngineError::CorruptCheckpoint { offset, detail } => match offset {
                Some(at) => write!(f, "corrupt checkpoint at byte {at}: {detail}"),
                None => write!(f, "corrupt checkpoint: {detail}"),
            },
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Planning(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Planning(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QueryId;

    #[test]
    fn errors_render_their_context() {
        let stale = EngineError::StaleHandle(QueryHandle::new(QueryId(2), 1));
        assert!(stale.to_string().contains("q2@1"));
        let invalid = EngineError::InvalidConfig("prune_every must be positive".into());
        assert!(invalid.to_string().contains("prune_every"));
        let sub = EngineError::UnknownSubscription(SubscriptionId {
            query: QueryId(0),
            token: 4,
        });
        assert!(sub.to_string().contains("sub4.q0"));
    }

    #[test]
    fn failure_errors_render_their_context() {
        let p = EngineError::WorkerPanicked {
            worker: 3,
            message: "boom".into(),
        };
        assert!(p.to_string().contains("worker thread 3"));
        assert!(p.to_string().contains("boom"));
        let fail = EngineError::ShardFailed {
            shard: 1,
            message: "climb panicked".into(),
            degraded: false,
        };
        assert!(fail.to_string().contains("shard 1"));
        assert!(fail.to_string().contains("poisoned"));
        let degraded = EngineError::ShardFailed {
            shard: 2,
            message: "probe panicked".into(),
            degraded: true,
        };
        assert!(degraded.to_string().contains("quarantined"));
        let poisoned = EngineError::Poisoned("shard 0 died".into());
        assert!(poisoned.to_string().contains("poisoned"));
        let corrupt = EngineError::CorruptCheckpoint {
            offset: Some(17),
            detail: "unexpected end of input".into(),
        };
        assert!(corrupt.to_string().contains("byte 17"));
        let shapeless = EngineError::CorruptCheckpoint {
            offset: None,
            detail: "missing field".into(),
        };
        assert!(shapeless.to_string().contains("missing field"));
    }

    #[test]
    fn planning_errors_chain_their_source() {
        use std::error::Error;
        let e: EngineError = QueryError::EmptyQuery.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("planning failed"));
    }
}
