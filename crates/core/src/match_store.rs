//! The *shared per-parent join store* — the single match collection every
//! execution mode runs on.
//!
//! Each **internal** SJ-Tree node "maintains a set of matching subgraphs"
//! (paper property 3) for both of its children. Sibling nodes project onto
//! the same cut — the parent's join key — so instead of one store per child
//! (two hash maps, an insert + probe costing two lookups), one
//! [`SharedJoinStore`] per internal node holds both children's matches in a
//! single map from [`JoinKey`] to a two-sided bucket:
//! [`SharedJoinStore::probe_then_insert`] finds the bucket once, scans the
//! sibling side for join candidates, and files the new match on its own side
//! — one hash operation for the whole §4.2 join step.
//!
//! This store used to be the sharded path's private structure while the
//! single-threaded matcher ran a separate lazy-indexed `MatchStore`; both the
//! in-process [`crate::SjTreeMatcher`] and the shard workers of
//! [`crate::ShardedMatcher`] now drive the same store through the same
//! `probe_then_insert` front end (the shared inner loop lives in
//! `crate::join`), so there is exactly one join engine in the codebase.
//!
//! Hot-path representation:
//!
//! * [`JoinKey`] is an inline small-vector (cuts of real queries are 1–2
//!   vertices; up to 4 stay allocation-free), and key projection appends into
//!   it without heap work.
//! * Matches are stored **contiguously inside their bucket side**, so a
//!   probe is a sequential scan — no handle chasing on the path every join
//!   attempt walks.
//! * Expiry is **exact** and scheduled by a real min-heap keyed on earliest
//!   timestamp. The heap holds one entry per *bucket side* — that side's
//!   minimum earliest — rather than one per match: an entry is pushed only
//!   when a side's minimum decreases (for streams with mostly-increasing
//!   timestamps that is once per side, not once per match — a per-match heap
//!   measured ~25% slower end to end on the join-heavy bench), and
//!   superseded entries are dropped by **lazy stale deletion** when popped.
//!   [`SharedJoinStore::expire_older_than`] pops every side whose minimum
//!   predates the cutoff and sweeps exactly that side — nothing is ever
//!   retained behind an in-window head (the failure mode of the retired
//!   `MatchStore`'s FIFO queue), so `partial_matches_live` is exact on every
//!   execution path, and a prune pass only ever touches bucket sides that
//!   actually contain expirable matches. A pass that cannot remove anything
//!   costs one heap peek.
//! * The store maintains a histogram of covered query edges over live
//!   matches, so "best partial match" queries are O(1) reads and an expiry
//!   burst never rescans the store to restore the maximum.

use crate::binding::PartialMatch;
use smallvec::SmallVec;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use streamworks_graph::hash::FxHashMap;
use streamworks_graph::{Timestamp, VertexId};
use streamworks_query::QueryVertexId;

/// The join-key projection of a binding: the data vertices bound to the cut
/// vertices, in cut order. Inline up to 4 cut vertices — covering every plan
/// the decomposition strategies produce — so key construction is
/// allocation-free.
pub type JoinKey = SmallVec<VertexId, 4>;

/// Which child of an internal SJ-Tree node a match belongs to in a
/// [`SharedJoinStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JoinSide {
    /// The internal node's left child.
    Left,
    /// The internal node's right child.
    Right,
}

impl JoinSide {
    /// The opposite side (the sibling a probe scans).
    #[inline]
    pub fn other(self) -> JoinSide {
        match self {
            JoinSide::Left => JoinSide::Right,
            JoinSide::Right => JoinSide::Left,
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            JoinSide::Left => 0,
            JoinSide::Right => 1,
        }
    }
}

/// One key's matches, split by which child they belong to, plus the running
/// minimum earliest timestamp per side (the value the expiry heap schedules
/// on; `Timestamp(i64::MAX)` for an empty side).
#[derive(Debug)]
struct SideBucket {
    sides: [Vec<PartialMatch>; 2],
    min_earliest: [Timestamp; 2],
}

impl Default for SideBucket {
    fn default() -> Self {
        SideBucket {
            sides: [Vec::new(), Vec::new()],
            min_earliest: [Timestamp(i64::MAX), Timestamp(i64::MAX)],
        }
    }
}

/// One scheduled sweep: "bucket `key`, side `side`, had minimum `earliest`".
/// An entry is stale — dropped when popped — if the side has since been
/// swept, emptied, or re-scheduled under a smaller minimum.
#[derive(Debug, Clone)]
struct ExpiryEntry {
    earliest: Timestamp,
    key: JoinKey,
    side: JoinSide,
}

// `BinaryHeap` is a max-heap; order entries by *descending* earliest so the
// oldest side minimum surfaces first. The key is deliberately excluded from
// the ordering (entries with equal timestamps pop in unspecified order,
// which expiry does not care about).
impl PartialEq for ExpiryEntry {
    fn eq(&self, other: &Self) -> bool {
        self.earliest == other.earliest && self.side == other.side
    }
}
impl Eq for ExpiryEntry {}
impl PartialOrd for ExpiryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ExpiryEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .earliest
            .cmp(&self.earliest)
            .then_with(|| other.side.cmp(&self.side))
    }
}

/// The per-parent shared join index: one match collection per **internal**
/// SJ-Tree node holding both children's matches, keyed by the parent's cut
/// projection. See the module docs for the representation; see
/// [`Self::probe_then_insert`] for the single-hash-op join step every
/// execution mode shares.
#[derive(Debug)]
pub struct SharedJoinStore {
    /// The cut vertices of the owning internal node (the join key both
    /// children project onto).
    key_vertices: Vec<QueryVertexId>,
    /// Hash index from join key to the two-sided match bucket.
    buckets: FxHashMap<JoinKey, SideBucket>,
    /// Per-side backlog of matches whose key had no bucket when they were
    /// filed: they stay out of the hash index entirely until the sibling
    /// side's next probe drains them in (amortized one hash op per match,
    /// and matches that expire un-probed never touch the index at all —
    /// the asymmetric-selectivity regime the decomposition deliberately
    /// creates).
    pending: [Vec<PartialMatch>; 2],
    /// Minimum earliest timestamp per pending backlog
    /// (`Timestamp(i64::MAX)` when empty); the exact-expiry guard for the
    /// unindexed segment.
    pending_min: [Timestamp; 2],
    /// Exact-expiry schedule for the bucket index: min-heap of per-side
    /// minima (see module docs).
    expiry: BinaryHeap<ExpiryEntry>,
    live: [usize; 2],
    inserted_total: u64,
    expired_total: u64,
    /// Live-match counts by covered edge count (index = `edge_count()`),
    /// so the running maximum is maintained in O(1) on insert and removal.
    edge_histogram: Vec<u32>,
    max_edges: usize,
}

impl SharedJoinStore {
    /// Creates a store for an internal node whose cut is `key_vertices`.
    pub fn new(key_vertices: Vec<QueryVertexId>) -> Self {
        SharedJoinStore {
            key_vertices,
            buckets: FxHashMap::default(),
            pending: [Vec::new(), Vec::new()],
            pending_min: [Timestamp(i64::MAX), Timestamp(i64::MAX)],
            expiry: BinaryHeap::new(),
            live: [0, 0],
            inserted_total: 0,
            expired_total: 0,
            edge_histogram: Vec::new(),
            max_edges: 0,
        }
    }

    /// The join-key vertices (the owning node's cut).
    pub fn key_vertices(&self) -> &[QueryVertexId] {
        &self.key_vertices
    }

    /// Live matches stored across both sides.
    pub fn len(&self) -> usize {
        self.live[0] + self.live[1]
    }

    /// True if no matches are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live matches stored for one child.
    pub fn side_len(&self, side: JoinSide) -> usize {
        self.live[side.index()]
    }

    /// Total matches ever inserted.
    pub fn inserted_total(&self) -> u64 {
        self.inserted_total
    }

    /// Total matches removed by expiry.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    /// Entries currently in the expiry schedule (live side minima plus
    /// not-yet-popped stale entries); exposed for capacity tests.
    pub fn expiry_backlog(&self) -> usize {
        self.expiry.len()
    }

    /// Largest number of query edges covered by any live match (0 if empty).
    pub fn best_edge_count(&self) -> usize {
        self.max_edges
    }

    /// Computes the join key this store files `m` under (the projection onto
    /// the cut). `None` if the match does not bind every cut vertex.
    pub fn join_key_for(&self, m: &PartialMatch) -> Option<JoinKey> {
        let mut key = JoinKey::new();
        if m.binding.project_into(&self.key_vertices, &mut key) {
            Some(key)
        } else {
            None
        }
    }

    /// Scans the sibling side of `key` for join candidates — calling
    /// `probe(&m, candidate)` for each — and then files `m` under `key` on
    /// `side`. One hash lookup covers both the probe and the insert, the
    /// sibling scan is a contiguous walk, and the whole step performs no
    /// allocation once the store's capacities are warm.
    ///
    /// The probe-before-store order is the join discipline every execution
    /// mode shares: a match never joins with matches on its own side, so
    /// every (left, right) pair under a key is offered to `probe` exactly
    /// once, by whichever member is filed later.
    pub fn probe_then_insert<F>(
        &mut self,
        side: JoinSide,
        key: JoinKey,
        m: PartialMatch,
        mut probe: F,
    ) where
        F: FnMut(&PartialMatch, &PartialMatch),
    {
        let earliest = m.earliest;
        let edge_count = m.edge_count();

        // Any sibling match this probe must see is either already in the
        // bucket index or in the sibling's pending backlog: drain the
        // backlog first (a no-op in the join-heavy steady state, where
        // buckets exist and nothing ever goes pending).
        self.drain_pending(side.other());

        match self.buckets.get_mut(key.as_slice()) {
            Some(bucket) => {
                for candidate in &bucket.sides[side.other().index()] {
                    probe(&m, candidate);
                }
                bucket.sides[side.index()].push(m);
                // Schedule the side for expiry only when its minimum
                // decreases (for in-order streams: once per side, not once
                // per match). The side's previous entry, if any, goes stale
                // and is dropped lazily on pop.
                if earliest < bucket.min_earliest[side.index()] {
                    bucket.min_earliest[side.index()] = earliest;
                    self.expiry.push(ExpiryEntry {
                        earliest,
                        key,
                        side,
                    });
                }
            }
            None => {
                // No sibling match has this key (the drain above would have
                // built the bucket): no candidates to probe, and the match
                // stays out of the hash index until the sibling side next
                // probes — or expires without ever paying for indexing.
                if earliest < self.pending_min[side.index()] {
                    self.pending_min[side.index()] = earliest;
                }
                self.pending[side.index()].push(m);
            }
        }
        self.live[side.index()] += 1;
        self.inserted_total += 1;
        if edge_count >= self.edge_histogram.len() {
            self.edge_histogram.resize(edge_count + 1, 0);
        }
        self.edge_histogram[edge_count] += 1;
        self.max_edges = self.max_edges.max(edge_count);
    }

    /// Moves every pending match of `side` into the bucket index (called
    /// before a sibling probe scans that side). Amortized one hash op per
    /// match over its lifetime; empty backlogs return immediately.
    fn drain_pending(&mut self, side: JoinSide) {
        if self.pending[side.index()].is_empty() {
            return;
        }
        let drained = std::mem::take(&mut self.pending[side.index()]);
        for m in drained {
            let earliest = m.earliest;
            let key = self
                .join_key_for(&m)
                .expect("stored match binds its join key");
            let bucket = self.buckets.entry(key.clone()).or_default();
            bucket.sides[side.index()].push(m);
            if earliest < bucket.min_earliest[side.index()] {
                bucket.min_earliest[side.index()] = earliest;
                self.expiry.push(ExpiryEntry {
                    earliest,
                    key,
                    side,
                });
            }
        }
        self.pending_min[side.index()] = Timestamp(i64::MAX);
    }

    /// Iterates every stored match (both sides, unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &PartialMatch> {
        self.buckets
            .values()
            .flat_map(|b| b.sides.iter().flatten())
            .chain(self.pending.iter().flatten())
    }

    /// Removes every match whose earliest edge is older than `cutoff` (such
    /// matches can never satisfy `τ(g) < tW` once stream time has passed
    /// `cutoff + tW`), returning the number removed.
    ///
    /// **Exact**: every live bucket side carries a fresh schedule entry for
    /// its minimum earliest, so the heap surfaces every side containing an
    /// expirable match, and each surfaced side is swept completely — a
    /// skewed stream whose merged matches carry older `earliest` values than
    /// previously filed ones cannot hide state behind an in-window head.
    /// Sides with nothing to expire are never touched; a pass that cannot
    /// remove anything costs one heap peek.
    pub fn expire_older_than(&mut self, cutoff: Timestamp) -> usize {
        let mut removed = 0usize;
        // Unindexed segment first: sweep each pending backlog whose minimum
        // proves it holds something expirable.
        for side in [JoinSide::Left, JoinSide::Right] {
            let i = side.index();
            if self.pending_min[i] >= cutoff {
                continue;
            }
            let before = self.pending[i].len();
            let mut min = Timestamp(i64::MAX);
            let hist = &mut self.edge_histogram;
            self.pending[i].retain(|m| {
                if m.earliest < cutoff {
                    hist[m.edge_count()] -= 1;
                    false
                } else {
                    if m.earliest < min {
                        min = m.earliest;
                    }
                    true
                }
            });
            let swept = before - self.pending[i].len();
            removed += swept;
            self.live[i] -= swept;
            self.pending_min[i] = min;
        }
        loop {
            match self.expiry.peek() {
                Some(entry) if entry.earliest < cutoff => {}
                _ => break,
            }
            let ExpiryEntry {
                earliest,
                key,
                side,
            } = self.expiry.pop().expect("peeked entry exists");
            let Some(bucket) = self.buckets.get_mut(key.as_slice()) else {
                continue; // stale: bucket fully removed since scheduling
            };
            if bucket.min_earliest[side.index()] != earliest {
                continue; // stale: side swept or re-scheduled since
            }
            // Sweep the scheduled side, recomputing its minimum.
            let side_vec = &mut bucket.sides[side.index()];
            let before = side_vec.len();
            let mut min = Timestamp(i64::MAX);
            let hist = &mut self.edge_histogram;
            side_vec.retain(|m| {
                if m.earliest < cutoff {
                    hist[m.edge_count()] -= 1;
                    false
                } else {
                    if m.earliest < min {
                        min = m.earliest;
                    }
                    true
                }
            });
            let swept = before - side_vec.len();
            removed += swept;
            self.live[side.index()] -= swept;
            bucket.min_earliest[side.index()] = min;
            if side_vec.is_empty() {
                if bucket.sides[side.other().index()].is_empty() {
                    self.buckets.remove(key.as_slice());
                }
            } else {
                self.expiry.push(ExpiryEntry {
                    earliest: min,
                    key,
                    side,
                });
            }
        }
        self.expired_total += removed as u64;
        while self.max_edges > 0 && self.edge_histogram[self.max_edges] == 0 {
            self.max_edges -= 1;
        }
        removed
    }

    /// Moves every match of `other` — a store for the *same* SJ-Tree node,
    /// previously owned by another shard — into this store, without
    /// re-running any join probes.
    ///
    /// Used by the `Degrade` shard-failure policy to transplant a
    /// quarantined shard's state onto a survivor. Correctness rests on the
    /// sharding invariant that all state for one join key lives in exactly
    /// one shard: the incoming keys are disjoint from the resident ones, and
    /// every (left, right) pair under them has already been offered to the
    /// donor's probe. Re-probing here would re-emit those joins; the
    /// wholesale move preserves the exact match multiset. Expiry stays
    /// exact: every transplanted bucket side is re-scheduled on its recorded
    /// minimum, and the pending minima merge.
    pub fn absorb(&mut self, other: SharedJoinStore) {
        debug_assert_eq!(
            self.key_vertices, other.key_vertices,
            "absorb requires stores of the same SJ-Tree node"
        );
        let SharedJoinStore {
            key_vertices: _,
            buckets,
            pending,
            pending_min,
            expiry: _,
            live,
            inserted_total,
            expired_total,
            edge_histogram,
            max_edges,
        } = other;
        for (key, mut bucket) in buckets {
            let dst = self.buckets.entry(key.clone()).or_default();
            for side in [JoinSide::Left, JoinSide::Right] {
                let i = side.index();
                if bucket.sides[i].is_empty() {
                    continue;
                }
                dst.sides[i].append(&mut bucket.sides[i]);
                if bucket.min_earliest[i] < dst.min_earliest[i] {
                    dst.min_earliest[i] = bucket.min_earliest[i];
                    self.expiry.push(ExpiryEntry {
                        earliest: bucket.min_earliest[i],
                        key: key.clone(),
                        side,
                    });
                }
            }
        }
        let [p_left, p_right] = pending;
        for (side, backlog) in [(JoinSide::Left, p_left), (JoinSide::Right, p_right)] {
            let i = side.index();
            if pending_min[i] < self.pending_min[i] {
                self.pending_min[i] = pending_min[i];
            }
            self.pending[i].extend(backlog);
        }
        self.live[0] += live[0];
        self.live[1] += live[1];
        self.inserted_total += inserted_total;
        self.expired_total += expired_total;
        if edge_histogram.len() > self.edge_histogram.len() {
            self.edge_histogram.resize(edge_histogram.len(), 0);
        }
        for (i, count) in edge_histogram.into_iter().enumerate() {
            self.edge_histogram[i] += count;
        }
        self.max_edges = self.max_edges.max(max_edges);
    }

    /// Drops every stored match.
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.pending = [Vec::new(), Vec::new()];
        self.pending_min = [Timestamp(i64::MAX), Timestamp(i64::MAX)];
        self.expiry.clear();
        self.live = [0, 0];
        self.edge_histogram.clear();
        self.max_edges = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::EdgeId;
    use streamworks_query::QueryEdgeId;

    fn m(qv_bindings: &[(usize, u32)], edge: u64, ts: i64) -> PartialMatch {
        let mut pm = PartialMatch::seed(
            4,
            QueryEdgeId(edge as usize % 4),
            EdgeId(edge),
            Timestamp::from_secs(ts),
        );
        for &(qv, dv) in qv_bindings {
            assert!(pm.binding.bind(QueryVertexId(qv), VertexId(dv)));
        }
        pm
    }

    fn key_of(store: &SharedJoinStore, pm: &PartialMatch) -> JoinKey {
        store.join_key_for(pm).unwrap()
    }

    fn file(store: &mut SharedJoinStore, side: JoinSide, pm: PartialMatch) -> usize {
        let k = key_of(store, &pm);
        let mut seen = 0;
        store.probe_then_insert(side, k, pm, |_, _| seen += 1);
        seen
    }

    #[test]
    fn probes_only_the_sibling_side() {
        let mut store = SharedJoinStore::new(vec![QueryVertexId(0)]);
        let left1 = m(&[(0, 10), (1, 20)], 1, 100);
        let left2 = m(&[(0, 10), (1, 21)], 2, 101);
        let right = m(&[(0, 10), (2, 30)], 3, 102);

        assert_eq!(file(&mut store, JoinSide::Left, left1), 0);
        // A second left-side match under the same key must NOT see the first
        // (same-side matches never join).
        assert_eq!(file(&mut store, JoinSide::Left, left2), 0);
        assert_eq!(store.side_len(JoinSide::Left), 2);

        // A right-side match under the key probes both left matches.
        let k = key_of(&store, &right);
        let mut seen = 0;
        store.probe_then_insert(JoinSide::Right, k, right, |m, cand| {
            assert_eq!(m.binding.get(QueryVertexId(2)), Some(VertexId(30)));
            assert!(cand.binding.get(QueryVertexId(1)).is_some());
            seen += 1;
        });
        assert_eq!(seen, 2);
        assert_eq!(store.len(), 3);
        assert_eq!(store.inserted_total(), 3);
    }

    #[test]
    fn separates_keys() {
        let mut store = SharedJoinStore::new(vec![QueryVertexId(0)]);
        assert_eq!(file(&mut store, JoinSide::Left, m(&[(0, 10)], 1, 100)), 0);
        // A right-side match under a *different* key probes nothing.
        assert_eq!(file(&mut store, JoinSide::Right, m(&[(0, 99)], 2, 101)), 0);
    }

    #[test]
    fn composite_join_keys_project_in_order() {
        let store = SharedJoinStore::new(vec![QueryVertexId(1), QueryVertexId(0)]);
        let key = store.join_key_for(&m(&[(0, 10), (1, 20)], 9, 100)).unwrap();
        assert_eq!(key.as_slice(), &[VertexId(20), VertexId(10)]);
    }

    #[test]
    fn empty_key_store_groups_everything_together() {
        // An internal node with an empty cut groups all matches under one key.
        let mut store = SharedJoinStore::new(vec![]);
        assert_eq!(file(&mut store, JoinSide::Left, m(&[(0, 1)], 1, 10)), 0);
        assert_eq!(file(&mut store, JoinSide::Right, m(&[(0, 2)], 2, 20)), 1);
    }

    #[test]
    fn expiry_sweeps_exactly_and_skips_when_nothing_can_expire() {
        let mut store = SharedJoinStore::new(vec![QueryVertexId(0)]);
        for i in 0..10i64 {
            let pm = m(&[(0, (i % 3) as u32)], i as u64, 100 + i);
            let side = if i % 2 == 0 {
                JoinSide::Left
            } else {
                JoinSide::Right
            };
            file(&mut store, side, pm);
        }
        assert_eq!(store.len(), 10);
        // Cutoff below the minimum: the heap peek says nothing can go.
        assert_eq!(store.expire_older_than(Timestamp::from_secs(100)), 0);
        // Remove the first five (earliest 100..=104).
        assert_eq!(store.expire_older_than(Timestamp::from_secs(105)), 5);
        assert_eq!(store.len(), 5);
        assert_eq!(store.expired_total(), 5);
        // Survivors are still probeable.
        let probe = m(&[(0, 0)], 99, 200);
        let seen = file(&mut store, JoinSide::Left, probe);
        assert!(seen > 0, "surviving right-side matches remain indexed");
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn absorb_transplants_without_reprobing_and_keeps_expiry_exact() {
        // Donor and survivor hold disjoint key sets (the sharding invariant).
        let mut survivor = SharedJoinStore::new(vec![QueryVertexId(0)]);
        file(&mut survivor, JoinSide::Left, m(&[(0, 1)], 1, 100));
        file(&mut survivor, JoinSide::Right, m(&[(0, 1)], 2, 200));

        let mut donor = SharedJoinStore::new(vec![QueryVertexId(0)]);
        file(&mut donor, JoinSide::Left, m(&[(0, 7)], 3, 50));
        file(&mut donor, JoinSide::Left, m(&[(0, 8)], 4, 300)); // stays pending
        let donor_inserted = donor.inserted_total();

        survivor.absorb(donor);
        assert_eq!(survivor.len(), 4);
        assert_eq!(survivor.inserted_total(), 2 + donor_inserted);

        // Transplanted matches join with *new* arrivals exactly once…
        assert_eq!(file(&mut survivor, JoinSide::Right, m(&[(0, 7)], 5, 60)), 1);
        // …and the transplanted side minima stay on the expiry schedule:
        // cutoff 150 removes the ts=50/60 pair plus the survivor's ts=100.
        assert_eq!(
            survivor.expire_older_than(Timestamp::from_secs(150)),
            3,
            "transplanted state must not hide from expiry"
        );
        assert_eq!(survivor.len(), 2);
    }

    #[test]
    fn skewed_insertion_order_expires_exactly() {
        // The regime the old FIFO expiry queue got wrong: a match with an
        // *older* earliest timestamp filed after newer ones (merged matches
        // inherit the minimum of their components, so this happens on every
        // join-heavy stream). The heap re-schedules the side on the new
        // minimum and the sweep removes exactly the expirable set.
        let mut store = SharedJoinStore::new(vec![QueryVertexId(0)]);
        file(&mut store, JoinSide::Left, m(&[(0, 1)], 1, 200));
        file(&mut store, JoinSide::Left, m(&[(0, 2)], 2, 100)); // older, behind
        file(&mut store, JoinSide::Left, m(&[(0, 3)], 3, 300));
        // Cutoff between the skewed entry and the head of insertion order:
        // exactly the ts=100 match must go, regardless of arrival position.
        assert_eq!(store.expire_older_than(Timestamp::from_secs(150)), 1);
        assert_eq!(store.len(), 2);
        assert!(store
            .iter()
            .all(|pm| pm.earliest >= Timestamp::from_secs(150)));
        // Full-window drain leaves nothing behind the head.
        assert_eq!(store.expire_older_than(Timestamp::from_secs(1_000)), 2);
        assert_eq!(store.len(), 0);
        assert_eq!(store.expired_total(), 3);
    }

    #[test]
    fn long_stream_keeps_schedule_and_memory_bounded() {
        // Decreasing side minima are the worst case for the lazy schedule
        // (every insert can push an entry); periodic expiry must keep both
        // the live population and the heap backlog proportional to the live
        // state, not the stream length.
        let mut store = SharedJoinStore::new(vec![QueryVertexId(0)]);
        for i in 0..10_000i64 {
            file(
                &mut store,
                JoinSide::Left,
                m(&[(0, (i % 7) as u32)], i as u64, i),
            );
            store.expire_older_than(Timestamp::from_secs(i - 50));
        }
        assert!(store.len() <= 52);
        assert!(
            store.expiry_backlog() <= 64,
            "schedule backlog grew to {} entries for ~51 live matches",
            store.expiry_backlog()
        );
    }

    #[test]
    fn sweep_keeps_buckets_consistent() {
        // Several matches under the same key; expire a prefix and verify the
        // survivors are all still probeable through the bucket.
        let mut store = SharedJoinStore::new(vec![QueryVertexId(0)]);
        for i in 0..10 {
            file(&mut store, JoinSide::Left, m(&[(0, 42)], i, 100 + i as i64));
        }
        store.expire_older_than(Timestamp::from_secs(105));
        let mut survivors = Vec::new();
        let probe = m(&[(0, 42)], 99, 200);
        let k = key_of(&store, &probe);
        store.probe_then_insert(JoinSide::Right, k, probe, |_, cand| {
            survivors.push(cand.edges[0].1 .0);
        });
        assert_eq!(survivors.len(), 5);
        for id in 5..10u64 {
            assert!(survivors.contains(&id), "edge {id} lost from bucket");
        }
    }

    #[test]
    fn best_edge_count_tracks_running_max() {
        let mut store = SharedJoinStore::new(vec![QueryVertexId(0)]);
        assert_eq!(store.best_edge_count(), 0);
        file(&mut store, JoinSide::Left, m(&[(0, 1)], 1, 10));
        assert_eq!(store.best_edge_count(), 1);
        let mut big = m(&[(0, 2)], 2, 20);
        assert!(big.add_edge(QueryEdgeId(3), EdgeId(30), Timestamp::from_secs(21)));
        file(&mut store, JoinSide::Right, big);
        assert_eq!(store.best_edge_count(), 2);
        // Expiring the maximal match restores the max from the histogram.
        store.expire_older_than(Timestamp::from_secs(15));
        assert_eq!(store.best_edge_count(), 2);
        store.expire_older_than(Timestamp::from_secs(100));
        assert_eq!(store.best_edge_count(), 0);
    }

    #[test]
    fn join_side_other_flips() {
        assert_eq!(JoinSide::Left.other(), JoinSide::Right);
        assert_eq!(JoinSide::Right.other(), JoinSide::Left);
    }
}
