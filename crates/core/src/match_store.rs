//! Per-SJ-Tree-node partial-match collections.
//!
//! Each SJ-Tree node "maintains a set of matching subgraphs" (paper property
//! 3). The store indexes partial matches by the projection of their binding
//! onto the node's *join key* (the cut vertices of its parent) so that the
//! upward join of §4.2 is a hash lookup instead of a scan, and it supports
//! window-based expiry so stale partial matches do not accumulate (§2.1's
//! `τ(g) < tW` applies to partial matches too — anything outside the window
//! can never complete).
//!
//! Hot-path representation:
//!
//! * [`JoinKey`] is an inline small-vector (cuts of real queries are 1–2
//!   vertices; up to 4 stay allocation-free), and [`MatchStore::candidates`]
//!   accepts a **borrowed** `&[VertexId]`, so probing a sibling's collection
//!   never materialises an owned key.
//! * Slots are recycled through a free list (long streams no longer grow the
//!   slab unboundedly) with generation-tagged [`MatchHandle`]s so a handle to
//!   an expired match can never observe its slot's next tenant.
//! * Each occupied slot remembers its position inside its key bucket, making
//!   the unlink on expiry a swap-remove instead of an O(bucket) scan.
//! * The store maintains a running maximum of covered query edges per live
//!   match, so "best partial match" queries are O(1) reads instead of full
//!   scans.
//! * Join indexing is **lazy**: a freshly inserted match is queued in an
//!   unindexed backlog and only added to the key index when the sibling node
//!   next probes this store. Under asymmetric leaf selectivities — the regime
//!   the selectivity-ordered decomposition deliberately creates — the
//!   non-selective side accumulates thousands of partial matches that expire
//!   without ever being probed; those now skip the hash index entirely, both
//!   on insert and on expiry.

use crate::binding::PartialMatch;
use smallvec::SmallVec;
use streamworks_graph::hash::FxHashMap;
use streamworks_graph::{Timestamp, VertexId};
use streamworks_query::QueryVertexId;

/// Handle of a partial match within one [`MatchStore`].
///
/// Handles are generation-tagged: once the match expires, the handle goes
/// permanently stale even if its slot is recycled for a new match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MatchHandle {
    index: u32,
    generation: u32,
}

/// One key's handles. Most join keys index one or two matches at a time, so
/// buckets stay inline and inserting under a fresh key allocates nothing.
type Bucket = SmallVec<MatchHandle, 3>;

/// The join-key projection of a binding: the data vertices bound to the cut
/// vertices, in cut order. Inline up to 4 cut vertices — covering every plan
/// the decomposition strategies produce — so key construction is
/// allocation-free.
pub type JoinKey = SmallVec<VertexId, 4>;

/// One slab slot: the match plus its location in the key index.
#[derive(Debug)]
struct Slot {
    m: Option<PartialMatch>,
    /// Incremented every time the slot's occupant is removed.
    generation: u32,
    /// Position of this slot's handle within its `by_key` bucket
    /// (meaningful only when `indexed`).
    bucket_pos: u32,
    /// True once the occupant has been added to the key index.
    indexed: bool,
}

/// Partial-match collection of one SJ-Tree node.
#[derive(Debug, Default)]
pub struct MatchStore {
    /// The query vertices this store projects on (the parent's cut).
    key_vertices: Vec<QueryVertexId>,
    /// Slab of matches; expired slots are recycled via `free`.
    slots: Vec<Slot>,
    /// Indices of vacant slots, reused before the slab grows.
    free: Vec<u32>,
    /// Hash index from join key to the handles of matches with that key.
    /// Populated lazily: see `unindexed`.
    by_key: FxHashMap<JoinKey, Bucket>,
    /// Handles inserted since the last probe, not yet in `by_key`. Entries
    /// may be stale (expired before ever being probed); staleness is detected
    /// by the generation tag when the backlog is drained.
    unindexed: Vec<MatchHandle>,
    /// Live matches ordered (approximately) by earliest timestamp for expiry.
    /// Entries may be stale (already removed); they are skipped during expiry.
    expiry_queue: std::collections::VecDeque<(Timestamp, MatchHandle)>,
    live: usize,
    inserted_total: u64,
    expired_total: u64,
    /// Running maximum of `edge_count()` over live matches. Maintained
    /// incrementally on insert; recomputed after an expiry round only if a
    /// maximal match was removed.
    max_edges: usize,
}

impl MatchStore {
    /// Creates a store projecting on the given join-key vertices.
    pub fn new(key_vertices: Vec<QueryVertexId>) -> Self {
        MatchStore {
            key_vertices,
            ..Default::default()
        }
    }

    /// The join-key vertices this store projects on.
    pub fn key_vertices(&self) -> &[QueryVertexId] {
        &self.key_vertices
    }

    /// Number of live partial matches.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live matches are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total matches ever inserted.
    pub fn inserted_total(&self) -> u64 {
        self.inserted_total
    }

    /// Total matches expired.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    /// Number of slab slots (live + vacant); exposed for capacity tests.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Largest number of query edges covered by any live match (0 if empty).
    pub fn best_edge_count(&self) -> usize {
        self.max_edges
    }

    /// Computes the join key this store uses for `m` (projection onto the
    /// store's key vertices). `None` if the match does not bind them all.
    pub fn join_key_for(&self, m: &PartialMatch) -> Option<JoinKey> {
        let mut key = JoinKey::new();
        if m.binding.project_into(&self.key_vertices, &mut key) {
            Some(key)
        } else {
            None
        }
    }

    /// Inserts a partial match, returning its handle. The caller must ensure
    /// the match binds every join-key vertex (true for matches that cover the
    /// node's full subgraph).
    ///
    /// The match is *not* hashed into the key index yet — it joins the index
    /// the next time the sibling probes (see the module docs on lazy
    /// indexing), so inserting performs no hash-map operation at all.
    pub fn insert(&mut self, m: PartialMatch) -> MatchHandle {
        let earliest = m.earliest;
        let edge_count = m.edge_count();

        // Claim a slot: recycle a vacant one before growing the slab.
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Slot {
                    m: None,
                    generation: 0,
                    bucket_pos: 0,
                    indexed: false,
                });
                i
            }
        };
        let handle = MatchHandle {
            index,
            generation: self.slots[index as usize].generation,
        };
        let slot = &mut self.slots[index as usize];
        slot.m = Some(m);
        slot.indexed = false;

        self.unindexed.push(handle);
        self.expiry_queue.push_back((earliest, handle));
        self.live += 1;
        self.inserted_total += 1;
        self.max_edges = self.max_edges.max(edge_count);
        handle
    }

    /// Drains the unindexed backlog into the key index (called on probe).
    fn flush_index(&mut self) {
        while let Some(handle) = self.unindexed.pop() {
            let slot = &self.slots[handle.index as usize];
            if slot.generation != handle.generation || slot.m.is_none() {
                continue; // expired before ever being probed
            }
            let key = self
                .join_key_for(slot.m.as_ref().expect("checked live"))
                .expect("stored match binds its join key");
            let bucket = self.by_key.entry(key).or_default();
            let pos = bucket.len() as u32;
            bucket.push(handle);
            let slot = &mut self.slots[handle.index as usize];
            slot.bucket_pos = pos;
            slot.indexed = true;
        }
    }

    /// Fetches a live match by handle.
    pub fn get(&self, handle: MatchHandle) -> Option<&PartialMatch> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.m.as_ref()
    }

    /// Iterates the live matches whose join-key projection equals `key`.
    ///
    /// The key is a borrowed slice: probing allocates nothing. Takes `&mut`
    /// because a probe first drains the unindexed backlog into the key index.
    #[inline]
    pub fn candidates<'a>(
        &'a mut self,
        key: &[VertexId],
    ) -> impl Iterator<Item = &'a PartialMatch> + 'a {
        if !self.unindexed.is_empty() {
            self.flush_index();
        }
        let slots = &self.slots;
        self.by_key
            .get(key)
            .into_iter()
            .flatten()
            .filter_map(move |h| slots[h.index as usize].m.as_ref())
    }

    /// Iterates all live matches.
    pub fn iter(&self) -> impl Iterator<Item = &PartialMatch> {
        self.slots.iter().filter_map(|s| s.m.as_ref())
    }

    /// Removes the occupant of `handle`'s slot. A match that was never
    /// probed (still unindexed) pays no hash work at all; an indexed match is
    /// unlinked from its key bucket in O(1) via the stored bucket position.
    fn remove_at(&mut self, handle: MatchHandle) -> Option<PartialMatch> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        let m = slot.m.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        let bucket_pos = slot.bucket_pos as usize;
        let indexed = slot.indexed;

        if indexed {
            // Unlink from the key bucket by swap-remove, repairing the moved
            // entry's recorded position.
            let key = self
                .join_key_for(&m)
                .expect("stored match binds its join key");
            let bucket = self
                .by_key
                .get_mut(key.as_slice())
                .expect("stored match is indexed");
            debug_assert_eq!(bucket[bucket_pos], handle);
            let last = bucket.len() - 1;
            bucket.as_mut_slice().swap(bucket_pos, last);
            bucket.truncate(last);
            if let Some(&moved) = bucket.get(bucket_pos) {
                self.slots[moved.index as usize].bucket_pos = bucket_pos as u32;
            }
            if bucket.is_empty() {
                self.by_key.remove(key.as_slice());
            }
        }
        // Unindexed matches leave a stale backlog entry behind; it is skipped
        // (generation mismatch) when the backlog is drained or compacted.

        self.free.push(handle.index);
        self.live -= 1;
        Some(m)
    }

    /// Removes every live match whose *earliest* edge is older than `cutoff`
    /// (such matches can never satisfy `τ(g) < tW` once stream time has passed
    /// `cutoff + tW`). Returns the number removed.
    pub fn expire_older_than(&mut self, cutoff: Timestamp) -> usize {
        let mut removed = 0;
        let mut max_removed = false;
        while let Some(&(earliest, handle)) = self.expiry_queue.front() {
            if earliest >= cutoff {
                break;
            }
            self.expiry_queue.pop_front();
            if let Some(m) = self.remove_at(handle) {
                max_removed |= m.edge_count() == self.max_edges;
                removed += 1;
            }
        }
        self.expired_total += removed as u64;
        // Restore the running max only when a maximal match died.
        if max_removed {
            self.max_edges = self.iter().map(PartialMatch::edge_count).max().unwrap_or(0);
        }
        // Keep the never-probed backlog proportional to the live population.
        if self.unindexed.len() > 2 * self.live + 64 {
            let slots = &self.slots;
            self.unindexed.retain(|h| {
                let slot = &slots[h.index as usize];
                slot.generation == h.generation && slot.m.is_some()
            });
        }
        removed
    }

    /// Drops every stored match (used when a matcher is reset).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.by_key.clear();
        self.unindexed.clear();
        self.expiry_queue.clear();
        self.live = 0;
        self.max_edges = 0;
    }
}

/// Which child of an internal SJ-Tree node a match belongs to in a
/// [`SharedJoinStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// The internal node's left child.
    Left,
    /// The internal node's right child.
    Right,
}

impl JoinSide {
    /// The opposite side (the sibling a probe scans).
    #[inline]
    pub fn other(self) -> JoinSide {
        match self {
            JoinSide::Left => JoinSide::Right,
            JoinSide::Right => JoinSide::Left,
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            JoinSide::Left => 0,
            JoinSide::Right => 1,
        }
    }
}

/// One join key's matches, split by which child they belong to.
#[derive(Debug, Default)]
struct SideBucket {
    sides: [Vec<PartialMatch>; 2],
}

/// The *per-parent shared join index* (ROADMAP): one match collection per
/// **internal** SJ-Tree node holding both children's matches, keyed by the
/// parent's cut projection.
///
/// Sibling nodes project onto the same cut, so instead of one [`MatchStore`]
/// per child (two hash maps, and an insert+probe costing two lookups), the
/// shared store keeps a single map from [`JoinKey`] to a two-sided bucket:
/// [`SharedJoinStore::probe_then_insert`] finds the bucket once, scans the
/// sibling side for join candidates, and files the new match on its own side
/// — one hash operation for the whole insert+probe step.
///
/// This is the match collection the sharded single-query matcher
/// ([`crate::ShardedMatcher`]) partitions by join-key hash: every shard owns
/// one `SharedJoinStore` per internal node, holding the slice of the key
/// space that hashes to it. Probing reuses the same allocation-free
/// [`PartialMatch`] merge path as the single-threaded matcher.
///
/// Expiry is a sweep ([`SharedJoinStore::expire_older_than`]) guarded by a
/// running minimum of the stored matches' earliest timestamps, so prune
/// passes that cannot remove anything skip the map walk entirely.
#[derive(Debug)]
pub struct SharedJoinStore {
    /// The cut vertices of the owning internal node (the join key both
    /// children project onto).
    key_vertices: Vec<QueryVertexId>,
    buckets: FxHashMap<JoinKey, SideBucket>,
    live: [usize; 2],
    /// Lower bound on the earliest timestamp of any stored match; when a
    /// prune cutoff does not reach it, the sweep is skipped.
    min_earliest: Timestamp,
    inserted_total: u64,
    expired_total: u64,
}

impl SharedJoinStore {
    /// Creates a store for an internal node whose cut is `key_vertices`.
    pub fn new(key_vertices: Vec<QueryVertexId>) -> Self {
        SharedJoinStore {
            key_vertices,
            buckets: FxHashMap::default(),
            live: [0, 0],
            min_earliest: Timestamp(i64::MAX),
            inserted_total: 0,
            expired_total: 0,
        }
    }

    /// The join-key vertices (the owning node's cut).
    pub fn key_vertices(&self) -> &[QueryVertexId] {
        &self.key_vertices
    }

    /// Live matches stored across both sides.
    pub fn len(&self) -> usize {
        self.live[0] + self.live[1]
    }

    /// True if no matches are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live matches stored for one child.
    pub fn side_len(&self, side: JoinSide) -> usize {
        self.live[side.index()]
    }

    /// Total matches ever inserted.
    pub fn inserted_total(&self) -> u64 {
        self.inserted_total
    }

    /// Total matches removed by expiry.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    /// Computes the join key this store files `m` under (the projection onto
    /// the cut). `None` if the match does not bind every cut vertex.
    pub fn join_key_for(&self, m: &PartialMatch) -> Option<JoinKey> {
        let mut key = JoinKey::new();
        if m.binding.project_into(&self.key_vertices, &mut key) {
            Some(key)
        } else {
            None
        }
    }

    /// Scans the sibling side of `key` for join candidates — calling
    /// `probe(&m, candidate)` for each — and then files `m` under `key` on
    /// `side`. One hash lookup covers both the probe and the insert.
    ///
    /// The probe-before-store order matches the single-threaded matcher: a
    /// match never joins with matches on its own side, so every (left, right)
    /// pair under a key is offered to `probe` exactly once, by whichever
    /// member is inserted later.
    pub fn probe_then_insert<F>(&mut self, side: JoinSide, key: JoinKey, m: PartialMatch, probe: F)
    where
        F: FnMut(&PartialMatch, &PartialMatch),
    {
        let mut probe = probe;
        let bucket = self.buckets.entry(key).or_default();
        for candidate in &bucket.sides[side.other().index()] {
            probe(&m, candidate);
        }
        if m.earliest < self.min_earliest {
            self.min_earliest = m.earliest;
        }
        bucket.sides[side.index()].push(m);
        self.live[side.index()] += 1;
        self.inserted_total += 1;
    }

    /// Iterates every stored match (both sides, unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &PartialMatch> {
        self.buckets.values().flat_map(|b| b.sides.iter().flatten())
    }

    /// Removes every match whose earliest edge is older than `cutoff`,
    /// returning the number removed. A no-op (without touching the map) when
    /// the running minimum proves nothing can expire.
    pub fn expire_older_than(&mut self, cutoff: Timestamp) -> usize {
        if self.min_earliest >= cutoff {
            return 0;
        }
        let mut removed = 0usize;
        let mut min = Timestamp(i64::MAX);
        let live = &mut self.live;
        self.buckets.retain(|_, bucket| {
            for (i, matches) in bucket.sides.iter_mut().enumerate() {
                matches.retain(|m| {
                    if m.earliest < cutoff {
                        removed += 1;
                        live[i] -= 1;
                        false
                    } else {
                        if m.earliest < min {
                            min = m.earliest;
                        }
                        true
                    }
                });
            }
            !bucket.sides[0].is_empty() || !bucket.sides[1].is_empty()
        });
        self.min_earliest = min;
        self.expired_total += removed as u64;
        removed
    }

    /// Drops every stored match.
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.live = [0, 0];
        self.min_earliest = Timestamp(i64::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::EdgeId;
    use streamworks_query::QueryEdgeId;

    fn m(qv_bindings: &[(usize, u32)], edge: u64, ts: i64) -> PartialMatch {
        let mut pm = PartialMatch::seed(
            4,
            QueryEdgeId(edge as usize % 4),
            EdgeId(edge),
            Timestamp::from_secs(ts),
        );
        for &(qv, dv) in qv_bindings {
            assert!(pm.binding.bind(QueryVertexId(qv), VertexId(dv)));
        }
        pm
    }

    #[test]
    fn insert_and_lookup_by_join_key() {
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        store.insert(m(&[(0, 10), (1, 20)], 1, 100));
        store.insert(m(&[(0, 10), (1, 21)], 2, 101));
        store.insert(m(&[(0, 99), (1, 22)], 3, 102));
        assert_eq!(store.len(), 3);
        let hits: Vec<_> = store.candidates(&[VertexId(10)]).collect();
        assert_eq!(hits.len(), 2);
        let misses: Vec<_> = store.candidates(&[VertexId(1)]).collect();
        assert!(misses.is_empty());
    }

    #[test]
    fn composite_join_keys_project_in_order() {
        let mut store = MatchStore::new(vec![QueryVertexId(1), QueryVertexId(0)]);
        store.insert(m(&[(0, 10), (1, 20)], 1, 100));
        let key = store.join_key_for(&m(&[(0, 10), (1, 20)], 9, 100)).unwrap();
        assert_eq!(key.as_slice(), &[VertexId(20), VertexId(10)]);
        assert_eq!(store.candidates(&key).count(), 1);
    }

    #[test]
    fn expiry_removes_old_matches_and_updates_index() {
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        store.insert(m(&[(0, 10)], 1, 100));
        store.insert(m(&[(0, 10)], 2, 200));
        store.insert(m(&[(0, 10)], 3, 300));
        let removed = store.expire_older_than(Timestamp::from_secs(250));
        assert_eq!(removed, 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.expired_total(), 2);
        assert_eq!(store.candidates(&[VertexId(10)]).count(), 1);
        // Expiring again with an older cutoff removes nothing.
        assert_eq!(store.expire_older_than(Timestamp::from_secs(100)), 0);
    }

    #[test]
    fn get_and_iter_skip_expired_entries() {
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        let h1 = store.insert(m(&[(0, 10)], 1, 100));
        store.insert(m(&[(0, 11)], 2, 500));
        store.expire_older_than(Timestamp::from_secs(200));
        assert!(store.get(h1).is_none());
        assert_eq!(store.iter().count(), 1);
        assert_eq!(store.inserted_total(), 2);
    }

    #[test]
    fn slots_are_recycled_and_stale_handles_stay_dead() {
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        let h1 = store.insert(m(&[(0, 10)], 1, 100));
        store.expire_older_than(Timestamp::from_secs(200));
        assert!(store.get(h1).is_none());

        // The next insert reuses the vacated slot...
        let h2 = store.insert(m(&[(0, 11)], 2, 300));
        assert_eq!(
            store.slot_capacity(),
            1,
            "slot must be recycled, not appended"
        );
        // ...but the stale handle still observes nothing.
        assert!(store.get(h1).is_none());
        assert!(store.get(h2).is_some());
    }

    #[test]
    fn long_stream_keeps_slab_bounded() {
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        for i in 0..10_000i64 {
            store.insert(m(&[(0, (i % 7) as u32)], i as u64, i));
            // Expire everything older than 50s behind the newest insert.
            store.expire_older_than(Timestamp::from_secs(i - 50));
        }
        assert!(store.len() <= 52);
        assert!(
            store.slot_capacity() <= 128,
            "slab grew to {} slots for ~51 live matches",
            store.slot_capacity()
        );
    }

    #[test]
    fn swap_remove_unlink_keeps_buckets_consistent() {
        // Several matches under the same key; expire a prefix and verify the
        // survivors are all still reachable through the bucket.
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        for i in 0..10 {
            store.insert(m(&[(0, 42)], i, 100 + i as i64));
        }
        store.expire_older_than(Timestamp::from_secs(105));
        let survivors: Vec<u64> = store
            .candidates(&[VertexId(42)])
            .map(|pm| pm.edges[0].1 .0)
            .collect();
        assert_eq!(survivors.len(), 5);
        for id in 5..10u64 {
            assert!(survivors.contains(&id), "edge {id} lost from bucket");
        }
    }

    #[test]
    fn best_edge_count_tracks_running_max() {
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        assert_eq!(store.best_edge_count(), 0);
        store.insert(m(&[(0, 1)], 1, 10));
        assert_eq!(store.best_edge_count(), 1);
        let mut big = m(&[(0, 2)], 2, 20);
        assert!(big.add_edge(QueryEdgeId(3), EdgeId(30), Timestamp::from_secs(21)));
        store.insert(big);
        assert_eq!(store.best_edge_count(), 2);
        // Expiring the maximal match recomputes the max from survivors.
        store.expire_older_than(Timestamp::from_secs(15));
        assert_eq!(store.best_edge_count(), 2);
        store.expire_older_than(Timestamp::from_secs(100));
        assert_eq!(store.best_edge_count(), 0);
    }

    #[test]
    fn empty_key_store_groups_everything_together() {
        // The root has no parent cut: all matches share the empty key.
        let mut store = MatchStore::new(vec![]);
        store.insert(m(&[(0, 1)], 1, 10));
        store.insert(m(&[(0, 2)], 2, 20));
        assert_eq!(store.candidates(&[]).count(), 2);
    }

    #[test]
    fn clear_empties_the_store() {
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        store.insert(m(&[(0, 1)], 1, 10));
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.candidates(&[VertexId(1)]).count(), 0);
    }

    fn key_of(store: &SharedJoinStore, pm: &PartialMatch) -> JoinKey {
        store.join_key_for(pm).unwrap()
    }

    #[test]
    fn shared_store_probes_only_the_sibling_side() {
        let mut store = SharedJoinStore::new(vec![QueryVertexId(0)]);
        let left1 = m(&[(0, 10), (1, 20)], 1, 100);
        let left2 = m(&[(0, 10), (1, 21)], 2, 101);
        let right = m(&[(0, 10), (2, 30)], 3, 102);

        let mut seen = 0;
        let k = key_of(&store, &left1);
        store.probe_then_insert(JoinSide::Left, k, left1, |_, _| seen += 1);
        assert_eq!(seen, 0, "empty store: nothing to probe");

        // A second left-side match under the same key must NOT see the first
        // (same-side matches never join).
        let k = key_of(&store, &left2);
        store.probe_then_insert(JoinSide::Left, k, left2, |_, _| seen += 1);
        assert_eq!(seen, 0);
        assert_eq!(store.side_len(JoinSide::Left), 2);

        // A right-side match under the key probes both left matches.
        let k = key_of(&store, &right);
        store.probe_then_insert(JoinSide::Right, k, right, |m, cand| {
            assert_eq!(m.binding.get(QueryVertexId(2)), Some(VertexId(30)));
            assert!(cand.binding.get(QueryVertexId(1)).is_some());
            seen += 1;
        });
        assert_eq!(seen, 2);
        assert_eq!(store.len(), 3);
        assert_eq!(store.inserted_total(), 3);
    }

    #[test]
    fn shared_store_separates_keys() {
        let mut store = SharedJoinStore::new(vec![QueryVertexId(0)]);
        let left = m(&[(0, 10)], 1, 100);
        let k = key_of(&store, &left);
        store.probe_then_insert(JoinSide::Left, k, left, |_, _| {});
        // A right-side match under a *different* key probes nothing.
        let other = m(&[(0, 99)], 2, 101);
        let k = key_of(&store, &other);
        let mut seen = 0;
        store.probe_then_insert(JoinSide::Right, k, other, |_, _| seen += 1);
        assert_eq!(seen, 0);
    }

    #[test]
    fn shared_store_expiry_sweeps_and_skips_when_nothing_can_expire() {
        let mut store = SharedJoinStore::new(vec![QueryVertexId(0)]);
        for i in 0..10i64 {
            let pm = m(&[(0, (i % 3) as u32)], i as u64, 100 + i);
            let k = key_of(&store, &pm);
            let side = if i % 2 == 0 {
                JoinSide::Left
            } else {
                JoinSide::Right
            };
            store.probe_then_insert(side, k, pm, |_, _| {});
        }
        assert_eq!(store.len(), 10);
        // Cutoff below the minimum: the guarded sweep is a no-op.
        assert_eq!(store.expire_older_than(Timestamp::from_secs(100)), 0);
        // Remove the first five (earliest 100..=104).
        assert_eq!(store.expire_older_than(Timestamp::from_secs(105)), 5);
        assert_eq!(store.len(), 5);
        assert_eq!(store.expired_total(), 5);
        // Survivors are still probeable.
        let probe = m(&[(0, 0)], 99, 200);
        let k = key_of(&store, &probe);
        let mut seen = 0;
        store.probe_then_insert(JoinSide::Left, k, probe, |_, _| seen += 1);
        assert!(seen > 0, "surviving right-side matches remain indexed");
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn join_side_other_flips() {
        assert_eq!(JoinSide::Left.other(), JoinSide::Right);
        assert_eq!(JoinSide::Right.other(), JoinSide::Left);
    }
}
