//! Per-SJ-Tree-node partial-match collections.
//!
//! Each SJ-Tree node "maintains a set of matching subgraphs" (paper property
//! 3). The store indexes partial matches by the projection of their binding
//! onto the node's *join key* (the cut vertices of its parent) so that the
//! upward join of §4.2 is a hash lookup instead of a scan, and it supports
//! window-based expiry so stale partial matches do not accumulate (§2.1's
//! `τ(g) < tW` applies to partial matches too — anything outside the window
//! can never complete).

use crate::binding::PartialMatch;
use streamworks_graph::hash::FxHashMap;
use streamworks_graph::{Timestamp, VertexId};
use streamworks_query::QueryVertexId;

/// Handle of a partial match within one [`MatchStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchHandle(usize);

/// The join-key projection of a binding: the data vertices bound to the cut
/// vertices, in cut order.
pub type JoinKey = Vec<VertexId>;

/// Partial-match collection of one SJ-Tree node.
#[derive(Debug, Default)]
pub struct MatchStore {
    /// The query vertices this store projects on (the parent's cut).
    key_vertices: Vec<QueryVertexId>,
    /// Slab of matches; `None` marks expired/removed entries.
    slots: Vec<Option<PartialMatch>>,
    /// Hash index from join key to the handles of matches with that key.
    by_key: FxHashMap<JoinKey, Vec<MatchHandle>>,
    /// Live matches ordered (approximately) by earliest timestamp for expiry.
    /// Entries may be stale (already removed); they are skipped during expiry.
    expiry_queue: std::collections::VecDeque<(Timestamp, MatchHandle)>,
    live: usize,
    inserted_total: u64,
    expired_total: u64,
}

impl MatchStore {
    /// Creates a store projecting on the given join-key vertices.
    pub fn new(key_vertices: Vec<QueryVertexId>) -> Self {
        MatchStore {
            key_vertices,
            ..Default::default()
        }
    }

    /// The join-key vertices this store projects on.
    pub fn key_vertices(&self) -> &[QueryVertexId] {
        &self.key_vertices
    }

    /// Number of live partial matches.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live matches are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total matches ever inserted.
    pub fn inserted_total(&self) -> u64 {
        self.inserted_total
    }

    /// Total matches expired.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    fn key_of(&self, m: &PartialMatch) -> Option<JoinKey> {
        m.binding.project(&self.key_vertices)
    }

    /// Inserts a partial match, returning its handle. The caller must ensure
    /// the match binds every join-key vertex (true for matches that cover the
    /// node's full subgraph).
    pub fn insert(&mut self, m: PartialMatch) -> MatchHandle {
        let key = self.key_of(&m).unwrap_or_default();
        let earliest = m.earliest;
        let handle = MatchHandle(self.slots.len());
        self.slots.push(Some(m));
        self.by_key.entry(key).or_default().push(handle);
        self.expiry_queue.push_back((earliest, handle));
        self.live += 1;
        self.inserted_total += 1;
        handle
    }

    /// Fetches a live match by handle.
    pub fn get(&self, handle: MatchHandle) -> Option<&PartialMatch> {
        self.slots.get(handle.0).and_then(|s| s.as_ref())
    }

    /// Iterates the live matches whose join-key projection equals `key`.
    pub fn candidates<'a>(&'a self, key: &JoinKey) -> impl Iterator<Item = &'a PartialMatch> + 'a {
        self.by_key
            .get(key)
            .into_iter()
            .flatten()
            .filter_map(move |h| self.slots[h.0].as_ref())
    }

    /// Computes the join key this store would use for `m` (projection onto the
    /// store's key vertices). `None` if the match does not bind them all.
    pub fn join_key_for(&self, m: &PartialMatch) -> Option<JoinKey> {
        self.key_of(m)
    }

    /// Iterates all live matches.
    pub fn iter(&self) -> impl Iterator<Item = &PartialMatch> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Removes every live match whose *earliest* edge is older than `cutoff`
    /// (such matches can never satisfy `τ(g) < tW` once stream time has passed
    /// `cutoff + tW`). Returns the number removed.
    pub fn expire_older_than(&mut self, cutoff: Timestamp) -> usize {
        let mut removed = 0;
        while let Some(&(earliest, handle)) = self.expiry_queue.front() {
            if earliest >= cutoff {
                break;
            }
            self.expiry_queue.pop_front();
            if let Some(slot) = self.slots.get_mut(handle.0) {
                if let Some(m) = slot.take() {
                    // Also unlink from the key index.
                    if let Some(key) = m.binding.project(&self.key_vertices) {
                        if let Some(handles) = self.by_key.get_mut(&key) {
                            handles.retain(|h| *h != handle);
                            if handles.is_empty() {
                                self.by_key.remove(&key);
                            }
                        }
                    }
                    self.live -= 1;
                    removed += 1;
                }
            }
        }
        self.expired_total += removed as u64;
        removed
    }

    /// Drops every stored match (used when a matcher is reset).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.by_key.clear();
        self.expiry_queue.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::EdgeId;
    use streamworks_query::QueryEdgeId;

    fn m(qv_bindings: &[(usize, u32)], edge: u64, ts: i64) -> PartialMatch {
        let mut pm = PartialMatch::seed(
            4,
            QueryEdgeId(edge as usize % 4),
            EdgeId(edge),
            Timestamp::from_secs(ts),
        );
        for &(qv, dv) in qv_bindings {
            assert!(pm.binding.bind(QueryVertexId(qv), VertexId(dv)));
        }
        pm
    }

    #[test]
    fn insert_and_lookup_by_join_key() {
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        store.insert(m(&[(0, 10), (1, 20)], 1, 100));
        store.insert(m(&[(0, 10), (1, 21)], 2, 101));
        store.insert(m(&[(0, 99), (1, 22)], 3, 102));
        assert_eq!(store.len(), 3);
        let hits: Vec<_> = store.candidates(&vec![VertexId(10)]).collect();
        assert_eq!(hits.len(), 2);
        let misses: Vec<_> = store.candidates(&vec![VertexId(1)]).collect();
        assert!(misses.is_empty());
    }

    #[test]
    fn composite_join_keys_project_in_order() {
        let mut store = MatchStore::new(vec![QueryVertexId(1), QueryVertexId(0)]);
        store.insert(m(&[(0, 10), (1, 20)], 1, 100));
        let key = store
            .join_key_for(&m(&[(0, 10), (1, 20)], 9, 100))
            .unwrap();
        assert_eq!(key, vec![VertexId(20), VertexId(10)]);
        assert_eq!(store.candidates(&key).count(), 1);
    }

    #[test]
    fn expiry_removes_old_matches_and_updates_index() {
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        store.insert(m(&[(0, 10)], 1, 100));
        store.insert(m(&[(0, 10)], 2, 200));
        store.insert(m(&[(0, 10)], 3, 300));
        let removed = store.expire_older_than(Timestamp::from_secs(250));
        assert_eq!(removed, 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.expired_total(), 2);
        assert_eq!(store.candidates(&vec![VertexId(10)]).count(), 1);
        // Expiring again with an older cutoff removes nothing.
        assert_eq!(store.expire_older_than(Timestamp::from_secs(100)), 0);
    }

    #[test]
    fn get_and_iter_skip_expired_entries() {
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        let h1 = store.insert(m(&[(0, 10)], 1, 100));
        store.insert(m(&[(0, 11)], 2, 500));
        store.expire_older_than(Timestamp::from_secs(200));
        assert!(store.get(h1).is_none());
        assert_eq!(store.iter().count(), 1);
        assert_eq!(store.inserted_total(), 2);
    }

    #[test]
    fn empty_key_store_groups_everything_together() {
        // The root has no parent cut: all matches share the empty key.
        let mut store = MatchStore::new(vec![]);
        store.insert(m(&[(0, 1)], 1, 10));
        store.insert(m(&[(0, 2)], 2, 20));
        assert_eq!(store.candidates(&vec![]).count(), 2);
    }

    #[test]
    fn clear_empties_the_store() {
        let mut store = MatchStore::new(vec![QueryVertexId(0)]);
        store.insert(m(&[(0, 1)], 1, 10));
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.candidates(&vec![VertexId(1)]).count(), 0);
    }
}
