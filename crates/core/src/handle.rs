//! Generation-tagged handles for registered queries and subscriptions.
//!
//! A [`QueryHandle`] is the capability returned by every `register_*` method
//! of [`crate::ContinuousQueryEngine`]. It names a query *slot* plus the
//! generation of its occupant, so a handle kept across a
//! [`crate::ContinuousQueryEngine::deregister`] call goes permanently stale
//! instead of silently observing whatever query lives in the slot next.

use crate::event::QueryId;
use serde::{Deserialize, Serialize};

/// Capability for one registered query, returned by the `register_*` family.
///
/// All lifecycle operations (`pause`, `resume`, `deregister`, `replan`) and
/// accessors (`plan`, `metrics`, `matcher`, `subscribe`) take the handle; a
/// handle whose query has been deregistered yields
/// [`crate::EngineError::StaleHandle`].
///
/// A handle is scoped to the engine instance that issued it. In particular,
/// an engine restored from a [`crate::EngineCheckpoint`] compacts query slots
/// and issues fresh handles (via `handles()`); handles from the checkpointed
/// engine must not be used on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryHandle {
    id: QueryId,
    generation: u32,
}

impl QueryHandle {
    pub(crate) fn new(id: QueryId, generation: u32) -> Self {
        QueryHandle { id, generation }
    }

    /// The engine-assigned query id (the identifier carried by
    /// [`crate::MatchEvent::query`]).
    pub fn id(&self) -> QueryId {
        self.id
    }

    pub(crate) fn generation(&self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}@{}", self.id.0, self.generation)
    }
}

/// Identifier of one per-query subscription (see
/// [`crate::ContinuousQueryEngine::subscribe`]).
///
/// Cancelling a subscription through a stale or already-cancelled id is
/// rejected, never misdelivered.
///
/// Subscriptions are execution-agnostic: when the engine runs a query
/// sharded across worker threads ([`crate::EngineBuilder::shards`]), the
/// shards' results are fanned back into one channel and delivered to the
/// subscribed sinks on the ingest thread, ordered by stream position — the
/// same match multiset as a single-threaded engine, in the order of the
/// completing edges (only the relative order of several matches completed
/// by one edge is unspecified, as it depends on which shards produced
/// them). Sinks never need to be `Send`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId {
    pub(crate) query: QueryId,
    pub(crate) token: u64,
}

impl SubscriptionId {
    /// The query this subscription is attached to.
    pub fn query(&self) -> QueryId {
        self.query
    }

    /// The engine-unique subscription token — also the index of this
    /// subscription's `sink-delivery` failpoint site (see
    /// [`crate::failpoint`]).
    pub fn token(&self) -> u64 {
        self.token
    }
}

impl std::fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sub{}.q{}", self.token, self.query.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_expose_id_and_render() {
        let h = QueryHandle::new(QueryId(3), 2);
        assert_eq!(h.id(), QueryId(3));
        assert_eq!(h.generation(), 2);
        assert_eq!(h.to_string(), "q3@2");
        let s = SubscriptionId {
            query: QueryId(1),
            token: 9,
        };
        assert_eq!(s.to_string(), "sub9.q1");
    }

    #[test]
    fn handles_compare_by_slot_and_generation() {
        let a = QueryHandle::new(QueryId(0), 0);
        let b = QueryHandle::new(QueryId(0), 1);
        let c = QueryHandle::new(QueryId(1), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, QueryHandle::new(QueryId(0), 0));
    }
}
