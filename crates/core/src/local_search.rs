//! Local search: matching SJ-Tree leaf primitives around a newly arrived edge.
//!
//! Paper §4.1–4.2: "for every incoming edge we perform a local search to
//! detect a match with the smallest subgraphs associated with the leaves of
//! the SJ-Tree", where a local search is "a subgraph search performed in the
//! neighborhood of an edge in the data graph for a small query subgraph".
//!
//! The search anchors the new data edge on each query edge of the primitive it
//! could realise, then extends the remaining primitive edges by backtracking
//! over the (type-filtered) neighbourhood of already-bound vertices. Every
//! produced [`PartialMatch`] contains the new edge, so each embedding is
//! discovered exactly once — at the arrival of its last edge.

use crate::binding::PartialMatch;
use crate::constraints::CompiledConstraints;
use smallvec::SmallVec;
use streamworks_graph::{Direction, Duration, DynamicGraph, Edge};
use streamworks_query::{QueryEdgeId, QueryGraph};

/// Inline capacity of the remaining-edge worklists: primitives are small
/// (1–3 edges typically), so the backtracking search allocates nothing.
type EdgeList = SmallVec<QueryEdgeId, 8>;

/// Statistics from one local-search invocation (fed into the per-query metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalSearchStats {
    /// Candidate data edges examined while extending partial embeddings.
    pub candidates_examined: u64,
    /// Embeddings of the primitive that were produced.
    pub matches_found: u64,
}

/// Finds every embedding of `primitive_edges` (a connected set of query edges)
/// that uses `new_edge`, respecting the query window.
///
/// Results are appended to `out`.
pub fn find_primitive_matches(
    graph: &DynamicGraph,
    query: &QueryGraph,
    constraints: &CompiledConstraints,
    primitive_edges: &[QueryEdgeId],
    new_edge: &Edge,
    window: Duration,
    out: &mut Vec<PartialMatch>,
) -> LocalSearchStats {
    let mut stats = LocalSearchStats::default();
    for &anchor in primitive_edges {
        find_primitive_matches_anchored(
            graph,
            query,
            constraints,
            primitive_edges,
            anchor,
            new_edge,
            window,
            out,
            &mut stats,
        );
    }
    stats
}

/// Finds the embeddings of `primitive_edges` in which `new_edge` realises the
/// specific query edge `anchor`. Used by the matcher's per-type anchor index,
/// which has already narrowed the anchors compatible with `new_edge`'s type.
#[allow(clippy::too_many_arguments)]
pub fn find_primitive_matches_anchored(
    graph: &DynamicGraph,
    query: &QueryGraph,
    constraints: &CompiledConstraints,
    primitive_edges: &[QueryEdgeId],
    anchor: QueryEdgeId,
    new_edge: &Edge,
    window: Duration,
    out: &mut Vec<PartialMatch>,
    stats: &mut LocalSearchStats,
) {
    if !constraints.edge_matches(graph, query, anchor, new_edge) {
        return;
    }
    let q = query.edge(anchor);
    let mut seed = PartialMatch::seed(
        query.vertex_count(),
        anchor,
        new_edge.id,
        new_edge.timestamp,
    );
    if !seed.binding.bind(q.src, new_edge.src) {
        return;
    }
    if !seed.binding.bind(q.dst, new_edge.dst) {
        return;
    }
    let remaining: EdgeList = primitive_edges
        .iter()
        .copied()
        .filter(|&e| e != anchor)
        .collect();
    extend(
        graph,
        query,
        constraints,
        &remaining,
        seed,
        window,
        out,
        stats,
    );
}

/// Recursive extension over the remaining query edges of the primitive.
#[allow(clippy::too_many_arguments)]
fn extend(
    graph: &DynamicGraph,
    query: &QueryGraph,
    constraints: &CompiledConstraints,
    remaining: &[QueryEdgeId],
    current: PartialMatch,
    window: Duration,
    out: &mut Vec<PartialMatch>,
    stats: &mut LocalSearchStats,
) {
    if remaining.is_empty() {
        stats.matches_found += 1;
        out.push(current);
        return;
    }
    // Pick a remaining query edge with at least one bound endpoint (one exists
    // whenever the primitive is connected). Prefer edges with both endpoints
    // bound: they are pure existence checks and prune earliest.
    let pick = remaining
        .iter()
        .enumerate()
        .max_by_key(|(_, &qe)| {
            let e = query.edge(qe);
            let src_bound = current.binding.get(e.src).is_some() as u8;
            let dst_bound = current.binding.get(e.dst).is_some() as u8;
            src_bound + dst_bound
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    let qe = remaining[pick];
    let mut rest: EdgeList = SmallVec::new();
    for (i, &e) in remaining.iter().enumerate() {
        if i != pick {
            rest.push(e);
        }
    }

    let q = query.edge(qe);
    let src_bound = current.binding.get(q.src);
    let dst_bound = current.binding.get(q.dst);

    // Choose the anchor endpoint to expand from.
    let (anchor_qv, anchor_dv) = match (src_bound, dst_bound) {
        (Some(dv), _) => (q.src, dv),
        (None, Some(dv)) => (q.dst, dv),
        (None, None) => {
            // Disconnected primitive (should not happen for validated plans):
            // fall back to scanning all live edges with the full checks.
            for edge in graph.edges() {
                stats.candidates_examined += 1;
                if !constraints.edge_matches(graph, query, qe, edge) {
                    continue;
                }
                if current.uses_data_edge(edge.id) {
                    continue;
                }
                let q = query.edge(qe);
                let mut next = current.clone();
                if !next.binding.bind(q.src, edge.src) || !next.binding.bind(q.dst, edge.dst) {
                    continue;
                }
                if !next.add_edge(qe, edge.id, edge.timestamp) {
                    continue;
                }
                if !next.within_window(window) {
                    continue;
                }
                extend(graph, query, constraints, &rest, next, window, out, stats);
            }
            return;
        }
    };

    // Walk the type-filtered neighbourhood of the anchor directly (no boxed
    // iterator, no collected scratch vector). The typed iterator already
    // guarantees the edge type, and the anchor endpoint was validated when it
    // was bound, so each candidate only needs its *far* endpoint checked.
    let anchor_is_src = q.src == anchor_qv;
    let dir = if anchor_is_src {
        Direction::Out
    } else {
        Direction::In
    };
    match constraints.edge_type_filter(qe) {
        Err(()) => {} // query edge type unknown to the graph: no candidates
        Ok(Some(t)) => {
            for edge in graph.incident_edges(anchor_dv, dir, t) {
                stats.candidates_examined += 1;
                try_extension(
                    graph,
                    query,
                    constraints,
                    qe,
                    anchor_is_src,
                    edge,
                    &current,
                    &rest,
                    window,
                    out,
                    stats,
                );
            }
        }
        Ok(None) => {
            for edge in graph.incident_edges_any_type(anchor_dv, dir) {
                stats.candidates_examined += 1;
                try_extension(
                    graph,
                    query,
                    constraints,
                    qe,
                    anchor_is_src,
                    edge,
                    &current,
                    &rest,
                    window,
                    out,
                    stats,
                );
            }
        }
    }
}

/// Attempts to extend `current` with a neighbourhood candidate for `qe`.
///
/// Precondition (guaranteed by `extend`): the candidate's edge type satisfies
/// `qe`'s type constraint and its anchor-side endpoint is already bound and
/// validated, so only edge predicates and the far endpoint are (re)checked —
/// and the far endpoint only when it is newly bound (an already-bound far
/// vertex was validated when it was first bound, and `bind` rejects
/// mismatches).
#[allow(clippy::too_many_arguments)]
fn try_extension(
    graph: &DynamicGraph,
    query: &QueryGraph,
    constraints: &CompiledConstraints,
    qe: QueryEdgeId,
    anchor_is_src: bool,
    edge: &Edge,
    current: &PartialMatch,
    rest: &[QueryEdgeId],
    window: Duration,
    out: &mut Vec<PartialMatch>,
    stats: &mut LocalSearchStats,
) {
    if current.uses_data_edge(edge.id) {
        return;
    }
    let q = query.edge(qe);
    if !q.predicates.iter().all(|p| p.matches(&edge.attrs)) {
        return;
    }
    let (far_qv, far_dv) = if anchor_is_src {
        (q.dst, edge.dst)
    } else {
        (q.src, edge.src)
    };
    if current.binding.get(far_qv).is_none()
        && !constraints.vertex_matches(graph, query, far_qv, far_dv)
    {
        return;
    }
    let mut next = current.clone();
    if !next.binding.bind(q.src, edge.src) || !next.binding.bind(q.dst, edge.dst) {
        return;
    }
    if !next.add_edge(qe, edge.id, edge.timestamp) {
        return;
    }
    if !next.within_window(window) {
        return;
    }
    extend(graph, query, constraints, rest, next, window, out, stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{EdgeEvent, Timestamp};
    use streamworks_query::QueryGraphBuilder;

    fn news_query() -> QueryGraph {
        // (a:Article)-[:mentions]->(k:Keyword), (a)-[:located]->(l:Location)
        QueryGraphBuilder::new("wedge")
            .window(Duration::from_hours(1))
            .vertex("a", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a", "mentions", "k")
            .edge("a", "located", "l")
            .build()
            .unwrap()
    }

    fn ingest(
        g: &mut DynamicGraph,
        src: &str,
        st: &str,
        dst: &str,
        dt: &str,
        et: &str,
        t: i64,
    ) -> Edge {
        let r = g.ingest(&EdgeEvent::new(
            src,
            st,
            dst,
            dt,
            et,
            Timestamp::from_secs(t),
        ));
        g.edge(r.edge).unwrap().clone()
    }

    #[test]
    fn two_edge_primitive_matches_when_second_edge_arrives() {
        let mut g = DynamicGraph::unbounded();
        let q = news_query();
        ingest(&mut g, "a1", "Article", "k1", "Keyword", "mentions", 10);
        let located = ingest(&mut g, "a1", "Article", "l1", "Location", "located", 20);
        let c = CompiledConstraints::compile(&q, &g);
        let mut out = Vec::new();
        let prim = [QueryEdgeId(0), QueryEdgeId(1)];
        let stats = find_primitive_matches(&g, &q, &c, &prim, &located, q.window(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(stats.matches_found, 1);
        let m = &out[0];
        assert_eq!(m.edge_count(), 2);
        assert_eq!(
            m.binding.get(q.vertex_by_name("a").unwrap().id),
            g.vertex_by_key("a1")
        );
    }

    #[test]
    fn no_match_when_first_edge_missing() {
        let mut g = DynamicGraph::unbounded();
        let q = news_query();
        let located = ingest(&mut g, "a1", "Article", "l1", "Location", "located", 20);
        let c = CompiledConstraints::compile(&q, &g);
        let mut out = Vec::new();
        find_primitive_matches(
            &g,
            &q,
            &c,
            &[QueryEdgeId(0), QueryEdgeId(1)],
            &located,
            q.window(),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn window_excludes_stale_combinations() {
        let mut g = DynamicGraph::unbounded();
        let mut q = news_query();
        q.set_window(Duration::from_secs(5));
        ingest(&mut g, "a1", "Article", "k1", "Keyword", "mentions", 10);
        let located = ingest(&mut g, "a1", "Article", "l1", "Location", "located", 100);
        let c = CompiledConstraints::compile(&q, &g);
        let mut out = Vec::new();
        find_primitive_matches(
            &g,
            &q,
            &c,
            &[QueryEdgeId(0), QueryEdgeId(1)],
            &located,
            q.window(),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn multiple_embeddings_from_one_edge() {
        let mut g = DynamicGraph::unbounded();
        let q = news_query();
        // a1 mentions two keywords; the located edge completes a wedge with each.
        ingest(&mut g, "a1", "Article", "k1", "Keyword", "mentions", 1);
        ingest(&mut g, "a1", "Article", "k2", "Keyword", "mentions", 2);
        let located = ingest(&mut g, "a1", "Article", "l1", "Location", "located", 3);
        let c = CompiledConstraints::compile(&q, &g);
        let mut out = Vec::new();
        find_primitive_matches(
            &g,
            &q,
            &c,
            &[QueryEdgeId(0), QueryEdgeId(1)],
            &located,
            q.window(),
            &mut out,
        );
        assert_eq!(out.len(), 2);
        // The two embeddings bind k differently.
        let k = q.vertex_by_name("k").unwrap().id;
        let mut keywords: Vec<_> = out.iter().map(|m| m.binding.get(k).unwrap()).collect();
        keywords.sort();
        keywords.dedup();
        assert_eq!(keywords.len(), 2);
    }

    #[test]
    fn single_edge_primitive_is_a_type_check() {
        let mut g = DynamicGraph::unbounded();
        let q = news_query();
        let mention = ingest(&mut g, "a1", "Article", "k1", "Keyword", "mentions", 1);
        let c = CompiledConstraints::compile(&q, &g);
        let mut out = Vec::new();
        find_primitive_matches(
            &g,
            &q,
            &c,
            &[QueryEdgeId(0)],
            &mention,
            q.window(),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        // The located edge does not match the mentions primitive.
        let located = ingest(&mut g, "a1", "Article", "l1", "Location", "located", 2);
        out.clear();
        find_primitive_matches(
            &g,
            &q,
            &c,
            &[QueryEdgeId(0)],
            &located,
            q.window(),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn injectivity_prevents_vertex_reuse() {
        // Query: two distinct IPs both flowing into a third.
        let q = QueryGraphBuilder::new("fanin")
            .window(Duration::from_hours(1))
            .vertex("x", "IP")
            .vertex("y", "IP")
            .vertex("t", "IP")
            .edge("x", "flow", "t")
            .edge("y", "flow", "t")
            .build()
            .unwrap();
        let mut g = DynamicGraph::unbounded();
        // Only one source flows twice into the target: x and y would have to be
        // the same data vertex, which injectivity forbids.
        ingest(&mut g, "s", "IP", "t", "IP", "flow", 1);
        let second = ingest(&mut g, "s", "IP", "t", "IP", "flow", 2);
        let c = CompiledConstraints::compile(&q, &g);
        let mut out = Vec::new();
        find_primitive_matches(
            &g,
            &q,
            &c,
            &[QueryEdgeId(0), QueryEdgeId(1)],
            &second,
            q.window(),
            &mut out,
        );
        assert!(out.is_empty());
        // A genuinely different source produces a match.
        let third = ingest(&mut g, "s2", "IP", "t", "IP", "flow", 3);
        out.clear();
        find_primitive_matches(
            &g,
            &q,
            &c,
            &[QueryEdgeId(0), QueryEdgeId(1)],
            &third,
            q.window(),
            &mut out,
        );
        // 4 embeddings: the query is symmetric in (x, y), and s has two parallel
        // flow edges into t, so s2 can play x or y combined with either s edge.
        assert_eq!(out.len(), 4);
    }
}
