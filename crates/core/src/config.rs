//! Engine configuration and the validating builder.
//!
//! [`EngineConfig`] is the serialisable *snapshot* of an engine's settings
//! (checkpoints embed it verbatim); [`EngineBuilder`] is the service-facing
//! way to construct an engine — every setting is validated up front, so a
//! misconfigured deployment fails at build time with a
//! [`crate::EngineError::InvalidConfig`] instead of misbehaving mid-stream.
//!
//! Re-planning policy (observation window, drift and improvement thresholds)
//! lives in [`crate::AdaptiveConfig`]; its defaults are re-tuned for the
//! exact O(#types) triad statistics — see that type's rustdoc for the values
//! and the sampled-estimator history.

use crate::delivery::RetryPolicy;
use crate::engine::ContinuousQueryEngine;
use crate::error::EngineError;
use crate::telemetry::TelemetryLevel;
use serde::{Deserialize, Serialize};
use streamworks_graph::Duration;
use streamworks_summarize::SummaryConfig;

/// Configuration of a [`crate::ContinuousQueryEngine`].
///
/// Prefer assembling one through [`EngineBuilder`] (or
/// [`ContinuousQueryEngine::builder`]), which validates the settings;
/// the plain struct exists as the serialisable form carried by checkpoints.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Retention horizon of the underlying graph. `None` lets the engine pick
    /// the maximum window of the registered queries (extended automatically as
    /// queries are registered), which is the smallest retention that preserves
    /// correctness.
    pub retention: Option<Duration>,
    /// How many processed edges between partial-match pruning passes.
    pub prune_every: u64,
    /// Optional cap on live partial matches per SJ-Tree node per query.
    pub max_matches_per_node: Option<usize>,
    /// Whether to maintain the graph summary while streaming (needed for
    /// statistics-driven planning of queries registered later; costs extra
    /// per-edge work — see experiment E8).
    pub maintain_summary: bool,
    /// Summary configuration used when `maintain_summary` is set.
    pub summary: SummaryConfig,
    /// Worker threads each registered query's SJ-Tree match state is sharded
    /// over, by join-key hash (see `crate::ShardedMatcher`). `1` (the
    /// default) runs every matcher in-process on the ingest thread. Values
    /// above 1 spawn that many shard threads *per registered query*, so the
    /// knob targets deployments with one (or few) hot queries. When a cap is
    /// set, `max_matches_per_node` applies per shard. Defaults to 1 when
    /// absent from serialized form, so checkpoints written before the field
    /// existed keep restoring.
    #[serde(default = "default_shards")]
    pub shards: usize,
    /// Whether registered queries share anchored local searches through the
    /// engine's canonical primitive index (`true`, the default): isomorphic
    /// SJ-Tree leaf primitives across — and within — queries are searched
    /// once per event and fanned out to every subscriber, making the
    /// per-event cost of a registry of template-derived queries
    /// `O(#distinct primitives)` instead of `O(#queries)`. Matching results
    /// are identical either way; disable to measure the sharing win
    /// (`multi_query` bench) or to force strictly per-query execution.
    /// Defaults to `true` when absent from serialized form.
    #[serde(default = "default_shared_matching")]
    pub shared_matching: bool,
    /// Whether the shared index also interns common SJ-Tree *subtrees*
    /// (`true`, the default): when several queries' trees contain an
    /// isomorphic join subtree — up to and including the whole tree — the
    /// subtree's local searches *and* its join climb run once in a shared
    /// entry, and the *joined* partial matches fan out to every subscriber's
    /// subscription node. Requires `shared_matching`; matching results are
    /// identical either way. Defaults to `false` when absent from serialized
    /// form, so checkpoints written by the leaf-only release restore with
    /// their original (leaf-only) sharing behaviour.
    #[serde(default = "default_subtree_sharing")]
    pub subtree_sharing: bool,
    /// Whether subtree interning abstracts edge `eq` constants to slots
    /// (`true`, the default): queries identical up to compared literals (one
    /// labelled template across tenants) share one entry; the search runs
    /// against the constant-free pattern and each embedding is dispatched by
    /// an O(1) hash on the constants its data edges actually bound. Requires
    /// `subtree_sharing`; matching results are identical either way.
    /// Defaults to `false` when absent from serialized form (legacy
    /// checkpoints keep leaf-only behaviour).
    #[serde(default = "default_lifted_sharing")]
    pub lifted_sharing: bool,
    /// Capacity (in queued items) of every channel in the sharded execution
    /// path: the ingest-to-shard routing channels, the shard-to-shard
    /// handoff channels and the results fan-in. Bounded channels give the
    /// pipeline a hard memory ceiling; when a shard falls behind, the ingest
    /// thread *blocks* (backpressure) rather than queueing unboundedly, which
    /// preserves the exact match multiset. Defaults to 1024 when absent from
    /// serialized form; validated to be at least 1.
    #[serde(default = "default_channel_capacity")]
    pub channel_capacity: usize,
    /// What the engine does when a shard worker dies mid-stream (see
    /// [`ShardFailurePolicy`]). Defaults to [`ShardFailurePolicy::FailFast`]
    /// when absent from serialized form.
    #[serde(default = "default_shard_failure_policy")]
    pub shard_failure_policy: ShardFailurePolicy,
    /// Retry schedule applied to failing durable subscriptions (see
    /// [`RetryPolicy`] and
    /// [`crate::ContinuousQueryEngine::subscribe_durable`]): max consecutive
    /// attempts before quarantine, exponential backoff with a cap, and the
    /// per-attempt delivery timeout. Defaults to [`RetryPolicy::default`]
    /// when absent from serialized form.
    #[serde(default = "default_retry_policy")]
    pub retry_policy: RetryPolicy,
    /// How much observability the engine records while streaming (see
    /// [`TelemetryLevel`] and `crates/core/src/telemetry.rs`): per-stage
    /// latency histograms plus one end-to-end trace span set per sampled
    /// event. Defaults to [`TelemetryLevel::Off`], which costs a single
    /// branch per instrumentation site; absent from legacy serialized form
    /// it stays off.
    #[serde(default)]
    pub telemetry_level: TelemetryLevel,
    /// Sampling cadence when `telemetry_level` is
    /// [`TelemetryLevel::Sampled`]: every `telemetry_sample_every`-th
    /// ingested event takes the full stage timing path. Defaults to 64 —
    /// coarse enough to keep the hot path at parity, fine enough that every
    /// active stage accumulates observations within a few thousand events.
    /// Validated to be at least 1.
    #[serde(default = "default_telemetry_sample_every")]
    pub telemetry_sample_every: u64,
}

/// Policy applied when a shard worker thread panics mid-stream.
///
/// Shard workers run under a supervisor (`catch_unwind`); a panic is caught
/// and reported as a structured failure, never an abort or a hang. This
/// policy decides what the engine does next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardFailurePolicy {
    /// Surface [`crate::EngineError::ShardFailed`] from the ingest call and
    /// poison the engine: every subsequent operation returns
    /// [`crate::EngineError::Poisoned`]. The default — correct state cannot
    /// be silently assumed after a worker died mid-batch.
    FailFast,
    /// Quarantine the failed shard, transplant its join state onto the
    /// surviving workers (re-routing its hash slots), report the failure
    /// once via [`crate::EngineError::ShardFailed`] with `degraded = true`,
    /// and keep serving. Exactness: the transplant preserves the exact match
    /// multiset when the worker died at a batch boundary (as injected faults
    /// do); a panic in the middle of a half-applied batch loses at most the
    /// in-flight batch's matches for that shard — see ARCHITECTURE.md's
    /// "Failure model".
    Degrade,
}

/// Serde fallback for [`EngineConfig::shared_matching`]: checkpoints written
/// before the shared index existed restore with sharing enabled (results are
/// identical; only the dispatch strategy differs).
fn default_shared_matching() -> bool {
    true
}

/// Serde fallback for [`EngineConfig::subtree_sharing`]: checkpoints written
/// by the leaf-only sharing release restore with leaf-only behaviour — the
/// new layers never switch on silently under a restored legacy snapshot.
fn default_subtree_sharing() -> bool {
    false
}

/// Serde fallback for [`EngineConfig::lifted_sharing`]: like
/// [`default_subtree_sharing`], legacy snapshots keep exact-constant,
/// leaf-only sharing.
fn default_lifted_sharing() -> bool {
    false
}

/// Serde fallback for [`EngineConfig::shards`]: pre-sharding checkpoints
/// deserialize to the single-threaded execution (a bare `default` would give
/// 0, which validation rejects).
fn default_shards() -> usize {
    1
}

/// Serde fallback for [`EngineConfig::channel_capacity`]: checkpoints written
/// while the sharded path used unbounded channels restore with the default
/// bound.
fn default_channel_capacity() -> usize {
    1024
}

/// Serde fallback for [`EngineConfig::shard_failure_policy`]: pre-supervision
/// checkpoints restore with the conservative fail-fast behaviour.
fn default_shard_failure_policy() -> ShardFailurePolicy {
    ShardFailurePolicy::FailFast
}

/// Serde fallback for [`EngineConfig::retry_policy`]: checkpoints written
/// before durable delivery existed restore with the default retry schedule
/// (they contain no durable subscriptions, so the policy is dormant anyway).
fn default_retry_policy() -> RetryPolicy {
    RetryPolicy::default()
}

/// Serde fallback for [`EngineConfig::telemetry_sample_every`]: checkpoints
/// written before telemetry existed restore with the default cadence (the
/// level defaults to `Off`, so the cadence is dormant until switched on).
fn default_telemetry_sample_every() -> u64 {
    64
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            retention: None,
            prune_every: 256,
            max_matches_per_node: None,
            maintain_summary: true,
            summary: SummaryConfig::full(),
            shards: 1,
            shared_matching: true,
            subtree_sharing: true,
            lifted_sharing: true,
            channel_capacity: 1024,
            shard_failure_policy: ShardFailurePolicy::FailFast,
            retry_policy: RetryPolicy::default(),
            telemetry_level: TelemetryLevel::Off,
            telemetry_sample_every: 64,
        }
    }
}

impl EngineConfig {
    /// A configuration tuned for raw ingest speed: no summary maintenance and
    /// a modest partial-match cap.
    pub fn fast_ingest() -> Self {
        EngineConfig {
            maintain_summary: false,
            max_matches_per_node: Some(100_000),
            ..Default::default()
        }
    }

    /// Checks the settings for internal consistency. [`EngineBuilder::build`]
    /// calls this; it is public so checkpoint consumers can validate a
    /// deserialized configuration before trusting it.
    pub fn validate(&self) -> Result<(), String> {
        if self.prune_every == 0 {
            return Err(
                "prune_every must be positive (0 would prune after every edge check and \
                 never advance the cadence counter)"
                    .into(),
            );
        }
        if self.max_matches_per_node == Some(0) {
            return Err(
                "max_matches_per_node of 0 would drop every partial match; use None for \
                 unbounded or a positive cap"
                    .into(),
            );
        }
        if let Some(retention) = self.retention {
            if retention.as_micros() <= 0 {
                return Err(format!(
                    "retention must be a positive duration, got {}µs",
                    retention.as_micros()
                ));
            }
        }
        if self.shards == 0 {
            return Err(
                "shards must be at least 1 (1 runs matchers in-process; higher values \
                 shard each query's match state across that many worker threads)"
                    .into(),
            );
        }
        if self.shards > 256 {
            return Err(format!(
                "shards is capped at 256 worker threads per query, got {}",
                self.shards
            ));
        }
        if self.channel_capacity == 0 {
            return Err(
                "channel_capacity must be at least 1 (a zero-capacity channel would make \
                 every routed batch a rendezvous and deadlock the handoff protocol)"
                    .into(),
            );
        }
        if self.retry_policy.max_attempts == 0 {
            return Err(
                "retry_policy.max_attempts must be at least 1 (1 restores one-strike \
                 quarantine; 0 would quarantine before the first attempt)"
                    .into(),
            );
        }
        if self.retry_policy.backoff_cap_ms < self.retry_policy.backoff_base_ms {
            return Err(format!(
                "retry_policy.backoff_cap_ms ({}) must not be below backoff_base_ms ({})",
                self.retry_policy.backoff_cap_ms, self.retry_policy.backoff_base_ms
            ));
        }
        if self.retry_policy.attempt_timeout_ms == 0 {
            return Err(
                "retry_policy.attempt_timeout_ms must be at least 1 (a zero timeout would \
                 fail every transport delivery immediately)"
                    .into(),
            );
        }
        if self.telemetry_sample_every == 0 {
            return Err(
                "telemetry_sample_every must be at least 1 (1 samples every event; use \
                 TelemetryLevel::Off to disable telemetry entirely)"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Validating builder for [`crate::ContinuousQueryEngine`].
///
/// ```
/// use streamworks_core::ContinuousQueryEngine;
/// use streamworks_graph::Duration;
///
/// let engine = ContinuousQueryEngine::builder()
///     .retention(Duration::from_hours(2))
///     .prune_every(512)
///     .max_matches_per_node(100_000)
///     .build()
///     .unwrap();
/// assert_eq!(engine.config().prune_every, 512);
///
/// // Invalid settings are rejected at build time.
/// assert!(ContinuousQueryEngine::builder().prune_every(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Starts from the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration snapshot (e.g. a checkpoint's).
    pub fn from_config(config: EngineConfig) -> Self {
        EngineBuilder { config }
    }

    /// Starts from the raw-ingest preset: no summary maintenance and a modest
    /// partial-match cap (see [`EngineConfig::fast_ingest`]).
    pub fn fast_ingest() -> Self {
        Self::from_config(EngineConfig::fast_ingest())
    }

    /// Fixes the graph's retention horizon explicitly.
    pub fn retention(mut self, horizon: Duration) -> Self {
        self.config.retention = Some(horizon);
        self
    }

    /// Lets the engine derive retention from the largest registered query
    /// window (the default).
    pub fn auto_retention(mut self) -> Self {
        self.config.retention = None;
        self
    }

    /// Sets how many processed edges pass between partial-match prunes.
    pub fn prune_every(mut self, edges: u64) -> Self {
        self.config.prune_every = edges;
        self
    }

    /// Caps live partial matches per SJ-Tree node per query.
    pub fn max_matches_per_node(mut self, cap: usize) -> Self {
        self.config.max_matches_per_node = Some(cap);
        self
    }

    /// Removes the per-node partial-match cap (the default).
    pub fn unbounded_matches(mut self) -> Self {
        self.config.max_matches_per_node = None;
        self
    }

    /// Enables or disables streaming summary maintenance.
    pub fn maintain_summary(mut self, enabled: bool) -> Self {
        self.config.maintain_summary = enabled;
        self
    }

    /// Shards each registered query's SJ-Tree match state across `count`
    /// worker threads by join-key hash (`1`, the default, keeps matchers
    /// in-process). Match results and subscriptions are unaffected — one
    /// tenant still observes a single, stream-ordered match feed — and the
    /// emitted match multiset is identical for every shard count. Validated
    /// at build time: must be between 1 and 256.
    pub fn shards(mut self, count: usize) -> Self {
        self.config.shards = count;
        self
    }

    /// Enables or disables multi-query sharing through the canonical
    /// primitive index (see [`EngineConfig::shared_matching`]; `true` by
    /// default). The emitted match multiset is identical either way.
    pub fn shared_matching(mut self, enabled: bool) -> Self {
        self.config.shared_matching = enabled;
        self
    }

    /// Enables or disables shared-subtree interning (see
    /// [`EngineConfig::subtree_sharing`]; `true` by default, no effect unless
    /// `shared_matching` is on). The emitted match multiset is identical
    /// either way.
    pub fn subtree_sharing(mut self, enabled: bool) -> Self {
        self.config.subtree_sharing = enabled;
        self
    }

    /// Enables or disables predicate-constant lifting inside the subtree
    /// layer (see [`EngineConfig::lifted_sharing`]; `true` by default, no
    /// effect unless `subtree_sharing` is on). The emitted match multiset is
    /// identical either way.
    pub fn lifted_sharing(mut self, enabled: bool) -> Self {
        self.config.lifted_sharing = enabled;
        self
    }

    /// Sets the summary configuration used when summaries are maintained.
    pub fn summary_config(mut self, config: SummaryConfig) -> Self {
        self.config.summary = config;
        self
    }

    /// Bounds every channel in the sharded execution path to `capacity`
    /// queued items (see [`EngineConfig::channel_capacity`]; 1024 by
    /// default). Validated at build time: must be at least 1.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.config.channel_capacity = capacity;
        self
    }

    /// Chooses what happens when a shard worker dies (see
    /// [`ShardFailurePolicy`]; fail-fast by default).
    pub fn shard_failure_policy(mut self, policy: ShardFailurePolicy) -> Self {
        self.config.shard_failure_policy = policy;
        self
    }

    /// Sets the retry schedule for failing durable subscriptions (see
    /// [`RetryPolicy`]; four attempts with capped exponential backoff by
    /// default). Validated at build time.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.config.retry_policy = policy;
        self
    }

    /// Chooses how much observability the engine records (see
    /// [`TelemetryLevel`]; off by default). Matching results are identical
    /// either way — telemetry only measures.
    pub fn telemetry_level(mut self, level: TelemetryLevel) -> Self {
        self.config.telemetry_level = level;
        self
    }

    /// Sets the telemetry sampling cadence (see
    /// [`EngineConfig::telemetry_sample_every`]; 64 by default). Validated
    /// at build time: must be at least 1.
    pub fn telemetry_sample_every(mut self, every: u64) -> Self {
        self.config.telemetry_sample_every = every;
        self
    }

    /// The configuration assembled so far.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Validates the settings and constructs the engine.
    pub fn build(self) -> Result<ContinuousQueryEngine, EngineError> {
        self.config.validate().map_err(EngineError::InvalidConfig)?;
        Ok(ContinuousQueryEngine::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_maintains_summary_and_prunes() {
        let c = EngineConfig::default();
        assert!(c.maintain_summary);
        assert!(c.prune_every > 0);
        assert!(c.retention.is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fast_ingest_disables_summary() {
        let c = EngineConfig::fast_ingest();
        assert!(!c.maintain_summary);
        assert!(c.max_matches_per_node.is_some());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_accumulates_settings() {
        let builder = EngineBuilder::new()
            .retention(Duration::from_secs(60))
            .prune_every(128)
            .max_matches_per_node(1_000)
            .maintain_summary(false);
        let c = builder.config();
        assert_eq!(c.retention, Some(Duration::from_secs(60)));
        assert_eq!(c.prune_every, 128);
        assert_eq!(c.max_matches_per_node, Some(1_000));
        assert!(!c.maintain_summary);
        let engine = builder.build().unwrap();
        assert_eq!(engine.config().prune_every, 128);
    }

    #[test]
    fn builder_round_trips_auto_settings() {
        let c = *EngineBuilder::new()
            .retention(Duration::from_secs(5))
            .auto_retention()
            .max_matches_per_node(7)
            .unbounded_matches()
            .config();
        assert!(c.retention.is_none());
        assert!(c.max_matches_per_node.is_none());
    }

    #[test]
    fn shard_counts_are_validated() {
        assert!(EngineBuilder::new().shards(0).build().is_err());
        assert!(EngineBuilder::new().shards(257).build().is_err());
        let engine = EngineBuilder::new().shards(2).build().unwrap();
        assert_eq!(engine.config().shards, 2);
        assert_eq!(EngineConfig::default().shards, 1);
    }

    #[test]
    fn configs_serialized_before_the_shards_field_still_deserialize() {
        // A checkpoint written by a pre-sharding release has no `shards` key;
        // it must come back as a valid single-threaded configuration.
        let mut json = serde_json::to_string(&EngineConfig::default()).unwrap();
        assert!(json.contains("\"shards\""));
        json = json.replace(",\"shards\":1", "");
        assert!(!json.contains("\"shards\""));
        let config: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config.shards, 1);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn configs_serialized_before_the_shared_matching_field_still_deserialize() {
        let mut json = serde_json::to_string(&EngineConfig::default()).unwrap();
        assert!(json.contains("\"shared_matching\""));
        json = json.replace(",\"shared_matching\":true", "");
        assert!(!json.contains("\"shared_matching\""));
        let config: EngineConfig = serde_json::from_str(&json).unwrap();
        assert!(config.shared_matching, "legacy configs share by default");
        assert!(config.validate().is_ok());
    }

    #[test]
    fn configs_serialized_before_the_subtree_fields_keep_leaf_only_sharing() {
        // A checkpoint written by the leaf-only (PR 5) release has neither
        // key; unlike every other sharing default, these must come back
        // *false* so a restored legacy snapshot keeps its original
        // leaf-only behaviour.
        let mut json = serde_json::to_string(&EngineConfig::default()).unwrap();
        assert!(json.contains("\"subtree_sharing\""));
        assert!(json.contains("\"lifted_sharing\""));
        json = json.replace(",\"subtree_sharing\":true", "");
        json = json.replace(",\"lifted_sharing\":true", "");
        assert!(!json.contains("subtree_sharing"));
        assert!(!json.contains("lifted_sharing"));
        let config: EngineConfig = serde_json::from_str(&json).unwrap();
        assert!(!config.subtree_sharing, "legacy snapshots stay leaf-only");
        assert!(
            !config.lifted_sharing,
            "legacy snapshots stay exact-constant"
        );
        assert!(config.shared_matching, "leaf sharing itself stays on");
        assert!(config.validate().is_ok());
    }

    #[test]
    fn subtree_and_lifted_builder_toggles() {
        let engine = EngineBuilder::new()
            .subtree_sharing(false)
            .lifted_sharing(false)
            .build()
            .unwrap();
        assert!(!engine.config().subtree_sharing);
        assert!(!engine.config().lifted_sharing);
        assert!(EngineConfig::default().subtree_sharing);
        assert!(EngineConfig::default().lifted_sharing);
    }

    #[test]
    fn shared_matching_builder_toggle() {
        let engine = EngineBuilder::new().shared_matching(false).build().unwrap();
        assert!(!engine.config().shared_matching);
        assert!(EngineConfig::default().shared_matching);
    }

    #[test]
    fn invalid_settings_fail_at_build_time() {
        assert!(EngineBuilder::new().prune_every(0).build().is_err());
        assert!(EngineBuilder::new()
            .max_matches_per_node(0)
            .build()
            .is_err());
        assert!(EngineBuilder::new()
            .retention(Duration::from_secs(0))
            .build()
            .is_err());
        let err = EngineConfig {
            prune_every: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("prune_every"));
    }

    #[test]
    fn fast_ingest_builder_matches_preset() {
        let engine = EngineBuilder::fast_ingest().build().unwrap();
        assert!(!engine.config().maintain_summary);
    }

    #[test]
    fn channel_capacity_is_validated() {
        assert!(EngineBuilder::new().channel_capacity(0).build().is_err());
        let engine = EngineBuilder::new().channel_capacity(8).build().unwrap();
        assert_eq!(engine.config().channel_capacity, 8);
        assert_eq!(EngineConfig::default().channel_capacity, 1024);
    }

    #[test]
    fn shard_failure_policy_defaults_to_fail_fast() {
        assert_eq!(
            EngineConfig::default().shard_failure_policy,
            ShardFailurePolicy::FailFast
        );
        let engine = EngineBuilder::new()
            .shard_failure_policy(ShardFailurePolicy::Degrade)
            .build()
            .unwrap();
        assert_eq!(
            engine.config().shard_failure_policy,
            ShardFailurePolicy::Degrade
        );
    }

    #[test]
    fn configs_serialized_before_the_failure_fields_still_deserialize() {
        // A checkpoint written before supervision/bounded channels has
        // neither key; it must come back with the conservative defaults.
        let mut json = serde_json::to_string(&EngineConfig::default()).unwrap();
        assert!(json.contains("\"channel_capacity\""));
        assert!(json.contains("\"shard_failure_policy\""));
        json = json.replace(",\"channel_capacity\":1024", "");
        json = json.replace(",\"shard_failure_policy\":\"FailFast\"", "");
        assert!(!json.contains("channel_capacity"));
        let config: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config.channel_capacity, 1024);
        assert_eq!(config.shard_failure_policy, ShardFailurePolicy::FailFast);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn retry_policies_are_validated() {
        let mut config = EngineConfig::default();
        config.retry_policy.max_attempts = 0;
        assert!(config.validate().unwrap_err().contains("max_attempts"));
        let mut config = EngineConfig::default();
        config.retry_policy.backoff_base_ms = 100;
        config.retry_policy.backoff_cap_ms = 10;
        assert!(config.validate().unwrap_err().contains("backoff_cap_ms"));
        let mut config = EngineConfig::default();
        config.retry_policy.attempt_timeout_ms = 0;
        assert!(config
            .validate()
            .unwrap_err()
            .contains("attempt_timeout_ms"));
        assert!(EngineBuilder::new()
            .retry_policy(RetryPolicy {
                max_attempts: 0,
                ..Default::default()
            })
            .build()
            .is_err());
        let engine = EngineBuilder::new()
            .retry_policy(RetryPolicy::none())
            .build()
            .unwrap();
        assert_eq!(engine.config().retry_policy, RetryPolicy::none());
    }

    #[test]
    fn configs_serialized_before_the_retry_policy_field_still_deserialize() {
        // A checkpoint written before durable delivery has no `retry_policy`
        // key; it must come back with the default schedule.
        let mut json = serde_json::to_string(&EngineConfig::default()).unwrap();
        assert!(json.contains("\"retry_policy\""));
        let serialized = serde_json::to_string(&RetryPolicy::default()).unwrap();
        json = json.replace(&format!(",\"retry_policy\":{serialized}"), "");
        assert!(!json.contains("retry_policy"));
        let config: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config.retry_policy, RetryPolicy::default());
        assert!(config.validate().is_ok());
    }

    #[test]
    fn telemetry_settings_are_validated_and_default_off() {
        let c = EngineConfig::default();
        assert_eq!(c.telemetry_level, TelemetryLevel::Off);
        assert_eq!(c.telemetry_sample_every, 64);
        assert!(EngineBuilder::new()
            .telemetry_sample_every(0)
            .build()
            .is_err());
        let engine = EngineBuilder::new()
            .telemetry_level(TelemetryLevel::Sampled)
            .telemetry_sample_every(8)
            .build()
            .unwrap();
        assert_eq!(engine.config().telemetry_level, TelemetryLevel::Sampled);
        assert_eq!(engine.config().telemetry_sample_every, 8);
    }

    #[test]
    fn configs_serialized_before_the_telemetry_fields_still_deserialize() {
        // A checkpoint written before the observability layer has neither
        // key; it must come back with telemetry off and the default cadence.
        let mut json = serde_json::to_string(&EngineConfig::default()).unwrap();
        assert!(json.contains("\"telemetry_level\""));
        assert!(json.contains("\"telemetry_sample_every\""));
        json = json.replace(",\"telemetry_level\":\"Off\"", "");
        json = json.replace(",\"telemetry_sample_every\":64", "");
        assert!(!json.contains("telemetry"));
        let config: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config.telemetry_level, TelemetryLevel::Off);
        assert_eq!(config.telemetry_sample_every, 64);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn shard_failure_policy_round_trips_through_json() {
        let config = EngineConfig {
            shard_failure_policy: ShardFailurePolicy::Degrade,
            ..Default::default()
        };
        let json = serde_json::to_string(&config).unwrap();
        assert!(json.contains("\"Degrade\""));
        let back: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shard_failure_policy, ShardFailurePolicy::Degrade);
    }
}
