//! Engine configuration.

use serde::{Deserialize, Serialize};
use streamworks_graph::Duration;
use streamworks_summarize::SummaryConfig;

/// Configuration of a [`crate::ContinuousQueryEngine`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Retention horizon of the underlying graph. `None` lets the engine pick
    /// the maximum window of the registered queries (extended automatically as
    /// queries are registered), which is the smallest retention that preserves
    /// correctness.
    pub retention: Option<Duration>,
    /// How many processed edges between partial-match pruning passes.
    pub prune_every: u64,
    /// Optional cap on live partial matches per SJ-Tree node per query.
    pub max_matches_per_node: Option<usize>,
    /// Whether to maintain the graph summary while streaming (needed for
    /// statistics-driven planning of queries registered later; costs extra
    /// per-edge work — see experiment E8).
    pub maintain_summary: bool,
    /// Summary configuration used when `maintain_summary` is set.
    pub summary: SummaryConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            retention: None,
            prune_every: 256,
            max_matches_per_node: None,
            maintain_summary: true,
            summary: SummaryConfig::full(),
        }
    }
}

impl EngineConfig {
    /// A configuration tuned for raw ingest speed: no summary maintenance and
    /// a modest partial-match cap.
    pub fn fast_ingest() -> Self {
        EngineConfig {
            maintain_summary: false,
            max_matches_per_node: Some(100_000),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_maintains_summary_and_prunes() {
        let c = EngineConfig::default();
        assert!(c.maintain_summary);
        assert!(c.prune_every > 0);
        assert!(c.retention.is_none());
    }

    #[test]
    fn fast_ingest_disables_summary() {
        let c = EngineConfig::fast_ingest();
        assert!(!c.maintain_summary);
        assert!(c.max_matches_per_node.is_some());
    }
}
