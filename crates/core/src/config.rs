//! Engine configuration and the validating builder.
//!
//! [`EngineConfig`] is the serialisable *snapshot* of an engine's settings
//! (checkpoints embed it verbatim); [`EngineBuilder`] is the service-facing
//! way to construct an engine — every setting is validated up front, so a
//! misconfigured deployment fails at build time with a
//! [`crate::EngineError::InvalidConfig`] instead of misbehaving mid-stream.
//!
//! Re-planning policy (observation window, drift and improvement thresholds)
//! lives in [`crate::AdaptiveConfig`]; its defaults are re-tuned for the
//! exact O(#types) triad statistics — see that type's rustdoc for the values
//! and the sampled-estimator history.

use crate::engine::ContinuousQueryEngine;
use crate::error::EngineError;
use serde::{Deserialize, Serialize};
use streamworks_graph::Duration;
use streamworks_summarize::SummaryConfig;

/// Configuration of a [`crate::ContinuousQueryEngine`].
///
/// Prefer assembling one through [`EngineBuilder`] (or
/// [`ContinuousQueryEngine::builder`]), which validates the settings;
/// the plain struct exists as the serialisable form carried by checkpoints.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Retention horizon of the underlying graph. `None` lets the engine pick
    /// the maximum window of the registered queries (extended automatically as
    /// queries are registered), which is the smallest retention that preserves
    /// correctness.
    pub retention: Option<Duration>,
    /// How many processed edges between partial-match pruning passes.
    pub prune_every: u64,
    /// Optional cap on live partial matches per SJ-Tree node per query.
    pub max_matches_per_node: Option<usize>,
    /// Whether to maintain the graph summary while streaming (needed for
    /// statistics-driven planning of queries registered later; costs extra
    /// per-edge work — see experiment E8).
    pub maintain_summary: bool,
    /// Summary configuration used when `maintain_summary` is set.
    pub summary: SummaryConfig,
    /// Worker threads each registered query's SJ-Tree match state is sharded
    /// over, by join-key hash (see `crate::ShardedMatcher`). `1` (the
    /// default) runs every matcher in-process on the ingest thread. Values
    /// above 1 spawn that many shard threads *per registered query*, so the
    /// knob targets deployments with one (or few) hot queries. When a cap is
    /// set, `max_matches_per_node` applies per shard. Defaults to 1 when
    /// absent from serialized form, so checkpoints written before the field
    /// existed keep restoring.
    #[serde(default = "default_shards")]
    pub shards: usize,
    /// Whether registered queries share anchored local searches through the
    /// engine's canonical primitive index (`true`, the default): isomorphic
    /// SJ-Tree leaf primitives across — and within — queries are searched
    /// once per event and fanned out to every subscriber, making the
    /// per-event cost of a registry of template-derived queries
    /// `O(#distinct primitives)` instead of `O(#queries)`. Matching results
    /// are identical either way; disable to measure the sharing win
    /// (`multi_query` bench) or to force strictly per-query execution.
    /// Defaults to `true` when absent from serialized form.
    #[serde(default = "default_shared_matching")]
    pub shared_matching: bool,
}

/// Serde fallback for [`EngineConfig::shared_matching`]: checkpoints written
/// before the shared index existed restore with sharing enabled (results are
/// identical; only the dispatch strategy differs).
fn default_shared_matching() -> bool {
    true
}

/// Serde fallback for [`EngineConfig::shards`]: pre-sharding checkpoints
/// deserialize to the single-threaded execution (a bare `default` would give
/// 0, which validation rejects).
fn default_shards() -> usize {
    1
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            retention: None,
            prune_every: 256,
            max_matches_per_node: None,
            maintain_summary: true,
            summary: SummaryConfig::full(),
            shards: 1,
            shared_matching: true,
        }
    }
}

impl EngineConfig {
    /// A configuration tuned for raw ingest speed: no summary maintenance and
    /// a modest partial-match cap.
    pub fn fast_ingest() -> Self {
        EngineConfig {
            maintain_summary: false,
            max_matches_per_node: Some(100_000),
            ..Default::default()
        }
    }

    /// Checks the settings for internal consistency. [`EngineBuilder::build`]
    /// calls this; it is public so checkpoint consumers can validate a
    /// deserialized configuration before trusting it.
    pub fn validate(&self) -> Result<(), String> {
        if self.prune_every == 0 {
            return Err(
                "prune_every must be positive (0 would prune after every edge check and \
                 never advance the cadence counter)"
                    .into(),
            );
        }
        if self.max_matches_per_node == Some(0) {
            return Err(
                "max_matches_per_node of 0 would drop every partial match; use None for \
                 unbounded or a positive cap"
                    .into(),
            );
        }
        if let Some(retention) = self.retention {
            if retention.as_micros() <= 0 {
                return Err(format!(
                    "retention must be a positive duration, got {}µs",
                    retention.as_micros()
                ));
            }
        }
        if self.shards == 0 {
            return Err(
                "shards must be at least 1 (1 runs matchers in-process; higher values \
                 shard each query's match state across that many worker threads)"
                    .into(),
            );
        }
        if self.shards > 256 {
            return Err(format!(
                "shards is capped at 256 worker threads per query, got {}",
                self.shards
            ));
        }
        Ok(())
    }
}

/// Validating builder for [`crate::ContinuousQueryEngine`].
///
/// ```
/// use streamworks_core::ContinuousQueryEngine;
/// use streamworks_graph::Duration;
///
/// let engine = ContinuousQueryEngine::builder()
///     .retention(Duration::from_hours(2))
///     .prune_every(512)
///     .max_matches_per_node(100_000)
///     .build()
///     .unwrap();
/// assert_eq!(engine.config().prune_every, 512);
///
/// // Invalid settings are rejected at build time.
/// assert!(ContinuousQueryEngine::builder().prune_every(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Starts from the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration snapshot (e.g. a checkpoint's).
    pub fn from_config(config: EngineConfig) -> Self {
        EngineBuilder { config }
    }

    /// Starts from the raw-ingest preset: no summary maintenance and a modest
    /// partial-match cap (see [`EngineConfig::fast_ingest`]).
    pub fn fast_ingest() -> Self {
        Self::from_config(EngineConfig::fast_ingest())
    }

    /// Fixes the graph's retention horizon explicitly.
    pub fn retention(mut self, horizon: Duration) -> Self {
        self.config.retention = Some(horizon);
        self
    }

    /// Lets the engine derive retention from the largest registered query
    /// window (the default).
    pub fn auto_retention(mut self) -> Self {
        self.config.retention = None;
        self
    }

    /// Sets how many processed edges pass between partial-match prunes.
    pub fn prune_every(mut self, edges: u64) -> Self {
        self.config.prune_every = edges;
        self
    }

    /// Caps live partial matches per SJ-Tree node per query.
    pub fn max_matches_per_node(mut self, cap: usize) -> Self {
        self.config.max_matches_per_node = Some(cap);
        self
    }

    /// Removes the per-node partial-match cap (the default).
    pub fn unbounded_matches(mut self) -> Self {
        self.config.max_matches_per_node = None;
        self
    }

    /// Enables or disables streaming summary maintenance.
    pub fn maintain_summary(mut self, enabled: bool) -> Self {
        self.config.maintain_summary = enabled;
        self
    }

    /// Shards each registered query's SJ-Tree match state across `count`
    /// worker threads by join-key hash (`1`, the default, keeps matchers
    /// in-process). Match results and subscriptions are unaffected — one
    /// tenant still observes a single, stream-ordered match feed — and the
    /// emitted match multiset is identical for every shard count. Validated
    /// at build time: must be between 1 and 256.
    pub fn shards(mut self, count: usize) -> Self {
        self.config.shards = count;
        self
    }

    /// Enables or disables multi-query sharing through the canonical
    /// primitive index (see [`EngineConfig::shared_matching`]; `true` by
    /// default). The emitted match multiset is identical either way.
    pub fn shared_matching(mut self, enabled: bool) -> Self {
        self.config.shared_matching = enabled;
        self
    }

    /// Sets the summary configuration used when summaries are maintained.
    pub fn summary_config(mut self, config: SummaryConfig) -> Self {
        self.config.summary = config;
        self
    }

    /// The configuration assembled so far.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Validates the settings and constructs the engine.
    pub fn build(self) -> Result<ContinuousQueryEngine, EngineError> {
        self.config.validate().map_err(EngineError::InvalidConfig)?;
        Ok(ContinuousQueryEngine::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_maintains_summary_and_prunes() {
        let c = EngineConfig::default();
        assert!(c.maintain_summary);
        assert!(c.prune_every > 0);
        assert!(c.retention.is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fast_ingest_disables_summary() {
        let c = EngineConfig::fast_ingest();
        assert!(!c.maintain_summary);
        assert!(c.max_matches_per_node.is_some());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_accumulates_settings() {
        let builder = EngineBuilder::new()
            .retention(Duration::from_secs(60))
            .prune_every(128)
            .max_matches_per_node(1_000)
            .maintain_summary(false);
        let c = builder.config();
        assert_eq!(c.retention, Some(Duration::from_secs(60)));
        assert_eq!(c.prune_every, 128);
        assert_eq!(c.max_matches_per_node, Some(1_000));
        assert!(!c.maintain_summary);
        let engine = builder.build().unwrap();
        assert_eq!(engine.config().prune_every, 128);
    }

    #[test]
    fn builder_round_trips_auto_settings() {
        let c = *EngineBuilder::new()
            .retention(Duration::from_secs(5))
            .auto_retention()
            .max_matches_per_node(7)
            .unbounded_matches()
            .config();
        assert!(c.retention.is_none());
        assert!(c.max_matches_per_node.is_none());
    }

    #[test]
    fn shard_counts_are_validated() {
        assert!(EngineBuilder::new().shards(0).build().is_err());
        assert!(EngineBuilder::new().shards(257).build().is_err());
        let engine = EngineBuilder::new().shards(2).build().unwrap();
        assert_eq!(engine.config().shards, 2);
        assert_eq!(EngineConfig::default().shards, 1);
    }

    #[test]
    fn configs_serialized_before_the_shards_field_still_deserialize() {
        // A checkpoint written by a pre-sharding release has no `shards` key;
        // it must come back as a valid single-threaded configuration.
        let mut json = serde_json::to_string(&EngineConfig::default()).unwrap();
        assert!(json.contains("\"shards\""));
        json = json.replace(",\"shards\":1", "");
        assert!(!json.contains("\"shards\""));
        let config: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config.shards, 1);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn configs_serialized_before_the_shared_matching_field_still_deserialize() {
        let mut json = serde_json::to_string(&EngineConfig::default()).unwrap();
        assert!(json.contains("\"shared_matching\""));
        json = json.replace(",\"shared_matching\":true", "");
        assert!(!json.contains("\"shared_matching\""));
        let config: EngineConfig = serde_json::from_str(&json).unwrap();
        assert!(config.shared_matching, "legacy configs share by default");
        assert!(config.validate().is_ok());
    }

    #[test]
    fn shared_matching_builder_toggle() {
        let engine = EngineBuilder::new().shared_matching(false).build().unwrap();
        assert!(!engine.config().shared_matching);
        assert!(EngineConfig::default().shared_matching);
    }

    #[test]
    fn invalid_settings_fail_at_build_time() {
        assert!(EngineBuilder::new().prune_every(0).build().is_err());
        assert!(EngineBuilder::new()
            .max_matches_per_node(0)
            .build()
            .is_err());
        assert!(EngineBuilder::new()
            .retention(Duration::from_secs(0))
            .build()
            .is_err());
        let err = EngineConfig {
            prune_every: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("prune_every"));
    }

    #[test]
    fn fast_ingest_builder_matches_preset() {
        let engine = EngineBuilder::fast_ingest().build().unwrap();
        assert!(!engine.config().maintain_summary);
    }
}
