//! Zero-dependency pipeline observability: per-stage latency histograms,
//! ring-buffered trace spans, and one exportable snapshot surface.
//!
//! The engine's hot path is counted but — before this module — never *timed*:
//! a regression like a delivery drain riding the ingest thread is invisible
//! until a bench run. This module adds the measurement substrate with three
//! pieces, all hand-rolled because the build environment vendors stubs only
//! (no `tracing`, no `metrics-rs`):
//!
//! 1. [`AtomicHistogram`] — a fixed-size log₂-bucket latency histogram
//!    (the atomic sibling of `streamworks_summarize::LogHistogram`), one per
//!    pipeline [`Stage`], shared between the ingest thread and shard workers
//!    through an `Arc` with relaxed atomics. Relaxed is enough: readers only
//!    snapshot at quiescence (after `take_completed`-style barriers), the
//!    same contract `ShardCounters` already relies on.
//! 2. [`SpanRing`] — a fixed-capacity, lock-free *single-writer* ring of
//!    [`TraceSpan`]s keyed by edge sequence number. The engine thread owns
//!    one ring and every shard worker owns its own, so a sampled event's
//!    end-to-end trace (ingest → dispatch → shard climb → delivery) can be
//!    stitched back together by `seq` after the fact and dumped as JSON for
//!    postmortems.
//! 3. [`TelemetrySnapshot`] / [`MetricsRegistry`] — one struct unifying the
//!    per-query [`QueryMetrics`], engine-wide [`EngineMetrics`], per-shard
//!    [`ShardMetrics`], durable-delivery counters, stage histograms and
//!    recent spans, rendered as Prometheus text format or JSON.
//!
//! Cost model: with [`TelemetryLevel::Off`] the engine holds no hub at all —
//! every instrumentation site is one `Option` branch. With
//! [`TelemetryLevel::Sampled`], only events whose sequence number is a
//! multiple of `telemetry_sample_every` (default 64) take the two `Instant`
//! reads per stage; everything is allocation-free once warm.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::metrics::{EngineMetrics, QueryMetrics, ShardMetrics};

/// How much observability the engine records while streaming.
///
/// Carried by [`crate::EngineConfig::telemetry_level`]; see the module docs
/// for the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelemetryLevel {
    /// No telemetry: the engine holds no histograms or span rings and every
    /// instrumentation site reduces to a single branch on a `None`. The
    /// default.
    #[default]
    Off,
    /// Per-stage latency histograms and one end-to-end trace span set per
    /// sampled event (every `telemetry_sample_every`-th edge).
    Sampled,
}

impl TelemetryLevel {
    /// Stable lowercase name used in exports (`"off"` / `"sampled"`).
    pub fn name(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Sampled => "sampled",
        }
    }
}

/// A pipeline stage with its own latency histogram.
///
/// The stages follow one event through the engine: graph/summary upkeep,
/// anchored local search, the SJ-Tree join climb, routing to shard workers,
/// draining the shard fan-in, window expiry, and flushing durable deliveries.
/// ARCHITECTURE.md's "Observability" section maps each stage to the code
/// that it times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Graph ingest, summary maintenance and edge-type bookkeeping — the
    /// work every event pays before any matching.
    IngestFront = 0,
    /// Anchored local search: finding embeddings of SJ-Tree leaf primitives
    /// around the new edge (shared index, per-query matcher front ends, and
    /// RPQ delta expansion all count here).
    LocalSearch = 1,
    /// The SJ-Tree join climb: probing sibling join stores and propagating
    /// joined partial matches toward the root.
    JoinClimb = 2,
    /// Routing embeddings/absorbed matches to shard workers over the bounded
    /// channels (the send side, including backpressure blocking).
    ShardRouting = 3,
    /// Draining the shard results fan-in into subscriber sinks in stream
    /// order.
    FanInDrain = 4,
    /// Expiring out-of-window partial matches and graph edges.
    ExpirySweep = 5,
    /// Flushing durable subscription outboxes through their transports.
    DeliveryFlush = 6,
}

impl Stage {
    /// Every stage, in histogram-index order.
    pub const ALL: [Stage; 7] = [
        Stage::IngestFront,
        Stage::LocalSearch,
        Stage::JoinClimb,
        Stage::ShardRouting,
        Stage::FanInDrain,
        Stage::ExpirySweep,
        Stage::DeliveryFlush,
    ];

    /// Stable snake_case name used in exports and span dumps.
    pub fn name(self) -> &'static str {
        match self {
            Stage::IngestFront => "ingest_front",
            Stage::LocalSearch => "local_search",
            Stage::JoinClimb => "join_climb",
            Stage::ShardRouting => "shard_routing",
            Stage::FanInDrain => "fan_in_drain",
            Stage::ExpirySweep => "expiry_sweep",
            Stage::DeliveryFlush => "delivery_flush",
        }
    }

    fn index(self) -> usize {
        self as usize
    }

    fn from_index(i: usize) -> Option<Stage> {
        Stage::ALL.get(i).copied()
    }
}

const BUCKETS: usize = 64;

/// A log₂-bucket latency histogram updateable from multiple threads.
///
/// The concurrent sibling of `streamworks_summarize::LogHistogram`: values
/// land in power-of-two buckets (64 counters cover the full `u64` range), so
/// recording is a handful of relaxed atomic adds — no locks, no allocation.
/// All orderings are `Relaxed`; totals are exact whenever the writers are
/// quiescent, which is the only time the engine snapshots them (the same
/// contract the sharded path's `ShardCounters` uses).
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_of(value: u64) -> usize {
        63 - value.max(1).leading_zeros() as usize
    }

    /// Records one value (a latency in nanoseconds).
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Copies the current counters into a serialisable [`HistogramSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum_ns: self.sum.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max_ns: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Adds a previously captured snapshot into this histogram — used when a
    /// checkpoint restore carries the pre-crash telemetry counters forward.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        for (bucket, &c) in self.buckets.iter().zip(snap.buckets.iter()) {
            bucket.fetch_add(c, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum_ns, Ordering::Relaxed);
        self.min.fetch_min(snap.min_ns, Ordering::Relaxed);
        self.max.fetch_max(snap.max_ns, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one [`AtomicHistogram`]'s counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (nanoseconds).
    pub sum_ns: u64,
    /// Smallest recorded value (0 when empty).
    pub min_ns: u64,
    /// Largest recorded value (0 when empty).
    pub max_ns: u64,
    /// `buckets[i]` counts values `v` with `floor(log2(v.max(1))) == i`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the log₂
    /// bucket containing the `q`-quantile observation, clamped to the
    /// observed maximum. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }
}

/// One timed stage of one sampled event, as stitched into span dumps.
///
/// `shard` is `-1` for spans recorded on the engine (driver) thread and the
/// shard worker id otherwise. Spans sharing a `seq` belong to the same
/// sampled edge, so sorting a dump by `(seq, start_ns)` reads as an
/// end-to-end trace of that event through the pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Engine-wide ingest sequence number of the sampled edge.
    pub seq: u64,
    /// Stage name (see [`Stage::name`]).
    pub stage: String,
    /// Shard worker id, or `-1` for the ingest/driver thread.
    pub shard: i64,
    /// Start offset in nanoseconds since the engine's telemetry epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
}

/// Capacity of every [`SpanRing`]; old spans are overwritten FIFO.
pub const SPAN_RING_CAPACITY: usize = 256;

struct SpanSlot {
    seq: AtomicU64,
    /// `stage index + 1`; 0 marks an empty slot.
    stage: AtomicU64,
    start_ns: AtomicU64,
    duration_ns: AtomicU64,
}

/// A fixed-capacity, lock-free, single-writer ring of trace spans.
///
/// Each ring has exactly one writer (the engine thread, or one shard
/// worker), so `push` is a plain head bump plus relaxed stores — no CAS
/// loops, no locks. Readers collect at quiescence; a torn read mid-stream
/// could at worst mix fields of two spans in one slot, which the snapshot
/// path never risks because it only runs after the writers have drained.
pub struct SpanRing {
    shard: i64,
    slots: Vec<SpanSlot>,
    head: AtomicUsize,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("shard", &self.shard)
            .field(
                "len",
                &self.head.load(Ordering::Relaxed).min(self.slots.len()),
            )
            .finish()
    }
}

impl SpanRing {
    /// Creates an empty ring owned by the given writer (`-1` = engine
    /// thread, otherwise a shard worker id).
    pub fn new(shard: i64) -> Self {
        SpanRing {
            shard,
            slots: (0..SPAN_RING_CAPACITY)
                .map(|_| SpanSlot {
                    seq: AtomicU64::new(0),
                    stage: AtomicU64::new(0),
                    start_ns: AtomicU64::new(0),
                    duration_ns: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicUsize::new(0),
        }
    }

    /// Appends one span, overwriting the oldest once the ring is full.
    pub fn push(&self, seq: u64, stage: Stage, start_ns: u64, duration_ns: u64) {
        let at = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let slot = &self.slots[at];
        slot.seq.store(seq, Ordering::Relaxed);
        slot.stage
            .store(stage.index() as u64 + 1, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.duration_ns.store(duration_ns, Ordering::Relaxed);
    }

    /// Copies the ring's live spans into `out` (unordered; sort by
    /// `(seq, start_ns)` to read traces).
    pub fn collect_into(&self, out: &mut Vec<TraceSpan>) {
        for slot in &self.slots {
            let tag = slot.stage.load(Ordering::Relaxed);
            if tag == 0 {
                continue;
            }
            let Some(stage) = Stage::from_index(tag as usize - 1) else {
                continue;
            };
            out.push(TraceSpan {
                seq: slot.seq.load(Ordering::Relaxed),
                stage: stage.name().to_string(),
                shard: self.shard,
                start_ns: slot.start_ns.load(Ordering::Relaxed),
                duration_ns: slot.duration_ns.load(Ordering::Relaxed),
            });
        }
    }
}

/// The shared heart of the telemetry layer: the sampling cadence, the
/// monotonic epoch every span offset is relative to, and one
/// [`AtomicHistogram`] per [`Stage`].
///
/// Lives in an `Arc` shared by the engine thread and every shard worker.
#[derive(Debug)]
pub struct TelemetryCore {
    sample_every: u64,
    epoch: Instant,
    stages: [AtomicHistogram; 7],
}

impl TelemetryCore {
    /// Creates a core sampling every `sample_every`-th event (clamped to at
    /// least 1).
    pub fn new(sample_every: u64) -> Self {
        TelemetryCore {
            sample_every: sample_every.max(1),
            epoch: Instant::now(),
            stages: std::array::from_fn(|_| AtomicHistogram::new()),
        }
    }

    /// The sampling cadence.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Whether the event with this ingest sequence number is sampled.
    #[inline]
    pub fn should_sample(&self, seq: u64) -> bool {
        seq.is_multiple_of(self.sample_every)
    }

    /// First sampled sequence number in the half-open range `[start, end)`,
    /// if any — used to decide whether batch-level stages (fan-in drain,
    /// expiry sweep, delivery flush) covering that range are timed, and to
    /// key their spans.
    #[inline]
    pub fn first_sampled(&self, start: u64, end: u64) -> Option<u64> {
        if end <= start {
            return None;
        }
        // First multiple of sample_every at or above `start`.
        let next = start.div_ceil(self.sample_every) * self.sample_every;
        (next < end).then_some(next)
    }

    /// Whether the half-open sequence range `[start, end)` contains a sampled
    /// event.
    #[inline]
    pub fn range_sampled(&self, start: u64, end: u64) -> bool {
        self.first_sampled(start, end).is_some()
    }

    /// Nanoseconds since the telemetry epoch (span timestamps).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records one duration into a stage's histogram. Durations are clamped
    /// to at least 1 ns so an observed stage always reports non-zero
    /// quantiles even when the clock reads twice within one tick.
    #[inline]
    pub fn record(&self, stage: Stage, duration_ns: u64) {
        self.stages[stage.index()].record(duration_ns.max(1));
    }

    /// Snapshot of one stage's histogram.
    pub fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stages[stage.index()].snapshot()
    }

    /// Adds previously captured stage counters (checkpoint restore).
    pub fn absorb_stage(&self, stage: Stage, snap: &HistogramSnapshot) {
        self.stages[stage.index()].absorb(snap);
    }
}

/// The engine-side handle: the shared core plus the driver thread's own span
/// ring. Shard workers get the same core and their own rings.
#[derive(Debug, Clone)]
pub(crate) struct TelemetryHub {
    pub(crate) core: Arc<TelemetryCore>,
    pub(crate) driver_ring: Arc<SpanRing>,
}

impl TelemetryHub {
    pub(crate) fn new(sample_every: u64) -> Self {
        TelemetryHub {
            core: Arc::new(TelemetryCore::new(sample_every)),
            driver_ring: Arc::new(SpanRing::new(-1)),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot & export surface
// ---------------------------------------------------------------------------

/// One stage's histogram with derived quantiles, as exported.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage name (see [`Stage::name`]).
    pub name: String,
    /// Number of sampled observations.
    pub count: u64,
    /// Sum of observed durations (ns).
    pub sum_ns: u64,
    /// Fastest observation (ns).
    pub min_ns: u64,
    /// Slowest observation (ns).
    pub max_ns: u64,
    /// Median (log₂-bucket upper bound, ns).
    pub p50_ns: u64,
    /// 90th percentile (ns).
    pub p90_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Raw log₂ bucket counts.
    pub buckets: Vec<u64>,
}

impl StageSnapshot {
    /// Builds the export form from a raw histogram snapshot.
    pub fn from_histogram(stage: Stage, h: &HistogramSnapshot) -> Self {
        StageSnapshot {
            name: stage.name().to_string(),
            count: h.count,
            sum_ns: h.sum_ns,
            min_ns: h.min_ns,
            max_ns: h.max_ns,
            p50_ns: h.quantile_ns(0.50),
            p90_ns: h.quantile_ns(0.90),
            p99_ns: h.quantile_ns(0.99),
            buckets: h.buckets.clone(),
        }
    }
}

/// One registered query's counters in the snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuerySnapshot {
    /// The query's registered name.
    pub name: String,
    /// Whether the query is currently paused.
    pub paused: bool,
    /// Full per-query counters.
    pub metrics: QueryMetrics,
}

/// Per-shard counters for one sharded query, plus the routing-skew ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSetSnapshot {
    /// The owning query's name.
    pub query: String,
    /// One entry per shard worker.
    pub shards: Vec<ShardMetrics>,
    /// `max(items_routed) / mean(items_routed)` across shards — 1.0 is
    /// perfectly balanced; ROADMAP flags > 2.0 as the work-stealing
    /// trigger. 0.0 when nothing has been routed.
    pub skew: f64,
}

/// Routing skew across one query's shards: `max / mean` of `items_routed`
/// (0.0 when nothing has been routed yet).
pub fn shard_skew(shards: &[ShardMetrics]) -> f64 {
    if shards.is_empty() {
        return 0.0;
    }
    let total: u64 = shards.iter().map(|s| s.items_routed).sum();
    if total == 0 {
        return 0.0;
    }
    let max = shards.iter().map(|s| s.items_routed).max().unwrap_or(0);
    let mean = total as f64 / shards.len() as f64;
    max as f64 / mean
}

/// One durable subscription's live delivery state in the snapshot.
///
/// `lag` is recomputed from the live outbox depth at snapshot time — not the
/// value cached by the last drain — so a quarantined subscription's backlog
/// keeps growing in the export instead of freezing at its last-drained
/// figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeliverySnapshot {
    /// Owning query's name.
    pub query: String,
    /// Subscription token (stable across checkpoint/restore).
    pub token: u64,
    /// Destination description (log path / endpoint name / memory key).
    pub target: String,
    /// `"active"`, `"degraded"` or `"quarantined"`.
    pub status: String,
    /// Matches routed into the outbox since attach.
    pub routed: u64,
    /// Matches dropped on outbox overflow.
    pub dropped: u64,
    /// Transport attempts (including retries).
    pub attempts: u64,
    /// Retried attempts.
    pub retries: u64,
    /// Recoveries out of Degraded/Quarantined back to Active.
    pub recoveries: u64,
    /// Live outbox depth right now (undelivered matches).
    pub lag: u64,
}

/// The unified observability snapshot returned by
/// [`crate::ContinuousQueryEngine::telemetry_snapshot`].
///
/// Serialisable both ways: `to_json`/`to_json_pretty` for machine
/// consumption (the CLI's `--metrics-json`), [`TelemetrySnapshot::to_prometheus`]
/// for scrape-style text exposition (the CLI's `stats` command).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Telemetry level the engine is running at (`"off"`/`"sampled"`).
    pub level: String,
    /// Sampling cadence (meaningful when level is `"sampled"`).
    pub sample_every: u64,
    /// Events ingested since engine start (or restore).
    pub events_ingested: u64,
    /// Match events emitted to subscribers.
    pub events_emitted: u64,
    /// Per-stage latency histograms (empty when telemetry is off).
    pub stages: Vec<StageSnapshot>,
    /// Per-query counters, one entry per live registered query.
    pub queries: Vec<QuerySnapshot>,
    /// Engine-wide shared-matching counters.
    pub engine: EngineMetrics,
    /// Per-shard counters for every sharded query.
    pub shards: Vec<ShardSetSnapshot>,
    /// Live durable-delivery state, one entry per durable subscription.
    pub delivery: Vec<DeliverySnapshot>,
    /// Recent trace spans from the driver and every shard worker ring,
    /// sorted by `(seq, start_ns)`.
    pub spans: Vec<TraceSpan>,
}

impl TelemetrySnapshot {
    /// Serialises the snapshot as compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("telemetry snapshot serialises")
    }

    /// Serialises the snapshot as pretty-printed JSON (postmortem dumps).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("telemetry snapshot serialises")
    }

    /// Renders the snapshot in Prometheus text exposition format.
    ///
    /// Stage histograms become `streamworks_stage_latency_ns` histogram
    /// series (cumulative `_bucket{le=...}` plus `_sum`/`_count`), counters
    /// become `_total` gauges labelled by query/shard/subscription.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP streamworks_events_ingested_total Events ingested.\n");
        out.push_str("# TYPE streamworks_events_ingested_total counter\n");
        out.push_str(&format!(
            "streamworks_events_ingested_total {}\n",
            self.events_ingested
        ));
        out.push_str("# HELP streamworks_events_emitted_total Match events emitted.\n");
        out.push_str("# TYPE streamworks_events_emitted_total counter\n");
        out.push_str(&format!(
            "streamworks_events_emitted_total {}\n",
            self.events_emitted
        ));

        if !self.stages.is_empty() {
            out.push_str(
                "# HELP streamworks_stage_latency_ns Sampled per-stage pipeline latency.\n",
            );
            out.push_str("# TYPE streamworks_stage_latency_ns histogram\n");
            for stage in &self.stages {
                let mut cumulative = 0u64;
                for (i, &c) in stage.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    cumulative += c;
                    let upper = if i >= 63 {
                        u64::MAX
                    } else {
                        (1u64 << (i + 1)) - 1
                    };
                    out.push_str(&format!(
                        "streamworks_stage_latency_ns_bucket{{stage=\"{}\",le=\"{}\"}} {}\n",
                        stage.name, upper, cumulative
                    ));
                }
                out.push_str(&format!(
                    "streamworks_stage_latency_ns_bucket{{stage=\"{}\",le=\"+Inf\"}} {}\n",
                    stage.name, stage.count
                ));
                out.push_str(&format!(
                    "streamworks_stage_latency_ns_sum{{stage=\"{}\"}} {}\n",
                    stage.name, stage.sum_ns
                ));
                out.push_str(&format!(
                    "streamworks_stage_latency_ns_count{{stage=\"{}\"}} {}\n",
                    stage.name, stage.count
                ));
            }
        }

        out.push_str("# HELP streamworks_query_edges_processed_total Edges processed per query.\n");
        out.push_str("# TYPE streamworks_query_edges_processed_total counter\n");
        for q in &self.queries {
            out.push_str(&format!(
                "streamworks_query_edges_processed_total{{query=\"{}\"}} {}\n",
                q.name, q.metrics.edges_processed
            ));
        }
        out.push_str(
            "# HELP streamworks_query_complete_matches_total Complete matches per query.\n",
        );
        out.push_str("# TYPE streamworks_query_complete_matches_total counter\n");
        for q in &self.queries {
            out.push_str(&format!(
                "streamworks_query_complete_matches_total{{query=\"{}\"}} {}\n",
                q.name, q.metrics.complete_matches
            ));
        }

        if !self.shards.is_empty() {
            out.push_str("# HELP streamworks_shard_items_routed_total Items routed per shard.\n");
            out.push_str("# TYPE streamworks_shard_items_routed_total counter\n");
            for set in &self.shards {
                for (i, s) in set.shards.iter().enumerate() {
                    out.push_str(&format!(
                        "streamworks_shard_items_routed_total{{query=\"{}\",shard=\"{}\"}} {}\n",
                        set.query, i, s.items_routed
                    ));
                }
            }
            out.push_str(
                "# HELP streamworks_shard_skew Max/mean items_routed ratio across shards.\n",
            );
            out.push_str("# TYPE streamworks_shard_skew gauge\n");
            for set in &self.shards {
                out.push_str(&format!(
                    "streamworks_shard_skew{{query=\"{}\"}} {:?}\n",
                    set.query, set.skew
                ));
            }
        }

        if !self.delivery.is_empty() {
            out.push_str(
                "# HELP streamworks_delivery_lag Live outbox depth per durable subscription.\n",
            );
            out.push_str("# TYPE streamworks_delivery_lag gauge\n");
            for d in &self.delivery {
                out.push_str(&format!(
                    "streamworks_delivery_lag{{query=\"{}\",token=\"{}\",status=\"{}\"}} {}\n",
                    d.query, d.token, d.status, d.lag
                ));
            }
            out.push_str("# HELP streamworks_delivery_attempts_total Transport attempts per durable subscription.\n");
            out.push_str("# TYPE streamworks_delivery_attempts_total counter\n");
            for d in &self.delivery {
                out.push_str(&format!(
                    "streamworks_delivery_attempts_total{{query=\"{}\",token=\"{}\"}} {}\n",
                    d.query, d.token, d.attempts
                ));
            }
        }

        out
    }
}

/// Thin façade over the snapshot assembly, named for what it is: the one
/// registry unifying every metrics surface the engine grew over time.
///
/// `MetricsRegistry::gather(&engine)` is exactly
/// [`crate::ContinuousQueryEngine::telemetry_snapshot`]; the type exists so
/// exporters can depend on a name that outlives engine API details.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsRegistry;

impl MetricsRegistry {
    /// Assembles the unified snapshot from a (quiescent) engine.
    pub fn gather(engine: &crate::ContinuousQueryEngine) -> TelemetrySnapshot {
        engine.telemetry_snapshot()
    }
}

/// Telemetry counters carried inside an [`crate::EngineCheckpoint`] so stage
/// histograms survive a checkpoint/restore cycle (the replay that rebuilds
/// match state is *not* re-measured — restored counters equal captured
/// counters).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryCheckpoint {
    /// Stage histograms captured at checkpoint time, keyed by stage name.
    pub stages: Vec<(String, HistogramSnapshot)>,
}

impl TelemetryCheckpoint {
    /// Captures every stage histogram from a live core.
    pub fn capture(core: &TelemetryCore) -> Self {
        TelemetryCheckpoint {
            stages: Stage::ALL
                .iter()
                .map(|&s| (s.name().to_string(), core.stage_snapshot(s)))
                .collect(),
        }
    }

    /// Adds the captured counters into a fresh core (restore path).
    pub fn absorb_into(&self, core: &TelemetryCore) {
        for (name, snap) in &self.stages {
            if let Some(stage) = Stage::ALL.iter().copied().find(|s| s.name() == name) {
                core.absorb_stage(stage, snap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_snapshots() {
        let h = AtomicHistogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_ns, 110);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 100);
        assert!(s.quantile_ns(0.5) <= s.quantile_ns(0.99));
        assert!(s.quantile_ns(0.99) <= 100);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = AtomicHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.quantile_ns(0.5), 0);
    }

    #[test]
    fn absorb_merges_counters() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        a.record(5);
        b.record(500);
        a.absorb(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min_ns, 5);
        assert_eq!(s.max_ns, 500);
        assert_eq!(s.sum_ns, 505);
    }

    #[test]
    fn span_ring_overwrites_fifo() {
        let ring = SpanRing::new(-1);
        for seq in 0..(SPAN_RING_CAPACITY as u64 + 10) {
            ring.push(seq, Stage::IngestFront, seq, 1);
        }
        let mut out = Vec::new();
        ring.collect_into(&mut out);
        assert_eq!(out.len(), SPAN_RING_CAPACITY);
        // The oldest 10 spans were overwritten.
        assert!(out
            .iter()
            .all(|s| s.seq >= 10 || s.seq < SPAN_RING_CAPACITY as u64));
        assert!(out.iter().any(|s| s.seq == SPAN_RING_CAPACITY as u64 + 9));
    }

    #[test]
    fn range_sampled_finds_multiples() {
        let core = TelemetryCore::new(64);
        assert!(core.range_sampled(0, 1)); // 0 is a multiple
        assert!(!core.range_sampled(1, 64));
        assert!(core.range_sampled(1, 65)); // contains 64
        assert!(core.range_sampled(64, 65));
        assert!(!core.range_sampled(65, 65)); // empty range
        assert!(core.range_sampled(100, 200)); // contains 128
    }

    #[test]
    fn skew_ratio() {
        let mk = |routed: u64| ShardMetrics {
            items_routed: routed,
            ..Default::default()
        };
        assert_eq!(shard_skew(&[]), 0.0);
        assert_eq!(shard_skew(&[mk(0), mk(0)]), 0.0);
        let balanced = shard_skew(&[mk(10), mk(10)]);
        assert!((balanced - 1.0).abs() < 1e-9);
        let skewed = shard_skew(&[mk(30), mk(10)]);
        assert!((skewed - 1.5).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_roundtrip_restores_counters() {
        let core = TelemetryCore::new(64);
        core.record(Stage::LocalSearch, 1000);
        core.record(Stage::JoinClimb, 2000);
        let cp = TelemetryCheckpoint::capture(&core);
        let fresh = TelemetryCore::new(64);
        cp.absorb_into(&fresh);
        assert_eq!(fresh.stage_snapshot(Stage::LocalSearch).count, 1);
        assert_eq!(fresh.stage_snapshot(Stage::JoinClimb).sum_ns, 2000);
        assert_eq!(fresh.stage_snapshot(Stage::IngestFront).count, 0);
    }
}
