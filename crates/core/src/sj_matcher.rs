//! The incremental SJ-Tree matcher (paper §4.2).
//!
//! One [`SjTreeMatcher`] is instantiated per registered query. It owns a
//! [`MatchStore`] per SJ-Tree node and implements the paper's two-step
//! algorithm for every incoming edge:
//!
//! 1. **Local search** — match the edge against the search primitives at the
//!    leaves; each embedding found is inserted into the leaf's match
//!    collection.
//! 2. **Join propagation** — whenever a match is inserted at a node, probe the
//!    sibling node's collection using the parent's cut-subgraph as the join
//!    key; every successful combination is inserted at the parent, repeating
//!    until no larger match can be produced. A combination at the root that
//!    satisfies `τ(g) < tW` is a complete match.

use crate::binding::PartialMatch;
use crate::constraints::CompiledConstraints;
use crate::local_search::find_primitive_matches;
use crate::match_store::MatchStore;
use crate::metrics::QueryMetrics;
use streamworks_graph::{Duration, DynamicGraph, Edge, Timestamp};
use streamworks_query::{QueryPlan, SjNodeId};

/// Incremental matcher for one query plan.
#[derive(Debug)]
pub struct SjTreeMatcher {
    plan: QueryPlan,
    constraints: CompiledConstraints,
    /// Match collection per SJ-Tree node, indexed by `SjNodeId`.
    stores: Vec<MatchStore>,
    metrics: QueryMetrics,
    /// Optional cap on live matches per node (guards against partial-match
    /// explosion under hostile plans; `None` = unbounded).
    max_matches_per_node: Option<usize>,
}

impl SjTreeMatcher {
    /// Creates a matcher for `plan`, compiled against `graph`.
    pub fn new(plan: QueryPlan, graph: &DynamicGraph) -> Self {
        let constraints = CompiledConstraints::compile(&plan.query, graph);
        let stores = plan
            .shape
            .nodes()
            .map(|n| MatchStore::new(plan.shape.join_key(n.id).to_vec()))
            .collect();
        SjTreeMatcher {
            constraints,
            stores,
            metrics: QueryMetrics::default(),
            max_matches_per_node: None,
            plan,
        }
    }

    /// Sets a cap on live partial matches per SJ-Tree node.
    pub fn with_match_cap(mut self, cap: Option<usize>) -> Self {
        self.max_matches_per_node = cap;
        self
    }

    /// The plan this matcher executes.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The query window `tW`.
    pub fn window(&self) -> Duration {
        self.plan.query.window()
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> QueryMetrics {
        let mut m = self.metrics;
        m.partial_matches_live = self.stores.iter().map(|s| s.len() as u64).sum();
        m
    }

    /// Live partial matches stored at a specific SJ-Tree node.
    pub fn node_match_count(&self, node: SjNodeId) -> usize {
        self.stores[node.0].len()
    }

    /// The fraction of the query's edges covered by the largest partial match
    /// currently stored anywhere in the tree (the "% matched" figure of the
    /// paper's Fig. 7 progression view).
    pub fn best_partial_fraction(&self) -> f64 {
        let total = self.plan.query.edge_count() as f64;
        let mut best = 0usize;
        for store in &self.stores {
            for m in store.iter() {
                best = best.max(m.edge_count());
            }
        }
        if self.metrics.complete_matches > 0 {
            return 1.0;
        }
        best as f64 / total
    }

    /// Processes one newly inserted data edge. Complete matches are appended
    /// to `out`.
    pub fn process_edge(
        &mut self,
        graph: &DynamicGraph,
        edge: &Edge,
        out: &mut Vec<PartialMatch>,
    ) {
        self.metrics.edges_processed += 1;
        self.constraints.refresh(&self.plan.query, graph);
        let window = self.window();

        let leaves: Vec<SjNodeId> = self.plan.shape.leaves().to_vec();
        let mut found = Vec::new();
        for leaf in leaves {
            found.clear();
            let prim_edges = self.plan.shape.node(leaf).edges.clone();
            let stats = find_primitive_matches(
                graph,
                &self.plan.query,
                &self.constraints,
                &prim_edges,
                edge,
                window,
                &mut found,
            );
            self.metrics.local_search_candidates += stats.candidates_examined;
            self.metrics.primitive_matches += stats.matches_found;
            for m in found.drain(..) {
                self.insert_and_join(leaf, m, out);
            }
        }
    }

    /// Inserts a match at a node and propagates joins towards the root.
    fn insert_and_join(
        &mut self,
        node: SjNodeId,
        m: PartialMatch,
        out: &mut Vec<PartialMatch>,
    ) {
        let window = self.window();
        let root = self.plan.shape.root();
        let mut stack: Vec<(SjNodeId, PartialMatch)> = vec![(node, m)];
        while let Some((node, m)) = stack.pop() {
            if node == root {
                // Root-level combination: a complete match.
                self.metrics.complete_matches += 1;
                out.push(m);
                continue;
            }
            // Respect the per-node cap.
            if let Some(cap) = self.max_matches_per_node {
                if self.stores[node.0].len() >= cap {
                    self.metrics.matches_dropped_by_cap += 1;
                    continue;
                }
            }
            // Store the match so later sibling insertions can find it.
            let key = self.stores[node.0]
                .join_key_for(&m)
                .unwrap_or_default();
            self.stores[node.0].insert(m.clone());
            self.metrics.partial_matches_inserted += 1;

            // Probe the sibling's collection on the shared cut vertices.
            let Some(sibling) = self.plan.shape.sibling(node) else {
                continue;
            };
            let parent = self
                .plan
                .shape
                .node(node)
                .parent
                .expect("non-root node has a parent");
            let mut merged_results = Vec::new();
            {
                let sibling_store = &self.stores[sibling.0];
                for candidate in sibling_store.candidates(&key) {
                    self.metrics.joins_attempted += 1;
                    if let Some(merged) = m.merge(candidate) {
                        if merged.within_window(window) {
                            merged_results.push(merged);
                        }
                    }
                }
            }
            self.metrics.joins_succeeded += merged_results.len() as u64;
            for merged in merged_results {
                stack.push((parent, merged));
            }
        }
    }

    /// Removes every partial match whose earliest edge is older than
    /// `now - tW`: such matches can never be completed within the window.
    pub fn prune(&mut self, now: Timestamp) {
        let cutoff = now.minus(self.window());
        let mut removed = 0usize;
        for store in &mut self.stores {
            removed += store.expire_older_than(cutoff);
        }
        self.metrics.partial_matches_expired += removed as u64;
    }

    /// Drops all stored partial matches and resets metrics (used between
    /// experiment repetitions).
    pub fn reset(&mut self) {
        for store in &mut self.stores {
            store.clear();
        }
        self.metrics = QueryMetrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{EdgeEvent, Timestamp};
    use streamworks_query::{Planner, QueryGraphBuilder};

    fn wedge_query(window_secs: i64) -> QueryPlan {
        let q = QueryGraphBuilder::new("wedge")
            .window(Duration::from_secs(window_secs))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap();
        // Single-edge primitives so the tree has two leaves and genuinely
        // stores partial matches (a 2-edge primitive would collapse this query
        // into one leaf that emits complete matches directly).
        Planner::new()
            .plan_with(
                q,
                &streamworks_query::SelectivityOrdered {
                    max_primitive_size: 1,
                },
            )
            .unwrap()
    }

    fn feed(g: &mut DynamicGraph, m: &mut SjTreeMatcher, src: &str, dst: &str, et: &str, t: i64) -> Vec<PartialMatch> {
        let (st, dt) = if et == "mentions" {
            ("Article", "Keyword")
        } else {
            ("Article", "Location")
        };
        let r = g.ingest(&EdgeEvent::new(src, st, dst, dt, et, Timestamp::from_secs(t)));
        let edge = g.edge(r.edge).unwrap().clone();
        let mut out = Vec::new();
        m.process_edge(g, &edge, &mut out);
        out
    }

    #[test]
    fn complete_match_emitted_when_pattern_completes() {
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(wedge_query(3600), &g);
        assert!(feed(&mut g, &mut matcher, "a1", "k1", "mentions", 10).is_empty());
        let matches = feed(&mut g, &mut matcher, "a2", "k1", "mentions", 20);
        // Two articles sharing keyword k1: one embedding per (a1,a2) assignment.
        assert_eq!(matches.len(), 2);
        let metrics = matcher.metrics();
        assert_eq!(metrics.complete_matches, 2);
        assert!(metrics.edges_processed >= 2);
        assert!(matcher.best_partial_fraction() >= 1.0);
    }

    #[test]
    fn matches_outside_window_are_not_reported() {
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(wedge_query(30), &g);
        feed(&mut g, &mut matcher, "a1", "k1", "mentions", 10);
        // 100 - 10 = 90s span > 30s window.
        let matches = feed(&mut g, &mut matcher, "a2", "k1", "mentions", 100);
        assert!(matches.is_empty());
    }

    #[test]
    fn prune_discards_unjoinable_partial_matches() {
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(wedge_query(30), &g);
        for i in 0..50 {
            feed(&mut g, &mut matcher, &format!("a{i}"), "k1", "mentions", i);
        }
        let before = matcher.metrics().partial_matches_live;
        assert!(before > 0);
        matcher.prune(Timestamp::from_secs(1_000));
        let after = matcher.metrics();
        assert_eq!(after.partial_matches_live, 0);
        assert_eq!(after.partial_matches_expired, before);
    }

    #[test]
    fn match_cap_limits_partial_match_growth() {
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(wedge_query(3600), &g).with_match_cap(Some(5));
        for i in 0..20 {
            feed(&mut g, &mut matcher, &format!("a{i}"), "k1", "mentions", i);
        }
        let m = matcher.metrics();
        assert!(m.matches_dropped_by_cap > 0);
        assert!(m.partial_matches_live <= 10); // 5 per node, 2 nodes with stores in use
    }

    #[test]
    fn reset_clears_state() {
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(wedge_query(3600), &g);
        feed(&mut g, &mut matcher, "a1", "k1", "mentions", 1);
        feed(&mut g, &mut matcher, "a2", "k1", "mentions", 2);
        assert!(matcher.metrics().complete_matches > 0);
        matcher.reset();
        assert_eq!(matcher.metrics().complete_matches, 0);
        assert_eq!(matcher.metrics().partial_matches_live, 0);
    }

    #[test]
    fn three_leaf_plan_joins_across_levels() {
        // Fig. 2-style query: three articles sharing a keyword and a location.
        let q = QueryGraphBuilder::new("news_triple")
            .window(Duration::from_hours(6))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("a3", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .edge("a3", "mentions", "k")
            .edge("a1", "located", "l")
            .edge("a2", "located", "l")
            .edge("a3", "located", "l")
            .build()
            .unwrap();
        let plan = Planner::new().plan(q).unwrap();
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(plan, &g);
        let mut complete = 0usize;
        let mut t = 0;
        for a in ["x", "y", "z"] {
            complete += feed(&mut g, &mut matcher, a, "k1", "mentions", t).len();
            t += 1;
            complete += feed(&mut g, &mut matcher, a, "paris", "located", t).len();
            t += 1;
        }
        // Three articles, each with the keyword and the location: 3! = 6
        // assignments of (a1, a2, a3) to (x, y, z).
        assert_eq!(complete, 6);
        assert_eq!(matcher.metrics().complete_matches, 6);
        // Partial fraction reaches 1.0 once complete matches exist.
        assert_eq!(matcher.best_partial_fraction(), 1.0);
    }
}
