//! The incremental SJ-Tree matcher (paper §4.2).
//!
//! One [`SjTreeMatcher`] is instantiated per registered query. It owns one
//! [`SharedJoinStore`] per **internal** SJ-Tree node — the same per-parent
//! join index the sharded workers run on, driven through the same
//! `probe_then_insert` inner loop (`crate::join`) — and implements the
//! paper's two-step algorithm for every incoming edge:
//!
//! 1. **Local search** — match the edge against the search primitives at the
//!    leaves; each embedding found enters the join propagation at its leaf.
//! 2. **Join propagation** — a match at a node is filed on its side of the
//!    parent's shared store, probing the sibling side with the parent's
//!    cut-subgraph as the join key in the same hash lookup; every successful
//!    combination climbs to the parent, repeating until no larger match can
//!    be produced. A combination at the root that satisfies `τ(g) < tW` is a
//!    complete match.
//!
//! The climb is *flattened*: a precomputed per-node route table
//! (`crate::join::NodeRoute`) replaces tree-shape lookups on the hot path,
//! exactly as in the shard workers.

use crate::anchors::AnchorIndex;
use crate::binding::PartialMatch;
use crate::constraints::CompiledConstraints;
use crate::join::{self, NodeRoute, NO_PARENT};
use crate::local_search::{find_primitive_matches_anchored, LocalSearchStats};
use crate::match_store::SharedJoinStore;
use crate::metrics::QueryMetrics;
use streamworks_graph::{Duration, DynamicGraph, Edge, Timestamp};
use streamworks_query::{QueryGraph, QueryPlan, SjNodeId};

/// Incremental matcher for one query plan.
#[derive(Debug)]
pub struct SjTreeMatcher {
    plan: QueryPlan,
    constraints: CompiledConstraints,
    /// Shared two-sided join store per SJ-Tree node, indexed by `SjNodeId`;
    /// `Some` for internal nodes only (leaves file their matches into their
    /// parent's store, the root emits instead of storing).
    stores: Vec<Option<SharedJoinStore>>,
    /// Precomputed per-node climb steps (see [`NodeRoute`]).
    routes: Vec<NodeRoute>,
    metrics: QueryMetrics,
    /// Optional cap on live matches per node (guards against partial-match
    /// explosion under hostile plans; `None` = unbounded).
    max_matches_per_node: Option<usize>,
    /// Per-type anchor dispatch (leaf, anchor query edge) with the
    /// schema-version gate: an incoming edge whose type matches no query edge
    /// costs one hash probe instead of a walk over every leaf primitive.
    anchors: AnchorIndex<SjNodeId>,
    /// Scratch buffers reused across edges so the per-event path performs no
    /// transient allocations once warm.
    found: Vec<PartialMatch>,
    primitive_scratch: Vec<(SjNodeId, PartialMatch)>,
    stack: Vec<(SjNodeId, PartialMatch)>,
    merged: Vec<PartialMatch>,
}

impl SjTreeMatcher {
    /// Creates a matcher for `plan`, compiled against `graph`.
    pub fn new(plan: QueryPlan, graph: &DynamicGraph) -> Self {
        let constraints = CompiledConstraints::compile(&plan.query, graph);
        // One shared store per internal node, keyed on that node's cut (the
        // join key both children project onto).
        let stores = plan
            .shape
            .nodes()
            .map(|n| {
                n.children
                    .map(|_| SharedJoinStore::new(n.cut_vertices.clone()))
            })
            .collect();
        let routes = join::node_routes(&plan);
        let mut matcher = SjTreeMatcher {
            constraints,
            stores,
            routes,
            metrics: QueryMetrics::default(),
            max_matches_per_node: None,
            anchors: AnchorIndex::new(graph.schema_version()),
            found: Vec::new(),
            primitive_scratch: Vec::new(),
            stack: Vec::new(),
            merged: Vec::new(),
            plan,
        };
        matcher.rebuild_anchor_index();
        matcher
    }

    /// Rebuilds the per-type anchor dispatch table from the currently
    /// resolved constraints. Called at construction and whenever the graph's
    /// type schema grows.
    fn rebuild_anchor_index(&mut self) {
        self.anchors.begin_rebuild();
        for &leaf in self.plan.shape.leaves() {
            for &qe in self.plan.shape.primitive_edges(leaf) {
                self.anchors
                    .add(self.constraints.edge_type_filter(qe), leaf, qe);
            }
        }
    }

    /// Sets a cap on live partial matches per SJ-Tree node.
    pub fn with_match_cap(mut self, cap: Option<usize>) -> Self {
        self.max_matches_per_node = cap;
        self
    }

    /// The plan this matcher executes.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Mutable access to the executed pattern, for predicate refinement
    /// only: predicate-lifted shared entries widen their per-slot `InSet`
    /// constant filters as subscribers join. The graph structure, the
    /// decomposition, and the edge/vertex *types* must not change after
    /// planning — the join stores, climb routes, and anchor index are built
    /// from them and are not rebuilt.
    pub fn query_mut(&mut self) -> &mut QueryGraph {
        &mut self.plan.query
    }

    /// The query window `tW`.
    pub fn window(&self) -> Duration {
        self.plan.query.window()
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> QueryMetrics {
        let mut m = self.metrics;
        m.partial_matches_live = self.stores.iter().flatten().map(|s| s.len() as u64).sum();
        m
    }

    /// Live partial matches stored at a specific SJ-Tree node. A node's
    /// matches live on its side of the parent's shared store; the root
    /// stores nothing (its combinations are emitted).
    pub fn node_match_count(&self, node: SjNodeId) -> usize {
        let route = self.routes[node.0];
        if route.parent == NO_PARENT {
            return 0;
        }
        self.stores[route.parent as usize]
            .as_ref()
            .map(|s| s.side_len(route.side))
            .unwrap_or(0)
    }

    /// The fraction of the query's edges covered by the largest partial match
    /// currently stored anywhere in the tree (the "% matched" figure of the
    /// paper's Fig. 7 progression view).
    ///
    /// O(#nodes): each store maintains a running maximum edge count.
    pub fn best_partial_fraction(&self) -> f64 {
        if self.metrics.complete_matches > 0 {
            return 1.0;
        }
        let total = self.plan.query.edge_count() as f64;
        let best = self
            .stores
            .iter()
            .flatten()
            .map(SharedJoinStore::best_edge_count)
            .max()
            .unwrap_or(0);
        best as f64 / total
    }

    /// Processes one newly inserted data edge. Complete matches are appended
    /// to `out`.
    pub fn process_edge(&mut self, graph: &DynamicGraph, edge: &Edge, out: &mut Vec<PartialMatch>) {
        let mut primitives = std::mem::take(&mut self.primitive_scratch);
        primitives.clear();
        self.primitive_matches_into(graph, edge, &mut primitives);
        for (leaf, m) in primitives.drain(..) {
            self.insert_and_join(leaf, m, out);
        }
        self.primitive_scratch = primitives;
    }

    /// The matcher's *local-search front end*: runs the schema-gated
    /// constraint refresh and the per-type anchor dispatch for one data edge,
    /// appending every primitive embedding found as `(leaf, match)` to `out`
    /// — without touching the match stores.
    ///
    /// [`Self::process_edge`] feeds the results into the in-process join
    /// propagation; the sharded matcher (`crate::ShardedMatcher`) feeds them
    /// into its join-key router instead, so both executions share one front
    /// end. Local-search metrics (`edges_processed`,
    /// `local_search_candidates`, `primitive_matches`) are accounted here.
    pub(crate) fn primitive_matches_into(
        &mut self,
        graph: &DynamicGraph,
        edge: &Edge,
        out: &mut Vec<(SjNodeId, PartialMatch)>,
    ) {
        self.metrics.edges_processed += 1;
        // Type constraints only change when the graph interns a new type
        // name; gate the refresh on the schema version so the steady-state
        // path is a single integer compare.
        if self.anchors.schema_changed(graph.schema_version()) {
            self.constraints.refresh(&self.plan.query, graph);
            self.rebuild_anchor_index();
        }
        let window = self.window();

        // Dispatch through the per-type anchor index: only the (leaf, anchor)
        // pairs whose query-edge type can accept this data edge are searched.
        let anchors = self.anchors.take_for_type(edge.etype);

        let mut found = std::mem::take(&mut self.found);
        let mut stats = LocalSearchStats::default();
        for &(leaf, anchor) in &anchors {
            found.clear();
            find_primitive_matches_anchored(
                graph,
                &self.plan.query,
                &self.constraints,
                self.plan.shape.primitive_edges(leaf),
                anchor,
                edge,
                window,
                &mut found,
                &mut stats,
            );
            for m in found.drain(..) {
                out.push((leaf, m));
            }
        }
        self.metrics.local_search_candidates += stats.candidates_examined;
        self.metrics.primitive_matches += stats.matches_found;
        self.found = found;
        self.anchors.give_back(anchors);
    }

    /// The join-climb half of [`Self::process_edge`], exposed so the
    /// engine's sampled telemetry path can time local search and join climb
    /// separately: feeds one front-end primitive embedding (as produced by
    /// [`Self::primitive_matches_into`]) into the join propagation without
    /// re-counting it — `primitive_matches` was already accounted by the
    /// front end. Results are identical to `process_edge` feeding the same
    /// embeddings.
    pub(crate) fn join_from(
        &mut self,
        leaf: SjNodeId,
        m: PartialMatch,
        out: &mut Vec<PartialMatch>,
    ) {
        self.insert_and_join(leaf, m, out);
    }

    /// Feeds one embedding produced by the engine's shared primitive index
    /// (already remapped into this query's vertex/edge space) into the join
    /// propagation at `leaf` — the shared-dispatch twin of the local-search
    /// half of [`Self::process_edge`]. Complete matches are appended to
    /// `out`.
    pub(crate) fn absorb_embedding(
        &mut self,
        leaf: SjNodeId,
        m: PartialMatch,
        out: &mut Vec<PartialMatch>,
    ) {
        self.metrics.primitive_matches += 1;
        self.insert_and_join(leaf, m, out);
    }

    /// Accounts one shared-index embedding delivered to this matcher without
    /// passing through [`Self::absorb_embedding`] (the sharded execution
    /// routes embeddings to worker threads instead).
    pub(crate) fn note_shared_embedding(&mut self) {
        self.metrics.primitive_matches += 1;
    }

    /// Feeds one *joined* match produced by a shared subtree entry (already
    /// remapped into this query's vertex/edge space) into the join
    /// propagation at `node` — an internal node or the root, the point where
    /// this query subscribed to the entry. Unlike [`Self::absorb_embedding`]
    /// this does **not** count a primitive match: the constituent local
    /// searches and the joins below `node` ran once inside the shared entry,
    /// not here. Complete matches are appended to `out`.
    pub(crate) fn absorb_joined(
        &mut self,
        node: SjNodeId,
        m: PartialMatch,
        out: &mut Vec<PartialMatch>,
    ) {
        self.insert_and_join(node, m, out);
    }

    /// Inserts a match at a node and propagates joins towards the root —
    /// the flattened twin of `ShardWorker::process`, walking the precomputed
    /// route table and calling the shared `crate::join::probe_insert` step.
    ///
    /// For each match the join key is projected once, the sibling side of
    /// the parent's shared store is probed *before* the match is filed (a
    /// match at one node never joins with matches at the same node, so the
    /// order is equivalent), and the match is then moved — not cloned — into
    /// the store, all within a single hash lookup.
    fn insert_and_join(&mut self, node: SjNodeId, m: PartialMatch, out: &mut Vec<PartialMatch>) {
        let window = self.window();
        let mut stack = std::mem::take(&mut self.stack);
        let mut merged = std::mem::take(&mut self.merged);
        stack.push((node, m));
        while let Some((node, m)) = stack.pop() {
            // Spill telemetry: each materialised match whose inline storage
            // went to the heap is counted once, when it surfaces here.
            if m.spilled() {
                self.metrics.binding_spills += 1;
            }
            let NodeRoute {
                parent,
                side,
                parent_is_root: _,
            } = self.routes[node.0];
            if parent == NO_PARENT {
                // Root-level combination: a complete match.
                self.metrics.complete_matches += 1;
                out.push(m);
                continue;
            }
            let parent = parent as usize;
            let store = self.stores[parent]
                .as_mut()
                .expect("internal node has a shared store");
            // Respect the per-node cap (one node = one side of its parent's
            // shared store).
            if let Some(cap) = self.max_matches_per_node {
                if store.side_len(side) >= cap {
                    self.metrics.matches_dropped_by_cap += 1;
                    continue;
                }
            }

            merged.clear();
            let stats = join::probe_insert(store, side, m, window, &mut merged);
            self.metrics.joins_attempted += stats.attempted;
            self.metrics.joins_succeeded += stats.succeeded;
            self.metrics.partial_matches_inserted += 1;
            for combined in merged.drain(..) {
                stack.push((SjNodeId(parent), combined));
            }
        }
        self.stack = stack;
        self.merged = merged;
    }

    /// Removes every partial match whose earliest edge is older than
    /// `now - tW`: such matches can never be completed within the window.
    /// Exact on every node — the shared stores' min-heap expiry never
    /// retains stale matches behind an in-window head.
    pub fn prune(&mut self, now: Timestamp) {
        let cutoff = now.minus(self.window());
        let mut removed = 0usize;
        for store in self.stores.iter_mut().flatten() {
            removed += store.expire_older_than(cutoff);
        }
        self.metrics.partial_matches_expired += removed as u64;
    }

    /// Drops all stored partial matches and resets metrics (used between
    /// experiment repetitions).
    pub fn reset(&mut self) {
        for store in self.stores.iter_mut().flatten() {
            store.clear();
        }
        self.metrics = QueryMetrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{EdgeEvent, Timestamp};
    use streamworks_query::{Planner, QueryGraphBuilder};

    fn wedge_query(window_secs: i64) -> QueryPlan {
        let q = QueryGraphBuilder::new("wedge")
            .window(Duration::from_secs(window_secs))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap();
        // Single-edge primitives so the tree has two leaves and genuinely
        // stores partial matches (a 2-edge primitive would collapse this query
        // into one leaf that emits complete matches directly).
        Planner::new()
            .plan_with(
                q,
                &streamworks_query::SelectivityOrdered {
                    max_primitive_size: 1,
                },
            )
            .unwrap()
    }

    fn feed(
        g: &mut DynamicGraph,
        m: &mut SjTreeMatcher,
        src: &str,
        dst: &str,
        et: &str,
        t: i64,
    ) -> Vec<PartialMatch> {
        let (st, dt) = if et == "mentions" {
            ("Article", "Keyword")
        } else {
            ("Article", "Location")
        };
        let r = g.ingest(&EdgeEvent::new(
            src,
            st,
            dst,
            dt,
            et,
            Timestamp::from_secs(t),
        ));
        let edge = g.edge(r.edge).unwrap().clone();
        let mut out = Vec::new();
        m.process_edge(g, &edge, &mut out);
        out
    }

    #[test]
    fn complete_match_emitted_when_pattern_completes() {
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(wedge_query(3600), &g);
        assert!(feed(&mut g, &mut matcher, "a1", "k1", "mentions", 10).is_empty());
        let matches = feed(&mut g, &mut matcher, "a2", "k1", "mentions", 20);
        // Two articles sharing keyword k1: one embedding per (a1,a2) assignment.
        assert_eq!(matches.len(), 2);
        let metrics = matcher.metrics();
        assert_eq!(metrics.complete_matches, 2);
        assert!(metrics.edges_processed >= 2);
        assert!(matcher.best_partial_fraction() >= 1.0);
    }

    #[test]
    fn matches_outside_window_are_not_reported() {
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(wedge_query(30), &g);
        feed(&mut g, &mut matcher, "a1", "k1", "mentions", 10);
        // 100 - 10 = 90s span > 30s window.
        let matches = feed(&mut g, &mut matcher, "a2", "k1", "mentions", 100);
        assert!(matches.is_empty());
    }

    #[test]
    fn prune_discards_unjoinable_partial_matches() {
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(wedge_query(30), &g);
        for i in 0..50 {
            feed(&mut g, &mut matcher, &format!("a{i}"), "k1", "mentions", i);
        }
        let before = matcher.metrics().partial_matches_live;
        assert!(before > 0);
        matcher.prune(Timestamp::from_secs(1_000));
        let after = matcher.metrics();
        assert_eq!(after.partial_matches_live, 0);
        assert_eq!(after.partial_matches_expired, before);
    }

    #[test]
    fn match_cap_limits_partial_match_growth() {
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(wedge_query(3600), &g).with_match_cap(Some(5));
        for i in 0..20 {
            feed(&mut g, &mut matcher, &format!("a{i}"), "k1", "mentions", i);
        }
        let m = matcher.metrics();
        assert!(m.matches_dropped_by_cap > 0);
        assert!(m.partial_matches_live <= 10); // 5 per node, 2 nodes with stores in use
    }

    #[test]
    fn reset_clears_state() {
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(wedge_query(3600), &g);
        feed(&mut g, &mut matcher, "a1", "k1", "mentions", 1);
        feed(&mut g, &mut matcher, "a2", "k1", "mentions", 2);
        assert!(matcher.metrics().complete_matches > 0);
        matcher.reset();
        assert_eq!(matcher.metrics().complete_matches, 0);
        assert_eq!(matcher.metrics().partial_matches_live, 0);
    }

    #[test]
    fn oversized_query_increments_spill_counter() {
        // Nine vertices (> INLINE_VERTICES = 8): every partial match carries a
        // heap-spilled binding slot table, and the matcher must say so.
        let mut b = QueryGraphBuilder::new("big_star").window(Duration::from_hours(1));
        for i in 0..8 {
            b = b.vertex(&format!("a{i}"), "Article");
        }
        b = b.vertex("k", "Keyword");
        for i in 0..8 {
            b = b.edge(&format!("a{i}"), "mentions", "k");
        }
        let plan = Planner::new().plan(b.build().unwrap()).unwrap();
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(plan, &g);
        for i in 0..4 {
            feed(&mut g, &mut matcher, &format!("x{i}"), "k1", "mentions", i);
        }
        let m = matcher.metrics();
        assert!(m.partial_matches_inserted > 0);
        assert_eq!(
            m.binding_spills,
            m.partial_matches_inserted + m.complete_matches,
            "every materialised match of an oversized query spills"
        );

        // The paper-sized wedge query never spills.
        let mut g2 = DynamicGraph::unbounded();
        let mut small = SjTreeMatcher::new(wedge_query(3600), &g2);
        feed(&mut g2, &mut small, "a1", "k1", "mentions", 1);
        feed(&mut g2, &mut small, "a2", "k1", "mentions", 2);
        assert_eq!(small.metrics().binding_spills, 0);
    }

    #[test]
    fn three_leaf_plan_joins_across_levels() {
        // Fig. 2-style query: three articles sharing a keyword and a location.
        let q = QueryGraphBuilder::new("news_triple")
            .window(Duration::from_hours(6))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("a3", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .edge("a3", "mentions", "k")
            .edge("a1", "located", "l")
            .edge("a2", "located", "l")
            .edge("a3", "located", "l")
            .build()
            .unwrap();
        let plan = Planner::new().plan(q).unwrap();
        let mut g = DynamicGraph::unbounded();
        let mut matcher = SjTreeMatcher::new(plan, &g);
        let mut complete = 0usize;
        let mut t = 0;
        for a in ["x", "y", "z"] {
            complete += feed(&mut g, &mut matcher, a, "k1", "mentions", t).len();
            t += 1;
            complete += feed(&mut g, &mut matcher, a, "paris", "located", t).len();
            t += 1;
        }
        // Three articles, each with the keyword and the location: 3! = 6
        // assignments of (a1, a2, a3) to (x, y, z).
        assert_eq!(complete, 6);
        assert_eq!(matcher.metrics().complete_matches, 6);
        // Partial fraction reaches 1.0 once complete matches exist.
        assert_eq!(matcher.best_partial_fraction(), 1.0);
    }
}
