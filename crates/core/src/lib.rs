//! # streamworks-core
//!
//! The core of the StreamWorks reproduction: the incremental SJ-Tree subgraph
//! matcher and the continuous-query engine built on top of it
//! (Choudhury et al., *StreamWorks: A System for Dynamic Graph Search*,
//! SIGMOD 2013, §3–§4).
//!
//! The engine consumes timestamped [`streamworks_graph::EdgeEvent`]s, keeps the
//! dynamic graph and its statistics up to date, and runs every registered
//! query's SJ-Tree matcher incrementally: local search at the leaves for each
//! new edge, hash-join propagation toward the root, window-based expiry of
//! partial matches, and [`MatchEvent`] emission for completed patterns.
//!
//! ```
//! use streamworks_core::ContinuousQueryEngine;
//! use streamworks_graph::{EdgeEvent, Timestamp};
//!
//! let mut engine = ContinuousQueryEngine::with_defaults();
//! engine.register_dsl(
//!     "QUERY pair WINDOW 1h \
//!      MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)",
//! ).unwrap();
//!
//! engine.process(&EdgeEvent::new("a1", "Article", "rust", "Keyword", "mentions",
//!                                Timestamp::from_secs(10)));
//! let matches = engine.process(&EdgeEvent::new("a2", "Article", "rust", "Keyword",
//!                                              "mentions", Timestamp::from_secs(20)));
//! assert_eq!(matches.len(), 2); // (a1, a2) and (a2, a1)
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod adaptive;
mod binding;
mod checkpoint;
mod config;
mod constraints;
mod engine;
mod event;
mod local_search;
mod match_store;
mod metrics;
mod parallel;
mod sj_matcher;

pub use adaptive::{AdaptiveConfig, AdaptiveReplanner, ReplanDecision, ReplanStrategy};
pub use binding::{Binding, PartialMatch};
pub use checkpoint::EngineCheckpoint;
pub use config::EngineConfig;
pub use constraints::CompiledConstraints;
pub use engine::ContinuousQueryEngine;
pub use event::{
    BoundVertex, CallbackSink, ChannelSink, CollectingSink, EventSink, MatchEvent, QueryId,
};
pub use local_search::{find_primitive_matches, LocalSearchStats};
pub use match_store::{JoinKey, MatchHandle, MatchStore};
pub use metrics::QueryMetrics;
pub use parallel::{ParallelRunOutcome, ParallelRunner};
pub use sj_matcher::SjTreeMatcher;
