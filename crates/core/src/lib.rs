//! # streamworks-core
//!
//! The core of the StreamWorks reproduction: the incremental SJ-Tree subgraph
//! matcher and the continuous-query engine built on top of it
//! (Choudhury et al., *StreamWorks: A System for Dynamic Graph Search*,
//! SIGMOD 2013, §3–§4).
//!
//! The engine is a long-running service object: it is assembled through the
//! validating [`EngineBuilder`], registered queries come back as
//! generation-tagged [`QueryHandle`]s that can be paused, resumed, re-planned
//! and deregistered at runtime, each query can carry its own subscriptions,
//! and events arrive through the unified [`Ingest`] surface (single event,
//! slice, or iterator via [`EventBatch`] — all sharing the batched
//! bookkeeping path). A single hot query can be spread across worker threads
//! with [`EngineBuilder::shards`], which partitions its SJ-Tree match state
//! by join-key hash ([`ShardedMatcher`]) without changing any observable
//! result.
//!
//! ```
//! use streamworks_core::{ContinuousQueryEngine, CountingSink};
//! use streamworks_graph::{EdgeEvent, Timestamp};
//!
//! let mut engine = ContinuousQueryEngine::builder().build().unwrap();
//! let pairs = engine.register_dsl(
//!     "QUERY pair WINDOW 1h \
//!      MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)",
//! ).unwrap();
//!
//! // A per-query subscription observes matches while the engine owns the sink.
//! let (sink, seen) = CountingSink::new();
//! engine.subscribe(pairs, sink).unwrap();
//!
//! let matches = engine.ingest(&[
//!     EdgeEvent::new("a1", "Article", "rust", "Keyword", "mentions", Timestamp::from_secs(10)),
//!     EdgeEvent::new("a2", "Article", "rust", "Keyword", "mentions", Timestamp::from_secs(20)),
//! ]).unwrap();
//! assert_eq!(matches.len(), 2); // (a1, a2) and (a2, a1)
//! assert_eq!(seen.get(), 2);
//!
//! // Full lifecycle: pause, resume, deregister — the handle goes stale.
//! engine.pause(pairs).unwrap();
//! engine.resume(pairs).unwrap();
//! engine.deregister(pairs).unwrap();
//! assert!(engine.metrics(pairs).is_err());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod adaptive;
mod anchors;
mod binding;
mod checkpoint;
mod config;
mod constraints;
mod delivery;
mod engine;
mod error;
mod event;
pub mod failpoint;
mod handle;
mod ingest;
mod join;
mod local_search;
mod match_store;
mod metrics;
mod parallel;
mod rpq;
mod shared_index;
mod sj_matcher;
mod telemetry;

pub use adaptive::{AdaptiveConfig, AdaptiveReplanner, ReplanDecision, ReplanStrategy};
pub use binding::{Binding, PartialMatch, INLINE_EDGES, INLINE_VERTICES};
pub use checkpoint::EngineCheckpoint;
pub use config::{EngineBuilder, EngineConfig, ShardFailurePolicy};
pub use constraints::CompiledConstraints;
pub use delivery::{
    clear_endpoint, memory_sink_contents, register_endpoint, reset_memory_sink, DeliveryCursor,
    RetryPolicy, SinkSpec, Transport, TransportFactory,
};
pub use engine::{ContinuousQueryEngine, SubscriptionHealth};
pub use error::EngineError;
pub use event::{
    BoundVertex, BufferingSink, CallbackSink, ChannelSink, CollectingSink, CountingSink, EventSink,
    MatchBuffer, MatchCounter, MatchEvent, QueryId, SinkOverflow,
};
pub use handle::{QueryHandle, SubscriptionId};
pub use ingest::{EventBatch, Ingest};
pub use local_search::{find_primitive_matches, LocalSearchStats};
pub use match_store::{JoinKey, JoinSide, SharedJoinStore};
pub use metrics::{EngineMetrics, QueryMetrics, ShardMetrics};
pub use parallel::{ParallelRunOutcome, ParallelRunner, ShardFailure, ShardedMatcher};
pub use sj_matcher::SjTreeMatcher;
pub use telemetry::{
    shard_skew, AtomicHistogram, DeliverySnapshot, HistogramSnapshot, MetricsRegistry,
    QuerySnapshot, ShardSetSnapshot, SpanRing, Stage, StageSnapshot, TelemetryCheckpoint,
    TelemetryCore, TelemetryLevel, TelemetrySnapshot, TraceSpan, SPAN_RING_CAPACITY,
};
