//! Compiled, graph-specific constraint checks for a registered query.
//!
//! Query graphs constrain vertices and edges by *type name* and attribute
//! predicates. The data graph interns type names to dense [`TypeId`]s, so at
//! registration time (and lazily afterwards, because a type may only appear in
//! the stream later) the engine resolves every query-side name to the graph's
//! id space. All hot-path checks then compare integers.

use streamworks_graph::{DynamicGraph, Edge, TypeId, VertexId};
use streamworks_query::{QueryEdgeId, QueryGraph, QueryVertexId};

/// Resolution state of one type-name constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolved {
    /// No constraint — matches any type.
    Any,
    /// Constraint names a type the data graph has not seen yet; nothing matches.
    Unknown,
    /// Constraint resolved to a concrete type id.
    Id(TypeId),
}

/// Per-query compiled constraints, refreshed lazily as the data graph's type
/// interner grows.
#[derive(Debug, Clone)]
pub struct CompiledConstraints {
    vtypes: Vec<Resolved>,
    etypes: Vec<Resolved>,
    /// Sizes of the graph's type interners when we last resolved, so we can
    /// detect that new type names appeared and re-resolve cheaply.
    seen_vertex_types: usize,
    seen_edge_types: usize,
}

impl CompiledConstraints {
    /// Compiles constraints for `query` against the current state of `graph`.
    pub fn compile(query: &QueryGraph, graph: &DynamicGraph) -> Self {
        let mut c = CompiledConstraints {
            vtypes: vec![Resolved::Any; query.vertex_count()],
            etypes: vec![Resolved::Any; query.edge_count()],
            seen_vertex_types: usize::MAX,
            seen_edge_types: usize::MAX,
        };
        c.refresh(query, graph);
        c
    }

    /// Re-resolves names if the graph has learned new types since the last call.
    pub fn refresh(&mut self, query: &QueryGraph, graph: &DynamicGraph) {
        if self.seen_vertex_types == graph.vertex_type_count()
            && self.seen_edge_types == graph.edge_type_count()
        {
            return;
        }
        self.seen_vertex_types = graph.vertex_type_count();
        self.seen_edge_types = graph.edge_type_count();
        for v in query.vertices() {
            self.vtypes[v.id.0] = match &v.vtype {
                None => Resolved::Any,
                Some(name) => match graph.vertex_type_id(name) {
                    Some(id) => Resolved::Id(id),
                    None => Resolved::Unknown,
                },
            };
        }
        for e in query.edges() {
            self.etypes[e.id.0] = match &e.etype {
                None => Resolved::Any,
                Some(name) => match graph.edge_type_id(name) {
                    Some(id) => Resolved::Id(id),
                    None => Resolved::Unknown,
                },
            };
        }
    }

    /// The resolved edge-type constraint for a query edge: `Ok(Some(t))` for a
    /// concrete type, `Ok(None)` for "any", `Err(())` for a type the graph has
    /// never seen (nothing can match).
    #[allow(clippy::result_unit_err)] // Err(()) is a deliberate "nothing matches" marker
    pub fn edge_type_filter(&self, qe: QueryEdgeId) -> Result<Option<TypeId>, ()> {
        match self.etypes[qe.0] {
            Resolved::Any => Ok(None),
            Resolved::Id(t) => Ok(Some(t)),
            Resolved::Unknown => Err(()),
        }
    }

    /// True if data vertex `dv` satisfies the type and predicate constraints of
    /// query vertex `qv`.
    pub fn vertex_matches(
        &self,
        graph: &DynamicGraph,
        query: &QueryGraph,
        qv: QueryVertexId,
        dv: VertexId,
    ) -> bool {
        let Some(vertex) = graph.vertex(dv) else {
            return false;
        };
        match self.vtypes[qv.0] {
            Resolved::Any => {}
            Resolved::Unknown => return false,
            Resolved::Id(t) => {
                if vertex.vtype != t {
                    return false;
                }
            }
        }
        query
            .vertex(qv)
            .predicates
            .iter()
            .all(|p| p.matches(&vertex.attrs))
    }

    /// True if data edge `edge` can realise query edge `qe` (type, endpoint
    /// types and all predicates).
    pub fn edge_matches(
        &self,
        graph: &DynamicGraph,
        query: &QueryGraph,
        qe: QueryEdgeId,
        edge: &Edge,
    ) -> bool {
        match self.etypes[qe.0] {
            Resolved::Any => {}
            Resolved::Unknown => return false,
            Resolved::Id(t) => {
                if edge.etype != t {
                    return false;
                }
            }
        }
        let q = query.edge(qe);
        if !q.predicates.iter().all(|p| p.matches(&edge.attrs)) {
            return false;
        }
        self.vertex_matches(graph, query, q.src, edge.src)
            && self.vertex_matches(graph, query, q.dst, edge.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{EdgeEvent, Timestamp};
    use streamworks_query::{Predicate, QueryGraphBuilder};

    fn graph() -> DynamicGraph {
        let mut g = DynamicGraph::unbounded();
        g.ingest(
            &EdgeEvent::new(
                "a1",
                "Article",
                "k1",
                "Keyword",
                "mentions",
                Timestamp::from_secs(1),
            )
            .with_attr("weight", 3i64),
        );
        let k1 = g.vertex_by_key("k1").unwrap();
        g.set_vertex_attr(k1, "label", "politics").unwrap();
        g.ingest(&EdgeEvent::new(
            "a1",
            "Article",
            "l1",
            "Location",
            "located",
            Timestamp::from_secs(2),
        ));
        g
    }

    fn query() -> QueryGraph {
        QueryGraphBuilder::new("q")
            .vertex("a", "Article")
            .vertex("k", "Keyword")
            .edge("a", "mentions", "k")
            .vertex_predicate("k", Predicate::eq("label", "politics"))
            .build()
            .unwrap()
    }

    #[test]
    fn edge_and_vertex_constraints_resolve_and_match() {
        let g = graph();
        let q = query();
        let c = CompiledConstraints::compile(&q, &g);
        let mention_edge = g
            .edges()
            .find(|e| g.edge_type_name(e.etype) == Some("mentions"))
            .unwrap();
        let located_edge = g
            .edges()
            .find(|e| g.edge_type_name(e.etype) == Some("located"))
            .unwrap();
        assert!(c.edge_matches(&g, &q, streamworks_query::QueryEdgeId(0), mention_edge));
        assert!(!c.edge_matches(&g, &q, streamworks_query::QueryEdgeId(0), located_edge));
    }

    #[test]
    fn vertex_predicates_are_enforced() {
        let mut g = graph();
        let q = query();
        // Add a second mention whose keyword lacks the politics label.
        g.ingest(&EdgeEvent::new(
            "a2",
            "Article",
            "k2",
            "Keyword",
            "mentions",
            Timestamp::from_secs(3),
        ));
        let c = CompiledConstraints::compile(&q, &g);
        let bad_edge = g
            .edges()
            .find(|e| g.vertex_key(e.src) == Some("a2"))
            .unwrap();
        assert!(!c.edge_matches(&g, &q, streamworks_query::QueryEdgeId(0), bad_edge));
    }

    #[test]
    fn unknown_types_match_nothing_until_refresh() {
        let mut g = DynamicGraph::unbounded();
        g.ingest(&EdgeEvent::new(
            "x",
            "Host",
            "y",
            "Host",
            "flow",
            Timestamp::from_secs(1),
        ));
        let q = query(); // references Article/Keyword/mentions, unseen so far
        let mut c = CompiledConstraints::compile(&q, &g);
        assert_eq!(c.edge_type_filter(QueryEdgeId(0)), Err(()));
        // Once the graph sees the types, refresh resolves them.
        g.ingest(&EdgeEvent::new(
            "a1",
            "Article",
            "k1",
            "Keyword",
            "mentions",
            Timestamp::from_secs(2),
        ));
        c.refresh(&q, &g);
        assert!(matches!(c.edge_type_filter(QueryEdgeId(0)), Ok(Some(_))));
    }
}
