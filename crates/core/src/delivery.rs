//! Durable, resumable subscription delivery.
//!
//! In-process sinks ([`crate::EventSink`]) die with the engine: they are
//! deliberately excluded from [`crate::EngineCheckpoint`], so a crash loses
//! or replays deliveries. This module adds the *durable* delivery path:
//!
//! - A serialisable [`SinkSpec`] names a delivery destination that can be
//!   rebuilt after a restart: an owned append-only log file, a socket-like
//!   endpoint behind the [`Transport`] trait (tests inject faulty transports
//!   through [`register_endpoint`]), a process-global named memory buffer,
//!   or a discard sink.
//! - Each durable subscription keeps a **delivery cursor** — the count of
//!   acknowledged deliveries, i.e. the monotone position of the last match
//!   the destination has confirmed — plus a bounded outbox of rendered but
//!   not-yet-acknowledged match lines. Both are persisted in the engine
//!   checkpoint, so a restore resumes each subscriber *exactly* after its
//!   last acknowledged match: no duplicates, no losses.
//! - Failures no longer detach the subscriber in one strike. A
//!   [`RetryPolicy`] (max attempts, exponential backoff with a cap, a
//!   per-attempt timeout handed to the transport) moves a failing
//!   subscription through `Active → Degraded(retrying) → Quarantined`, and
//!   recovery probation — an automatic probe after the backoff cap, or an
//!   explicit [`crate::ContinuousQueryEngine::resubscribe`] — promotes it
//!   back to `Active`.
//!
//! # Crash-exact resume
//!
//! The log-file and memory destinations are *owned* by their subscription:
//! on every (re)connect the destination is truncated to exactly the
//! acknowledged prefix (`cursor` complete lines). Deliveries that raced
//! ahead of the last checkpoint — including a line written whose
//! acknowledgement was lost at the `delivery-ack` failpoint — are discarded
//! and rewritten by the replaying engine, which is what makes the final log
//! bit-identical to an uninterrupted run no matter where the process was
//! killed. A log that is *shorter* than the cursor cannot be repaired and
//! maps to [`crate::EngineError::CorruptCheckpoint`] with the byte offset
//! where the acknowledged prefix ends. Endpoint destinations cannot be
//! truncated remotely; across a crash they are at-least-once for the
//! entries delivered after the last checkpoint.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::event::SinkOverflow;

/// Retry schedule for a failing durable subscription.
///
/// An attempt that fails schedules the next one `backoff_base_ms ·
/// 2^(failures−1)` milliseconds later, capped at `backoff_cap_ms`; after
/// `max_attempts` consecutive failures the subscription is quarantined.
/// Every attempt hands `attempt_timeout_ms` to the destination (transports
/// enforce it socket-timeout style; local files ignore it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Consecutive failed attempts tolerated before quarantine (≥ 1; `1`
    /// restores the pre-0.7 one-strike behaviour).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds (doubles per
    /// failure).
    pub backoff_base_ms: u64,
    /// Upper bound on the backoff, in milliseconds. Also the probation
    /// delay before a quarantined subscription is probed automatically.
    pub backoff_cap_ms: u64,
    /// Per-attempt delivery timeout handed to the destination, in
    /// milliseconds.
    pub attempt_timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 10,
            backoff_cap_ms: 1000,
            attempt_timeout_ms: 1000,
        }
    }
}

impl RetryPolicy {
    /// The pre-0.7 one-strike policy: a single failed attempt quarantines
    /// the subscription immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            attempt_timeout_ms: 1000,
        }
    }

    /// Backoff to wait after the `failures`-th consecutive failure
    /// (1-based): `base · 2^(failures−1)`, capped.
    pub fn backoff_for(&self, failures: u32) -> Duration {
        let shift = failures.saturating_sub(1).min(32);
        let ms = self
            .backoff_base_ms
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ms);
        Duration::from_millis(ms)
    }

    /// The per-attempt timeout as a [`Duration`].
    pub fn attempt_timeout(&self) -> Duration {
        Duration::from_millis(self.attempt_timeout_ms)
    }
}

/// A connected socket-like delivery channel for [`SinkSpec::Endpoint`]
/// destinations.
///
/// Production deployments would back this with a real socket; the test
/// suites back it with fault-injecting in-process fakes registered through
/// [`register_endpoint`]. Implementations enforce `timeout` themselves
/// (socket-timeout style) — the engine never blocks on a send beyond it.
pub trait Transport: Send {
    /// Sends one rendered match line, returning a description of the
    /// failure if the line was not acknowledged within `timeout`.
    fn send(&mut self, line: &str, timeout: Duration) -> Result<(), String>;
}

/// Factory producing a fresh [`Transport`] for an endpoint address; invoked
/// on every (re)connect, so a flaky endpoint is re-dialled per retry.
pub type TransportFactory =
    dyn Fn(&str) -> Result<Box<dyn Transport>, String> + Send + Sync + 'static;

fn endpoint_registry() -> &'static Mutex<HashMap<String, Arc<TransportFactory>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<TransportFactory>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Registers the transport factory dialled for [`SinkSpec::Endpoint`]
/// subscriptions with this `address` (process-global; replaces any previous
/// registration). Tests use this to stand in faulty transports.
pub fn register_endpoint<F>(address: impl Into<String>, factory: F)
where
    F: Fn(&str) -> Result<Box<dyn Transport>, String> + Send + Sync + 'static,
{
    endpoint_registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(address.into(), Arc::new(factory));
}

/// Removes the transport factory for `address`; subsequent connect attempts
/// fail transiently (and retry) until a factory is registered again.
pub fn clear_endpoint(address: &str) {
    endpoint_registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(address);
}

/// Shared line buffer behind one memory-sink key.
type SharedLines = Arc<Mutex<Vec<String>>>;

fn memory_registry() -> &'static Mutex<HashMap<String, SharedLines>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SharedLines>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn memory_buffer(key: &str) -> SharedLines {
    memory_registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .entry(key.to_owned())
        .or_default()
        .clone()
}

/// Snapshot of the lines delivered to the [`SinkSpec::Memory`] buffer
/// named `key` (empty if nothing was ever delivered there).
pub fn memory_sink_contents(key: &str) -> Vec<String> {
    memory_buffer(key)
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Clears the [`SinkSpec::Memory`] buffer named `key`. Call between test
/// scenarios — the registry is process-global.
pub fn reset_memory_sink(key: &str) {
    memory_buffer(key)
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// A serialisable delivery destination for
/// [`crate::ContinuousQueryEngine::subscribe_durable`].
///
/// Unlike a live [`crate::EventSink`], a `SinkSpec` survives
/// checkpoint/restore: the engine persists the spec plus the subscription's
/// delivery cursor and reconnects on restore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SinkSpec {
    /// An append-only log file *owned by the subscription*: every
    /// (re)connect truncates it to the acknowledged prefix, which is what
    /// makes crash-resume bit-exact. One rendered match per line.
    LogFile {
        /// Path of the delivery log.
        path: String,
    },
    /// A socket-like endpoint dialled through the [`Transport`] factory
    /// registered for `address` (see [`register_endpoint`]). At-least-once
    /// across a crash for entries delivered after the last checkpoint.
    Endpoint {
        /// Address handed to the registered [`TransportFactory`].
        address: String,
    },
    /// A process-global named in-memory buffer — the durable wrapper for
    /// the in-process sink kinds. Readable via [`memory_sink_contents`];
    /// truncated to the acknowledged prefix on (re)connect like
    /// [`SinkSpec::LogFile`].
    Memory {
        /// Buffer name in the process-global registry.
        key: String,
    },
    /// Acknowledges everything without storing it (a durable `/dev/null`;
    /// useful for throughput measurements of the delivery path itself).
    Discard,
}

/// Why a [`SinkSpec`] could not be connected.
pub(crate) enum ConnectError {
    /// The destination is unreachable right now; retrying may succeed.
    Transient(String),
    /// The destination's acknowledged prefix is gone (e.g. a delivery log
    /// truncated below the cursor) — retrying cannot help. `offset` is the
    /// byte position where the acknowledged prefix ends.
    Corrupt { offset: usize, detail: String },
}

/// A live connection materialised from a [`SinkSpec`].
pub(crate) trait DeliveryTarget: Send {
    /// Delivers one rendered match line; `Err` carries a failure
    /// description and the line is considered not acknowledged.
    fn deliver(&mut self, line: &str, timeout: Duration) -> Result<(), String>;
}

struct LogFileTarget {
    file: std::fs::File,
}

impl DeliveryTarget for LogFileTarget {
    fn deliver(&mut self, line: &str, _timeout: Duration) -> Result<(), String> {
        use std::io::Write;
        writeln!(self.file, "{line}").map_err(|e| format!("write failed: {e}"))?;
        self.file.flush().map_err(|e| format!("flush failed: {e}"))
    }
}

struct MemoryTarget {
    buffer: Arc<Mutex<Vec<String>>>,
}

impl DeliveryTarget for MemoryTarget {
    fn deliver(&mut self, line: &str, _timeout: Duration) -> Result<(), String> {
        self.buffer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(line.to_owned());
        Ok(())
    }
}

struct EndpointTarget {
    transport: Box<dyn Transport>,
}

impl DeliveryTarget for EndpointTarget {
    fn deliver(&mut self, line: &str, timeout: Duration) -> Result<(), String> {
        self.transport.send(line, timeout)
    }
}

struct DiscardTarget;

impl DeliveryTarget for DiscardTarget {
    fn deliver(&mut self, _line: &str, _timeout: Duration) -> Result<(), String> {
        Ok(())
    }
}

fn connect_log_file(path: &str, cursor: u64) -> Result<Box<dyn DeliveryTarget>, ConnectError> {
    use std::io::{Read, Seek, SeekFrom};
    let transient = |e: std::io::Error| ConnectError::Transient(format!("{path}: {e}"));
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map_err(transient)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(transient)?;
    // Scan the acknowledged prefix: `cursor` complete ('\n'-terminated)
    // lines. Anything past it — unacknowledged racing writes, a partial
    // line from a crash mid-write — is truncated away and redelivered.
    let mut lines = 0u64;
    let mut offset = 0usize;
    for (i, b) in bytes.iter().enumerate() {
        if lines == cursor {
            break;
        }
        if *b == b'\n' {
            lines += 1;
            offset = i + 1;
        }
    }
    if lines < cursor {
        return Err(ConnectError::Corrupt {
            offset,
            detail: format!(
                "delivery log {path} holds {lines} acknowledged lines where the cursor expects \
                 {cursor}"
            ),
        });
    }
    file.set_len(offset as u64).map_err(transient)?;
    file.seek(SeekFrom::Start(offset as u64))
        .map_err(transient)?;
    Ok(Box::new(LogFileTarget { file }))
}

fn connect_memory(key: &str, cursor: u64) -> Result<Box<dyn DeliveryTarget>, ConnectError> {
    let buffer = memory_buffer(key);
    {
        let mut guard = buffer.lock().unwrap_or_else(PoisonError::into_inner);
        let held = guard.len() as u64;
        if held < cursor {
            let offset: usize = guard.iter().map(|l| l.len() + 1).sum();
            return Err(ConnectError::Corrupt {
                offset,
                detail: format!(
                    "memory sink `{key}` holds {held} acknowledged lines where the cursor \
                     expects {cursor}"
                ),
            });
        }
        guard.truncate(cursor as usize);
    }
    Ok(Box::new(MemoryTarget { buffer }))
}

fn connect_endpoint(address: &str) -> Result<Box<dyn DeliveryTarget>, ConnectError> {
    let factory = endpoint_registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(address)
        .cloned();
    let Some(factory) = factory else {
        return Err(ConnectError::Transient(format!(
            "no transport registered for endpoint `{address}`"
        )));
    };
    factory(address)
        .map(|transport| Box::new(EndpointTarget { transport }) as Box<dyn DeliveryTarget>)
        .map_err(ConnectError::Transient)
}

impl SinkSpec {
    /// Human-readable destination description for observability exports
    /// (`telemetry_snapshot()`'s delivery section): `log:<path>`,
    /// `memory:<key>`, `endpoint:<address>` or `discard`.
    pub fn describe(&self) -> String {
        match self {
            SinkSpec::LogFile { path } => format!("log:{path}"),
            SinkSpec::Memory { key } => format!("memory:{key}"),
            SinkSpec::Endpoint { address } => format!("endpoint:{address}"),
            SinkSpec::Discard => "discard".to_string(),
        }
    }

    /// Materialises the destination, resuming after `cursor` acknowledged
    /// deliveries (log-file and memory destinations are truncated to that
    /// prefix; endpoints are simply re-dialled).
    pub(crate) fn connect(&self, cursor: u64) -> Result<Box<dyn DeliveryTarget>, ConnectError> {
        match self {
            SinkSpec::LogFile { path } => connect_log_file(path, cursor),
            SinkSpec::Memory { key } => connect_memory(key, cursor),
            SinkSpec::Endpoint { address } => connect_endpoint(address),
            SinkSpec::Discard => Ok(Box::new(DiscardTarget)),
        }
    }
}

/// Delivery-side health of a durable subscription (the engine maps this
/// onto [`crate::SubscriptionHealth`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DeliveryStatus {
    /// Deliveries are being acknowledged.
    Active,
    /// The last `failures` attempts failed; retrying under backoff.
    Degraded {
        /// Consecutive failed attempts so far.
        failures: u32,
    },
    /// The retry budget is exhausted; only a probation probe (automatic
    /// after the backoff cap, or an explicit `resubscribe`) retries again.
    Quarantined {
        /// Description of the final failure.
        reason: String,
    },
}

/// Serialized state of one durable subscription inside an
/// [`crate::EngineCheckpoint`]: the spec to reconnect, the delivery cursor
/// to resume after, and the undelivered outbox.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryCursor {
    /// Position of the owning query in the checkpoint's combined
    /// registration order.
    pub query: usize,
    /// The subscription's token (stable across checkpoint/restore).
    pub token: u64,
    /// The destination to reconnect on restore.
    pub spec: SinkSpec,
    /// Acknowledged deliveries so far — the monotone stream position of the
    /// last match the destination confirmed.
    pub cursor: u64,
    /// Matches routed to this subscription since it was created (includes
    /// entries later dropped by the overflow policy).
    pub routed: u64,
    /// Matches dropped by the outbox overflow policy before delivery.
    pub dropped: u64,
    /// Rendered match lines routed but not yet acknowledged.
    #[serde(default)]
    pub outbox: Vec<String>,
    /// Outbox capacity.
    pub capacity: usize,
    /// Outbox overflow policy.
    pub overflow: SinkOverflow,
}

/// One durable subscription: spec, live connection, bounded outbox, cursor
/// and the retry state machine. Owned by the engine's per-query state.
pub(crate) struct DurableSub {
    pub(crate) token: u64,
    pub(crate) spec: SinkSpec,
    pub(crate) target: Option<Box<dyn DeliveryTarget>>,
    pub(crate) outbox: VecDeque<String>,
    pub(crate) capacity: usize,
    pub(crate) overflow: SinkOverflow,
    /// Acknowledged deliveries (the delivery cursor).
    pub(crate) cursor: u64,
    /// Matches routed to this subscription (delivered + pending + dropped).
    pub(crate) routed: u64,
    /// Matches dropped by the overflow policy.
    pub(crate) dropped: u64,
    pub(crate) status: DeliveryStatus,
    /// Backoff gate: no retry before this instant (never serialized — a
    /// restore retries immediately).
    retry_not_before: Option<Instant>,
    /// When the subscription was quarantined (drives the automatic
    /// probation probe).
    quarantined_at: Option<Instant>,
    /// Delivery attempts performed (every try counts, including retries
    /// and probes).
    pub(crate) attempts: u64,
    /// Attempts that were retries or probation probes (performed while not
    /// `Active`).
    pub(crate) retries: u64,
    /// Promotions back to `Active` after a degraded or quarantined spell.
    pub(crate) recoveries: u64,
}

impl DurableSub {
    pub(crate) fn new(token: u64, spec: SinkSpec, capacity: usize, overflow: SinkOverflow) -> Self {
        DurableSub {
            token,
            spec,
            target: None,
            outbox: VecDeque::new(),
            capacity,
            overflow,
            cursor: 0,
            routed: 0,
            dropped: 0,
            status: DeliveryStatus::Active,
            retry_not_before: None,
            quarantined_at: None,
            attempts: 0,
            retries: 0,
            recoveries: 0,
        }
    }

    /// Rebuilds a subscription from its checkpointed cursor. The connection
    /// is re-established lazily on the first drain; restore clears any
    /// quarantine — a restart is its own probation.
    pub(crate) fn from_cursor(cursor: &DeliveryCursor) -> Self {
        DurableSub {
            token: cursor.token,
            spec: cursor.spec.clone(),
            target: None,
            outbox: cursor.outbox.iter().cloned().collect(),
            capacity: cursor.capacity.max(1),
            overflow: cursor.overflow,
            cursor: cursor.cursor,
            routed: cursor.routed,
            dropped: cursor.dropped,
            status: DeliveryStatus::Active,
            retry_not_before: None,
            quarantined_at: None,
            attempts: 0,
            retries: 0,
            recoveries: 0,
        }
    }

    /// The checkpointable view (`query` is filled in by the capture).
    pub(crate) fn to_cursor(&self, query: usize) -> DeliveryCursor {
        DeliveryCursor {
            query,
            token: self.token,
            spec: self.spec.clone(),
            cursor: self.cursor,
            routed: self.routed,
            dropped: self.dropped,
            outbox: self.outbox.iter().cloned().collect(),
            capacity: self.capacity,
            overflow: self.overflow,
        }
    }

    /// Undelivered entries — the `cursor_lag` gauge.
    pub(crate) fn lag(&self) -> u64 {
        self.outbox.len() as u64
    }

    /// Routes one rendered match line into the outbox, applying the
    /// overflow policy when full. `Block` has no consumer thread to wait
    /// for, so it drains inline (one synchronous delivery round) and falls
    /// back to evicting the oldest pending entry if the destination is
    /// down — blocking would deadlock the ingest path.
    pub(crate) fn enqueue(&mut self, line: String, policy: &RetryPolicy) {
        self.routed += 1;
        if self.outbox.len() >= self.capacity.max(1) {
            match self.overflow {
                SinkOverflow::DropNewest => {
                    self.dropped += 1;
                    return;
                }
                SinkOverflow::DropOldest => {
                    self.outbox.pop_front();
                    self.dropped += 1;
                }
                SinkOverflow::Block => {
                    self.drain(policy, false);
                    if self.outbox.len() >= self.capacity.max(1) {
                        self.outbox.pop_front();
                        self.dropped += 1;
                    }
                }
            }
        }
        self.outbox.push_back(line);
    }

    /// Resets the retry state machine to probation: the next drain
    /// reconnects and retries immediately, with the full retry budget.
    pub(crate) fn probation(&mut self) {
        self.target = None;
        self.status = DeliveryStatus::Active;
        self.retry_not_before = None;
        self.quarantined_at = None;
    }

    fn ensure_target(&mut self) -> Result<(), String> {
        if self.target.is_some() {
            return Ok(());
        }
        match self.spec.connect(self.cursor) {
            Ok(target) => {
                self.target = Some(target);
                Ok(())
            }
            Err(ConnectError::Transient(message)) => Err(message),
            Err(ConnectError::Corrupt { offset, detail }) => {
                Err(format!("corrupt delivery log at byte {offset}: {detail}"))
            }
        }
    }

    fn record_failure(&mut self, message: String, policy: &RetryPolicy, probing: bool) {
        // Reconnect per retry: for owned destinations the reconnect also
        // truncates any partial write back to the acknowledged prefix.
        self.target = None;
        let failures = match self.status {
            DeliveryStatus::Degraded { failures } => failures + 1,
            _ => 1,
        };
        if probing || failures >= policy.max_attempts {
            self.status = DeliveryStatus::Quarantined { reason: message };
            self.quarantined_at = Some(Instant::now());
            self.retry_not_before = None;
        } else {
            self.status = DeliveryStatus::Degraded { failures };
            self.retry_not_before = Some(Instant::now() + policy.backoff_for(failures));
        }
    }

    /// Drains the outbox: delivers pending entries in order, advancing the
    /// cursor per acknowledgement. On a failure the head entry stays put,
    /// the retry state machine advances, and the drain stops — one attempt
    /// per drain while unhealthy. `force` ignores the backoff/probation
    /// gates (used by explicit flushes).
    pub(crate) fn drain(&mut self, policy: &RetryPolicy, force: bool) {
        loop {
            let probing = match &self.status {
                DeliveryStatus::Quarantined { .. } => {
                    if !force {
                        let due = self.quarantined_at.is_none_or(|at| {
                            at.elapsed() >= Duration::from_millis(policy.backoff_cap_ms)
                        });
                        if !due {
                            return;
                        }
                    }
                    true
                }
                DeliveryStatus::Degraded { .. } => {
                    if !force {
                        if let Some(gate) = self.retry_not_before {
                            if Instant::now() < gate {
                                return;
                            }
                        }
                    }
                    false
                }
                DeliveryStatus::Active => false,
            };
            if self.outbox.is_empty() {
                // Nothing pending: use the slot to re-establish health if
                // the last attempt failed, so an idle subscriber still
                // converges back to `Active`.
                if matches!(self.status, DeliveryStatus::Active) {
                    return;
                }
                self.attempts += 1;
                self.retries += 1;
                match self.ensure_target() {
                    Ok(()) => {
                        self.status = DeliveryStatus::Active;
                        self.retry_not_before = None;
                        self.quarantined_at = None;
                        self.recoveries += 1;
                    }
                    Err(message) => self.record_failure(message, policy, probing),
                }
                return;
            }
            let retrying = probing || !matches!(self.status, DeliveryStatus::Active);
            self.attempts += 1;
            if retrying {
                self.retries += 1;
            }
            let injected = crate::failpoint::fire_at("delivery-retry", self.token as usize);
            let outcome: Result<(), String> = if injected {
                Err("injected delivery-retry failure".to_owned())
            } else {
                match self.ensure_target() {
                    Err(message) => Err(message),
                    Ok(()) => {
                        let target = self.target.as_mut().expect("target just ensured");
                        let line = self.outbox.front().expect("outbox is non-empty");
                        target.deliver(line, policy.attempt_timeout())
                    }
                }
            };
            match outcome {
                Ok(()) => {
                    // Crash site between delivery and acknowledgement: a
                    // `Panic` here models the delivered-but-unacked crash
                    // (the reconnect truncation repairs it); an `Error` is
                    // treated as a failed attempt and the entry is
                    // redelivered (at-least-once for that entry).
                    if crate::failpoint::fire_at("delivery-ack", self.token as usize) {
                        self.record_failure(
                            "injected delivery-ack failure".to_owned(),
                            policy,
                            probing,
                        );
                        return;
                    }
                    self.outbox.pop_front();
                    self.cursor += 1;
                    if retrying {
                        self.recoveries += 1;
                    }
                    self.status = DeliveryStatus::Active;
                    self.retry_not_before = None;
                    self.quarantined_at = None;
                }
                Err(message) => {
                    self.record_failure(message, policy, probing);
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(name: &str) -> String {
        let dir = std::env::temp_dir().join("sw_delivery_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.log", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            backoff_base_ms: 10,
            backoff_cap_ms: 50,
            attempt_timeout_ms: 100,
        };
        assert_eq!(policy.backoff_for(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(40));
        assert_eq!(policy.backoff_for(4), Duration::from_millis(50));
        assert_eq!(policy.backoff_for(64), Duration::from_millis(50));
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn sink_specs_round_trip_through_json() {
        let specs = vec![
            SinkSpec::LogFile {
                path: "/tmp/x.log".into(),
            },
            SinkSpec::Endpoint {
                address: "alerts:9".into(),
            },
            SinkSpec::Memory { key: "k".into() },
            SinkSpec::Discard,
        ];
        let json = serde_json::to_string(&specs).unwrap();
        let back: Vec<SinkSpec> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, specs);
    }

    #[test]
    fn log_file_truncates_to_the_acknowledged_prefix_on_connect() {
        let path = scratch("truncate");
        std::fs::write(&path, "one\ntwo\nthree\npartial").unwrap();
        // Cursor 2: lines past the acknowledged prefix (and the partial
        // trailing write) are discarded.
        let mut target = SinkSpec::LogFile { path: path.clone() }
            .connect(2)
            .ok()
            .unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "one\ntwo\n");
        target.deliver("three'", Duration::from_millis(10)).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "one\ntwo\nthree'\n"
        );
        // Cursor 0 (a fresh subscription over an old log) keeps *nothing*.
        drop(target);
        let _ = SinkSpec::LogFile { path: path.clone() }
            .connect(0)
            .ok()
            .unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn log_file_shorter_than_the_cursor_is_corrupt_with_a_byte_offset() {
        let path = scratch("corrupt");
        std::fs::write(&path, "one\ntwo\n").unwrap();
        let spec = SinkSpec::LogFile { path: path.clone() };
        match spec.connect(5) {
            Err(ConnectError::Corrupt { offset, detail }) => {
                assert_eq!(offset, 8);
                assert!(detail.contains("2 acknowledged lines"));
                assert!(detail.contains("expects 5"));
            }
            _ => panic!("expected a corrupt delivery log"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn memory_sink_truncates_and_reports_corruption() {
        let key = "delivery_unit_memory";
        reset_memory_sink(key);
        let spec = SinkSpec::Memory { key: key.into() };
        let mut target = spec.connect(0).ok().unwrap();
        target.deliver("a", Duration::from_millis(10)).unwrap();
        target.deliver("b", Duration::from_millis(10)).unwrap();
        assert_eq!(memory_sink_contents(key), vec!["a", "b"]);
        // Reconnect at cursor 1 discards the unacknowledged suffix.
        let _ = spec.connect(1).ok().unwrap();
        assert_eq!(memory_sink_contents(key), vec!["a"]);
        match spec.connect(7) {
            Err(ConnectError::Corrupt { offset, detail }) => {
                assert_eq!(offset, 2);
                assert!(detail.contains("expects 7"));
            }
            _ => panic!("expected a corrupt memory sink"),
        }
        reset_memory_sink(key);
    }

    #[test]
    fn unregistered_endpoints_fail_transiently() {
        let spec = SinkSpec::Endpoint {
            address: "never-registered".into(),
        };
        match spec.connect(0) {
            Err(ConnectError::Transient(message)) => {
                assert!(message.contains("no transport registered"));
            }
            _ => panic!("expected a transient connect failure"),
        }
    }

    #[test]
    fn outbox_overflow_policies_count_exactly() {
        let policy = RetryPolicy::default();
        let mut sub = DurableSub::new(0, SinkSpec::Discard, 2, SinkOverflow::DropOldest);
        for line in ["a", "b", "c"] {
            sub.enqueue(line.into(), &policy);
        }
        assert_eq!(sub.dropped, 1);
        assert_eq!(sub.outbox, ["b", "c"]);

        let mut sub = DurableSub::new(0, SinkSpec::Discard, 2, SinkOverflow::DropNewest);
        for line in ["a", "b", "c"] {
            sub.enqueue(line.into(), &policy);
        }
        assert_eq!(sub.dropped, 1);
        assert_eq!(sub.outbox, ["a", "b"]);

        // Block drains inline against a healthy destination: nothing drops.
        let mut sub = DurableSub::new(0, SinkSpec::Discard, 2, SinkOverflow::Block);
        for line in ["a", "b", "c", "d", "e"] {
            sub.enqueue(line.into(), &policy);
        }
        assert_eq!(sub.dropped, 0);
        sub.drain(&policy, true);
        assert_eq!(sub.cursor, 5);
        assert_eq!(sub.routed, 5);
        assert_eq!(sub.lag(), 0);
    }

    #[test]
    fn the_state_machine_degrades_quarantines_and_recovers() {
        static FAILURES_LEFT: AtomicU64 = AtomicU64::new(0);
        struct Flaky;
        impl Transport for Flaky {
            fn send(&mut self, _line: &str, _timeout: Duration) -> Result<(), String> {
                if FAILURES_LEFT.load(Ordering::SeqCst) > 0 {
                    FAILURES_LEFT.fetch_sub(1, Ordering::SeqCst);
                    Err("flaky endpoint refused the line".into())
                } else {
                    Ok(())
                }
            }
        }
        let address = "delivery_unit_flaky";
        register_endpoint(address, |_| Ok(Box::new(Flaky)));
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            attempt_timeout_ms: 10,
        };
        let mut sub = DurableSub::new(
            0,
            SinkSpec::Endpoint {
                address: address.into(),
            },
            8,
            SinkOverflow::Block,
        );

        // Two failures then success: Active → Degraded → Active (recovery).
        FAILURES_LEFT.store(2, Ordering::SeqCst);
        sub.enqueue("x".into(), &policy);
        sub.drain(&policy, false);
        assert_eq!(sub.status, DeliveryStatus::Degraded { failures: 1 });
        sub.drain(&policy, false);
        assert_eq!(sub.status, DeliveryStatus::Degraded { failures: 2 });
        sub.drain(&policy, false);
        assert_eq!(sub.status, DeliveryStatus::Active);
        assert_eq!((sub.cursor, sub.recoveries), (1, 1));
        assert!(sub.retries >= 2);

        // Enough failures to exhaust the budget: quarantined, then a probe
        // (backoff cap is 0, so it is due immediately) recovers it.
        FAILURES_LEFT.store(3, Ordering::SeqCst);
        sub.enqueue("y".into(), &policy);
        sub.drain(&policy, false);
        sub.drain(&policy, false);
        sub.drain(&policy, false);
        assert!(matches!(sub.status, DeliveryStatus::Quarantined { .. }));
        assert_eq!(sub.cursor, 1);
        sub.drain(&policy, false);
        assert_eq!(sub.status, DeliveryStatus::Active);
        assert_eq!((sub.cursor, sub.recoveries), (2, 2));
        clear_endpoint(address);
    }

    #[test]
    fn cursors_round_trip_and_restore_on_probation() {
        let mut sub = DurableSub::new(3, SinkSpec::Discard, 4, SinkOverflow::DropOldest);
        let policy = RetryPolicy::default();
        sub.enqueue("a".into(), &policy);
        sub.drain(&policy, false);
        sub.enqueue("b".into(), &policy);
        sub.status = DeliveryStatus::Quarantined {
            reason: "down".into(),
        };
        let cursor = sub.to_cursor(7);
        assert_eq!(cursor.query, 7);
        assert_eq!(cursor.token, 3);
        assert_eq!(cursor.cursor, 1);
        assert_eq!(cursor.routed, 2);
        assert_eq!(cursor.outbox, vec!["b".to_owned()]);
        let json = serde_json::to_string(&cursor).unwrap();
        let back: DeliveryCursor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cursor);
        let restored = DurableSub::from_cursor(&back);
        assert_eq!(restored.status, DeliveryStatus::Active);
        assert_eq!(restored.cursor, 1);
        assert_eq!(restored.outbox, ["b"]);
    }
}
