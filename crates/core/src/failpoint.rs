//! Deterministic fault injection for the chaos suite.
//!
//! The engine's failure-containment machinery (supervised shard workers,
//! sink quarantine, bounded backpressured channels — see ARCHITECTURE.md's
//! "Failure model") is only trustworthy if the failures it contains can be
//! *produced on demand, deterministically*. This module compiles named
//! failure sites into the hot paths:
//!
//! | site             | where it fires                                   |
//! |------------------|--------------------------------------------------|
//! | `ingest-front`   | entry of every engine ingest call                |
//! | `shard-worker`   | shard worker, entry of each routed batch         |
//! | `join-climb`     | shard worker, per routed match before the climb  |
//! | `expiry-sweep`   | shard worker, before an expiry sweep             |
//! | `sink-delivery`  | engine, before each subscriber sink delivery     |
//! | `delivery-retry` | durable drain, before each delivery attempt      |
//! | `delivery-ack`   | durable drain, between delivery and cursor advance |
//!
//! Sites are indexed (`fire_at(site, index)`) so a test can target *shard 2
//! of 4* or *subscription token 1* specifically. Each armed site fires
//! exactly once, after a configurable number of hits — runs are
//! deterministic and replayable, which is what lets `tests/chaos.rs` pin
//! exact match multisets under injected faults.
//!
//! Everything here is gated behind the `failpoints` cargo feature. With the
//! feature off (the default) [`fire_at`] is an `#[inline(always)]` constant
//! `false` and the configuration API does not exist, so production builds
//! carry no registry, no locking and no branch history — zero cost.
//!
//! ```ignore
//! // In a test built with `--features failpoints`:
//! streamworks_core::failpoint::configure(
//!     "shard-worker", 1, streamworks_core::failpoint::FailAction::Panic, 3,
//! );
//! // ... drive the engine; shard 1 dies on its 4th routed batch ...
//! streamworks_core::failpoint::clear();
//! ```

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// What an armed site does when it fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FailAction {
        /// Panic at the site (caught by the supervising `catch_unwind`
        /// where one exists; a plain panic otherwise).
        Panic,
        /// Make [`super::fire_at`] return `true`: the site reports a
        /// non-panic failure (e.g. a sink delivery error).
        Error,
        /// Sleep this many milliseconds at the site (exercises backpressure
        /// on the bounded channels without killing anything).
        Delay(u64),
    }

    #[derive(Debug)]
    struct Site {
        action: FailAction,
        /// Hits to let through before firing.
        after: u64,
        hits: u64,
        fired: bool,
    }

    type Registry = Mutex<HashMap<(&'static str, usize), Site>>;

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Arms `site`/`index`: the `(after + 1)`-th hit performs `action`.
    /// Re-configuring a site resets its hit count.
    pub fn configure(site: &'static str, index: usize, action: FailAction, after: u64) {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                (site, index),
                Site {
                    action,
                    after,
                    hits: 0,
                    fired: false,
                },
            );
    }

    /// Disarms every site and forgets all hit counts. Call between chaos
    /// scenarios (and in test teardown) so armed faults never leak across
    /// `#[test]` boundaries.
    pub fn clear() {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Hits recorded at `site`/`index` since it was configured (0 for
    /// never-configured sites — unconfigured hits are not counted).
    pub fn hits(site: &'static str, index: usize) -> u64 {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(site, index))
            .map_or(0, |s| s.hits)
    }

    /// Derives one deterministic fault from `seed` over `sites` and arms
    /// it, returning what was armed: the seed picks the site, the action
    /// (cycling panic → error → delay) and how many hits to let through
    /// first. The same seed always arms the same fault, so a failing chaos
    /// scenario is replayable from its seed alone.
    pub fn arm_seeded(
        seed: u64,
        sites: &[(&'static str, usize)],
    ) -> (&'static str, usize, FailAction, u64) {
        assert!(!sites.is_empty(), "arm_seeded needs candidate sites");
        let (site, index) = sites[(seed % sites.len() as u64) as usize];
        let action = match (seed / sites.len() as u64) % 3 {
            0 => FailAction::Panic,
            1 => FailAction::Error,
            _ => FailAction::Delay(1 + seed % 5),
        };
        let after = (seed / 7) % 5;
        configure(site, index, action, after);
        (site, index, action, after)
    }

    /// The hook compiled into each site. Returns `true` when an armed
    /// [`FailAction::Error`] fires; panics for [`FailAction::Panic`];
    /// sleeps then returns `false` for [`FailAction::Delay`]. Each armed
    /// site fires at most once.
    pub fn fire_at(site: &'static str, index: usize) -> bool {
        let action = {
            let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
            let Some(s) = map.get_mut(&(site, index)) else {
                return false;
            };
            s.hits += 1;
            if s.fired || s.hits <= s.after {
                return false;
            }
            s.fired = true;
            s.action
            // The lock drops here: never panic or sleep while holding it.
        };
        match action {
            FailAction::Panic => panic!("failpoint `{site}` (index {index}) injected panic"),
            FailAction::Error => true,
            FailAction::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                false
            }
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{arm_seeded, clear, configure, fire_at, hits, FailAction};

/// The hook compiled into each site: with the `failpoints` feature off it
/// is a constant `false` the optimizer erases.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn fire_at(_site: &'static str, _index: usize) -> bool {
    false
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; serialize the tests that touch it so
    // one test's `clear()` cannot disarm another's sites mid-flight.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_sites_never_fire() {
        let _guard = TEST_LOCK.lock().unwrap();
        assert!(!fire_at("nowhere", 0));
        assert_eq!(hits("nowhere", 0), 0);
    }

    #[test]
    fn error_sites_fire_once_after_the_configured_count() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear();
        configure("err-site", 2, FailAction::Error, 2);
        assert!(!fire_at("err-site", 2)); // hit 1
        assert!(!fire_at("err-site", 2)); // hit 2
        assert!(fire_at("err-site", 2)); // hit 3: fires
        assert!(!fire_at("err-site", 2)); // one-shot
        assert_eq!(hits("err-site", 2), 4);
        assert!(!fire_at("err-site", 3), "other indexes stay disarmed");
        clear();
    }

    #[test]
    fn seeded_arming_is_deterministic() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear();
        let sites: &[(&'static str, usize)] = &[("a", 0), ("b", 1), ("c", 0)];
        let first = arm_seeded(12345, sites);
        clear();
        let second = arm_seeded(12345, sites);
        assert_eq!(first, second);
        clear();
    }
}
