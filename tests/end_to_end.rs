//! End-to-end integration tests across all crates: the two application
//! scenarios of paper §5 (cyber security, news monitoring) plus multi-query
//! registration, plan-quality comparison and metric sanity.

use streamworks::baseline::verify_assignment;
use streamworks::query::QueryEdgeId;
use streamworks::workloads::queries::{
    labelled_news_query, news_triple_query, port_scan_query, smurf_ddos_query, worm_spread_query,
};
use streamworks::workloads::{
    AttackKind, CyberConfig, CyberTrafficGenerator, NewsConfig, NewsStreamGenerator,
};
use streamworks::{
    ContinuousQueryEngine, Duration, DynamicGraph, EngineConfig, SelectivityOrdered, TreeShapeKind,
};

#[test]
fn cyber_attacks_are_detected_with_ground_truth_recall() {
    let workload = CyberTrafficGenerator::new(CyberConfig {
        background_edges: 4_000,
        attacks: vec![
            (AttackKind::SmurfDdos, 4),
            (AttackKind::PortScan, 5),
            (AttackKind::WormSpread, 3),
        ],
        ..Default::default()
    })
    .generate();

    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let smurf = engine
        .register_query(smurf_ddos_query(4, Duration::from_mins(5)))
        .unwrap();
    let scan = engine
        .register_query(port_scan_query(5, Duration::from_mins(1)))
        .unwrap();
    let worm = engine
        .register_query(worm_spread_query(2, Duration::from_mins(10)))
        .unwrap();

    let events = engine.ingest(&workload.events).unwrap();

    for attack in &workload.attacks {
        let qid = match attack.kind {
            AttackKind::SmurfDdos => smurf,
            AttackKind::PortScan => scan,
            AttackKind::WormSpread => worm,
        };
        let detected = events
            .iter()
            .any(|e| e.query == qid.id() && e.bindings.iter().any(|b| b.key == attack.attacker));
        assert!(
            detected,
            "attack {:?} by {} not detected",
            attack.kind, attack.attacker
        );
    }
}

#[test]
fn news_bursts_are_detected_and_matches_verify() {
    let workload = NewsStreamGenerator::new(NewsConfig {
        articles: 600,
        planted_events: vec![("politics".into(), 3), ("accident".into(), 3)],
        ..Default::default()
    })
    .generate();

    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let politics = engine
        .register_query(labelled_news_query("politics", Duration::from_mins(30)))
        .unwrap();
    let accident = engine
        .register_query(labelled_news_query("accident", Duration::from_mins(30)))
        .unwrap();

    // Mirror the stream into an unbounded graph for independent verification
    // (the engine's own graph may expire edges past the retention horizon).
    let mut reference = DynamicGraph::unbounded();
    let mut all_events = Vec::new();
    for ev in &workload.events {
        reference.ingest(ev);
        all_events.extend(engine.ingest(ev).unwrap());
    }

    // Every planted burst is found by its labelled query.
    for planted in &workload.planted {
        let hit = all_events.iter().any(|e| {
            e.binding("k")
                .map(|b| b.key == planted.keyword)
                .unwrap_or(false)
                && e.binding("l")
                    .map(|b| b.key == planted.location)
                    .unwrap_or(false)
        });
        assert!(hit, "planted burst {} not detected", planted.keyword);
    }

    // Every emitted match verifies independently against the reference graph.
    for event in &all_events {
        let query = if event.query == politics.id() {
            labelled_news_query("politics", Duration::from_mins(30))
        } else {
            assert_eq!(event.query, accident.id());
            labelled_news_query("accident", Duration::from_mins(30))
        };
        let assignment: Vec<(QueryEdgeId, streamworks::EdgeId)> = event
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| (QueryEdgeId(i), *e))
            .collect();
        verify_assignment(&reference, &query, &assignment)
            .unwrap_or_else(|err| panic!("match failed verification: {err:?}"));
    }
}

#[test]
fn selectivity_plan_stores_fewer_partial_matches_than_blind_plan() {
    // Skewed news stream: mentions are ~3x more frequent than located edges,
    // so a plan that starts from located edges stores fewer partials. The
    // stream and window are kept small because the frequency-blind plan's
    // partial-match population grows combinatorially (which is the point).
    let workload = NewsStreamGenerator::new(NewsConfig {
        articles: 350,
        planted_events: vec![],
        ..Default::default()
    })
    .generate();
    let query = news_triple_query(Duration::from_mins(10));

    // Warm-up pass to build statistics, then register with/without them.
    let mut warm = ContinuousQueryEngine::builder().build().unwrap();
    for ev in &workload.events {
        warm.ingest(ev).unwrap();
    }

    // Statistics-driven plan on a fresh engine seeded with the learned stats:
    // we emulate that by planning against the warm engine's summary.
    let informed_plan = streamworks::Planner::new()
        .with_statistics(warm.summary(), warm.graph())
        .plan_with(
            query.clone(),
            &SelectivityOrdered {
                max_primitive_size: 1,
            },
        )
        .unwrap();
    let blind_plan = streamworks::Planner::new()
        .plan_with(query.clone(), &streamworks::query::LeftDeepEdgeChain)
        .unwrap();

    let run = |plan: streamworks::QueryPlan| -> streamworks::QueryMetrics {
        let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
        let id = engine.register_plan(plan);
        for ev in &workload.events {
            engine.ingest(ev).unwrap();
        }
        engine.metrics(id).unwrap()
    };
    let informed = run(informed_plan);
    let blind = run(blind_plan);

    // Both plans find the same complete matches...
    assert_eq!(informed.complete_matches, blind.complete_matches);
    // ...but the informed plan materialises fewer partial matches.
    assert!(
        informed.partial_matches_inserted <= blind.partial_matches_inserted,
        "informed {} vs blind {}",
        informed.partial_matches_inserted,
        blind.partial_matches_inserted
    );
}

#[test]
fn multiple_strategies_and_tree_kinds_agree_on_results() {
    let workload = NewsStreamGenerator::new(NewsConfig {
        articles: 250,
        planted_events: vec![("politics".into(), 3)],
        ..Default::default()
    })
    .generate();
    let query = labelled_news_query("politics", Duration::from_mins(30));

    let mut counts = Vec::new();
    for (strategy, kind) in [
        (
            SelectivityOrdered {
                max_primitive_size: 2,
            },
            TreeShapeKind::LeftDeep,
        ),
        (
            SelectivityOrdered {
                max_primitive_size: 1,
            },
            TreeShapeKind::LeftDeep,
        ),
        (
            SelectivityOrdered {
                max_primitive_size: 1,
            },
            TreeShapeKind::Balanced,
        ),
    ] {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let id = engine
            .register_query_with(query.clone(), &strategy, kind)
            .unwrap();
        let events = engine.ingest(&workload.events).unwrap();
        counts.push((events.len(), engine.metrics(id).unwrap().complete_matches));
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "counts differ: {counts:?}"
    );
    assert!(counts[0].0 > 0, "expected at least one match");
}

#[test]
fn engine_sustains_multi_query_load_with_bounded_state() {
    // Spread the stream over a couple of hours of stream time so it far
    // exceeds every query window and edge expiry actually kicks in.
    let workload = CyberTrafficGenerator::new(CyberConfig {
        background_edges: 8_000,
        edge_interval: Duration::from_millis(500),
        attacks: vec![(AttackKind::SmurfDdos, 4)],
        ..Default::default()
    })
    .generate();

    let mut engine = ContinuousQueryEngine::new(EngineConfig {
        prune_every: 64,
        ..Default::default()
    });
    let ids = vec![
        engine
            .register_query(smurf_ddos_query(4, Duration::from_mins(2)))
            .unwrap(),
        engine
            .register_query(port_scan_query(4, Duration::from_secs(30)))
            .unwrap(),
        engine
            .register_query(worm_spread_query(2, Duration::from_mins(2)))
            .unwrap(),
        engine
            .register_dsl(
                "QUERY dns_pair WINDOW 60s MATCH (a:IP)-[:dns]->(x:IP), (b:IP)-[:dns]->(x)",
            )
            .unwrap(),
    ];
    for ev in &workload.events {
        engine.ingest(ev).unwrap();
    }
    // The stream spans hours while the windows are minutes: partial-match
    // populations must stay far below the number of processed edges.
    for id in ids {
        let m = engine.metrics(id).unwrap();
        assert!(m.edges_processed as usize >= workload.events.len());
        assert!(
            (m.partial_matches_live as usize) < workload.events.len() / 4,
            "query {id:?} holds {} live partial matches",
            m.partial_matches_live
        );
    }
    // The 2-minute retention keeps only a small suffix of the stream live.
    assert!(engine.graph().live_edge_count() < workload.events.len() / 2);
    assert!(engine.graph_stats().expired_edges > 0);
}
