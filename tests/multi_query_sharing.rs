//! Equivalence pin for the multi-query sharing layer.
//!
//! The contract of the canonical primitive index is that sharing is
//! *invisible* except in throughput: for an overlapping template registry,
//! the engine with `shared_matching(true)` (the default) reports exactly the
//! same per-query match multiset as the engine with sharing disabled, as one
//! independent engine per query, and for any shard count — including under
//! register → pause → resume → deregister churn. These tests pin that
//! contract on the multi-tenant template workload the subsystem exists for,
//! and check the dedup counters tell the truth about the sharing that
//! happened.

use std::collections::BTreeMap;
use streamworks::workloads::{MultiTenantGenerator, NewsConfig, TenantConfig};
use streamworks::{
    ContinuousQueryEngine, Duration, EdgeEvent, MatchEvent, QueryGraph, QueryHandle,
};

/// Canonical multiset of matches: how often each (query name, data-edge
/// assignment) was reported. A count map also catches duplicated or missing
/// reports of the same embedding.
fn multiset(events: &[MatchEvent]) -> BTreeMap<(String, Vec<u64>), usize> {
    let mut out = BTreeMap::new();
    for ev in events {
        let edges: Vec<u64> = ev.edges.iter().map(|e| e.0).collect();
        *out.entry((ev.query_name.clone(), edges)).or_insert(0) += 1;
    }
    out
}

fn tenant_workload(tenants: usize) -> (Vec<QueryGraph>, Vec<EdgeEvent>) {
    let workload = MultiTenantGenerator::new(TenantConfig {
        tenants,
        window: Duration::from_mins(30),
        news: NewsConfig {
            articles: 220,
            seed: 11,
            ..Default::default()
        },
        ..Default::default()
    })
    .generate();
    (workload.queries, workload.events)
}

fn build_engine(shared: bool, shards: usize) -> ContinuousQueryEngine {
    ContinuousQueryEngine::builder()
        .shared_matching(shared)
        .shards(shards)
        .build()
        .unwrap()
}

fn run(
    queries: &[QueryGraph],
    events: &[EdgeEvent],
    shared: bool,
    shards: usize,
    batch: usize,
) -> (Vec<MatchEvent>, Vec<u64>) {
    let mut engine = build_engine(shared, shards);
    let handles: Vec<QueryHandle> = queries
        .iter()
        .map(|q| engine.register_query(q.clone()).unwrap())
        .collect();
    let mut matches = Vec::new();
    for chunk in events.chunks(batch) {
        matches.extend(engine.ingest(chunk).unwrap());
    }
    let counts = handles
        .iter()
        .map(|h| engine.metrics(*h).unwrap().complete_matches)
        .collect();
    (matches, counts)
}

#[test]
fn sharing_reports_the_same_per_query_multiset_for_any_shard_count() {
    let (queries, events) = tenant_workload(6);

    // Reference: sharing off, single-threaded.
    let (reference, ref_counts) = run(&queries, &events, false, 1, 64);
    let expected = multiset(&reference);
    assert!(
        !expected.is_empty(),
        "the template workload must produce matches"
    );
    // Every template kind matched somewhere (labelled pairs and co-location
    // pairs both appear in the reference).
    assert!(expected.keys().any(|(name, _)| name.ends_with("_pair")));
    assert!(expected.keys().any(|(name, _)| name.ends_with("_coloc")));

    for shards in [1usize, 2, 4] {
        let (shared, counts) = run(&queries, &events, true, shards, 64);
        assert_eq!(
            multiset(&shared),
            expected,
            "sharing on, shards={shards} must match the per-query reference"
        );
        assert_eq!(counts, ref_counts, "per-query counts, shards={shards}");
    }
}

#[test]
fn sharing_matches_one_engine_per_query() {
    let (queries, events) = tenant_workload(4);
    let (all_matches, _) = run(&queries, &events, true, 1, 128);
    let shared_multiset = multiset(&all_matches);

    // One completely independent engine per query.
    let mut independent = BTreeMap::new();
    for q in &queries {
        let (matches, _) = run(std::slice::from_ref(q), &events, false, 1, 128);
        for (k, v) in multiset(&matches) {
            *independent.entry(k).or_insert(0) += v;
        }
    }
    assert_eq!(shared_multiset, independent);
}

#[test]
fn sharing_survives_lifecycle_churn() {
    let (queries, events) = tenant_workload(6);
    let (third, two_thirds) = (events.len() / 3, 2 * events.len() / 3);

    // Drive two engines — sharing on and off — through the same lifecycle
    // schedule: some tenants pause mid-stream, one deregisters, a late
    // tenant registers, a paused one resumes.
    let drive = |shared: bool| -> (Vec<MatchEvent>, Vec<u64>) {
        let mut engine = build_engine(shared, 1);
        let mut handles: Vec<QueryHandle> = queries[..8]
            .iter()
            .map(|q| engine.register_query(q.clone()).unwrap())
            .collect();
        let mut matches = Vec::new();
        for chunk in events[..third].chunks(32) {
            matches.extend(engine.ingest(chunk).unwrap());
        }
        engine.pause(handles[0]).unwrap();
        engine.pause(handles[5]).unwrap();
        engine.deregister(handles[3]).unwrap();
        for chunk in events[third..two_thirds].chunks(32) {
            matches.extend(engine.ingest(chunk).unwrap());
        }
        engine.resume(handles[0]).unwrap();
        for q in &queries[8..10] {
            handles.push(engine.register_query(q.clone()).unwrap());
        }
        for chunk in events[two_thirds..].chunks(32) {
            matches.extend(engine.ingest(chunk).unwrap());
        }
        let counts = handles
            .iter()
            .filter_map(|h| engine.metrics(*h).ok())
            .map(|m| m.complete_matches)
            .collect();
        (matches, counts)
    };

    let (with_sharing, shared_counts) = drive(true);
    let (without_sharing, plain_counts) = drive(false);
    assert_eq!(multiset(&with_sharing), multiset(&without_sharing));
    assert_eq!(shared_counts, plain_counts);
}

#[test]
fn dedup_counters_tell_the_truth() {
    // Leaf layer only (the PR 5 configuration, pinned): with the subtree
    // layer disabled every leaf of every query subscribes to the canonical
    // primitive index.
    let (queries, events) = tenant_workload(8);
    let mut engine = ContinuousQueryEngine::builder()
        .subtree_sharing(false)
        .lifted_sharing(false)
        .shards(1)
        .build()
        .unwrap();
    for q in &queries {
        engine.register_query(q.clone()).unwrap();
    }
    // 16 queries built from 2 templates over a 4-label pool: the distinct
    // primitive count stays far below the subscription count.
    let m = engine.engine_metrics();
    assert!(m.subscribed_primitives >= 16);
    assert!(
        m.distinct_primitives * 2 <= m.subscribed_primitives,
        "dedup ratio at least 2x: {m:?}"
    );
    assert!(m.dedup_ratio() >= 2.0);
    assert!(engine.sharing_active());
    // The subtree layer is off: nothing interned there.
    assert_eq!(m.distinct_subtrees, 0);
    assert_eq!(m.subscribed_subtrees, 0);

    engine.ingest(&events[..events.len().min(2_000)]).unwrap();
    let m = engine.engine_metrics();
    assert!(m.shared_searches_run > 0);
    assert!(
        m.searches_saved > m.shared_searches_run,
        "with a >2x dedup ratio, most searches are saved: {m:?}"
    );
    assert!(m.search_savings_rate() > 0.5);

    // Deregistering everything empties the index.
    for h in engine.handles() {
        engine.deregister(h).unwrap();
    }
    let m = engine.engine_metrics();
    assert_eq!(m.distinct_primitives, 0);
    assert_eq!(m.subscribed_primitives, 0);
    assert!(!engine.sharing_active());
}

#[test]
fn subtree_counters_tell_the_truth() {
    // Default configuration: subtree sharing plus predicate-constant lifting.
    // The labelled pair templates (eq("label", …) predicates, identical shape
    // across all four labels) collapse into lifted subtree entries served by
    // constant dispatch; the unlabelled co-location template has no constants
    // to lift and stays on the leaf-level primitive index.
    let (queries, events) = tenant_workload(8);
    let mut engine = build_engine(true, 1);
    for q in &queries {
        engine.register_query(q.clone()).unwrap();
    }
    let m = engine.engine_metrics();
    // Labelled pairs land on the subtree layer; lifting folds the four label
    // variants together, so distinct entries ≪ subscriptions. (The very
    // first pair query only *advertises* its form — entries are created cold
    // when a second query proves the shape recurs — so of the 8 pairs, 7
    // subscribe and the advertiser stays on the leaf path.)
    assert!(m.subscribed_subtrees >= 7, "{m:?}");
    assert!(
        m.distinct_subtrees * 2 <= m.subscribed_subtrees,
        "subtree dedup ratio at least 2x: {m:?}"
    );
    assert!(m.subtree_dedup_ratio() >= 2.0);
    // The co-location leaves still share through the primitive index.
    assert!(m.subscribed_primitives >= 8, "{m:?}");
    assert!(
        m.distinct_primitives * 2 <= m.subscribed_primitives,
        "{m:?}"
    );
    assert!(engine.sharing_active());

    engine.ingest(&events[..events.len().min(4_000)]).unwrap();
    let m = engine.engine_metrics();
    // The planted per-label bursts produce pair matches, and every one of
    // them reaches its tenant through a lifted entry's constant dispatch.
    assert!(m.lifted_dispatch_hits > 0, "{m:?}");
    // The co-location leaf still proves leaf-level savings.
    assert!(m.shared_searches_run > 0, "{m:?}");
    assert!(m.searches_saved > 0, "{m:?}");

    // Deregistering everything empties both layers.
    for h in engine.handles() {
        engine.deregister(h).unwrap();
    }
    let m = engine.engine_metrics();
    assert_eq!(m.distinct_subtrees, 0);
    assert_eq!(m.subscribed_subtrees, 0);
    assert_eq!(m.distinct_primitives, 0);
    assert_eq!(m.subscribed_primitives, 0);
    assert!(!engine.sharing_active());
}

#[test]
fn checkpoint_restore_re_interns_the_index() {
    let (queries, events) = tenant_workload(4);
    let mut engine = build_engine(true, 1);
    for q in &queries {
        engine.register_query(q.clone()).unwrap();
    }
    let split = events.len() / 2;
    let mut direct = engine.ingest(&events[..split]).unwrap();

    let checkpoint = engine.checkpoint();
    let mut restored = ContinuousQueryEngine::from_checkpoint(&checkpoint);
    // The index is rebuilt by re-registration: same dedup structure.
    let before = engine.engine_metrics();
    let after = restored.engine_metrics();
    assert_eq!(after.distinct_primitives, before.distinct_primitives);
    assert_eq!(after.subscribed_primitives, before.subscribed_primitives);
    assert!(restored.sharing_active());

    // And the restored engine keeps matching exactly like the original.
    // Edge ids are renumbered by the restore's replay, so matches are
    // compared by their (query, stream time, bound external keys) identity.
    let by_keys = |events: &[MatchEvent]| -> BTreeMap<(String, i64, Vec<String>), usize> {
        let mut out = BTreeMap::new();
        for ev in events {
            let mut keys: Vec<String> = ev
                .bindings
                .iter()
                .map(|b| format!("{}={}", b.variable, b.key))
                .collect();
            keys.sort_unstable();
            *out.entry((ev.query_name.clone(), ev.at.0, keys))
                .or_insert(0) += 1;
        }
        out
    };
    direct.clear();
    direct.extend(engine.ingest(&events[split..]).unwrap());
    let resumed = restored.ingest(&events[split..]).unwrap();
    assert_eq!(by_keys(&direct), by_keys(&resumed));
}

#[test]
fn disjoint_registries_bypass_the_shared_path() {
    // Queries with no structural overlap anywhere: the engine must stay on
    // the classic dispatch (sharing_active false) while still interning the
    // primitives for later overlap.
    let mut engine = build_engine(true, 1);
    engine
        .register_dsl("QUERY a WINDOW 1h MATCH (x:IP)-[:flow]->(y:IP)")
        .unwrap();
    engine
        .register_dsl("QUERY b WINDOW 1h MATCH (u:User)-[:login]->(h:IP)")
        .unwrap();
    assert!(!engine.sharing_active());
    let m = engine.engine_metrics();
    assert_eq!(m.distinct_primitives, 2);
    assert_eq!(m.subscribed_primitives, 2);

    // A third query overlapping the first flips the engine onto the shared
    // path; deregistering it flips back.
    let c = engine
        .register_dsl("QUERY c WINDOW 1h MATCH (p:IP)-[:flow]->(q:IP)")
        .unwrap();
    assert!(engine.sharing_active());
    engine.deregister(c).unwrap();
    assert!(!engine.sharing_active());
}
