//! Query lifecycle: registration, pause/resume, deregistration, stale
//! handles, and the release of partial-match memory.
//!
//! These tests exercise the service-object contract of the engine: a query
//! can be registered, matched against, paused, resumed and deregistered at
//! runtime; after deregistration its join-store memory is gone (observed
//! through the engine's live partial-match accounting) and its handle is
//! permanently stale.

use streamworks::query::{QueryGraphBuilder, SelectivityOrdered};
use streamworks::{
    ContinuousQueryEngine, CountingSink, Duration, EdgeEvent, QueryGraph, Timestamp, TreeShapeKind,
};

fn ev(src: &str, dst: &str, dt: &str, et: &str, t: i64) -> EdgeEvent {
    EdgeEvent::new(src, "Article", dst, dt, et, Timestamp::from_secs(t))
}

fn keyword_pair(window_secs: i64) -> QueryGraph {
    QueryGraphBuilder::new("keyword_pair")
        .window(Duration::from_secs(window_secs))
        .vertex("a1", "Article")
        .vertex("a2", "Article")
        .vertex("k", "Keyword")
        .edge("a1", "mentions", "k")
        .edge("a2", "mentions", "k")
        .build()
        .unwrap()
}

fn location_pair(window_secs: i64) -> QueryGraph {
    QueryGraphBuilder::new("location_pair")
        .window(Duration::from_secs(window_secs))
        .vertex("a1", "Article")
        .vertex("a2", "Article")
        .vertex("l", "Location")
        .edge("a1", "located", "l")
        .edge("a2", "located", "l")
        .build()
        .unwrap()
}

/// Registers with single-edge primitives so the SJ-Tree genuinely stores
/// partial matches (a 2-edge primitive would collapse the pair query into one
/// leaf emitting complete matches directly).
fn register_storing(
    engine: &mut ContinuousQueryEngine,
    query: QueryGraph,
) -> streamworks::QueryHandle {
    engine
        .register_query_with(
            query,
            &SelectivityOrdered {
                max_primitive_size: 1,
            },
            TreeShapeKind::LeftDeep,
        )
        .unwrap()
}

#[test]
fn full_lifecycle_register_match_pause_resume_deregister() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let keywords = register_storing(&mut engine, keyword_pair(3_600));

    // Matched against while running.
    engine
        .ingest(&ev("a1", "k1", "Keyword", "mentions", 10))
        .unwrap();
    let matched = engine
        .ingest(&ev("a2", "k1", "Keyword", "mentions", 20))
        .unwrap();
    assert_eq!(matched.len(), 2);

    // Paused: the event is not routed, so nothing matches and the matcher
    // never even sees the edge.
    engine.pause(keywords).unwrap();
    assert!(engine.is_paused(keywords).unwrap());
    let edges_before = engine.metrics(keywords).unwrap().edges_processed;
    let while_paused = engine
        .ingest(&ev("a3", "k1", "Keyword", "mentions", 30))
        .unwrap();
    assert!(while_paused.is_empty());
    assert_eq!(
        engine.metrics(keywords).unwrap().edges_processed,
        edges_before,
        "paused queries cost zero per-event work"
    );

    // Resumed: later events match again (the edge streamed past while paused
    // is gone, as for a late-registered query).
    engine.resume(keywords).unwrap();
    assert!(!engine.is_paused(keywords).unwrap());
    let resumed = engine
        .ingest(&ev("a4", "k1", "Keyword", "mentions", 40))
        .unwrap();
    assert_eq!(
        resumed.len(),
        4,
        "a4 pairs with a1, a2 (a3 was never indexed)"
    );

    // Deregistered: gone for good.
    engine.deregister(keywords).unwrap();
    assert_eq!(engine.query_count(), 0);
    assert!(engine
        .ingest(&ev("a5", "k1", "Keyword", "mentions", 50))
        .unwrap()
        .is_empty());
}

#[test]
fn deregistration_releases_partial_match_memory_and_stops_matches() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let keywords = register_storing(&mut engine, keyword_pair(3_600));
    let locations = register_storing(&mut engine, location_pair(3_600));

    // Distinct keywords / locations: plenty of partial matches, no complete
    // ones.
    for i in 0..100 {
        engine
            .ingest(&ev(
                &format!("a{i}"),
                &format!("k{i}"),
                "Keyword",
                "mentions",
                i,
            ))
            .unwrap();
        engine
            .ingest(&ev(
                &format!("a{i}"),
                &format!("p{i}"),
                "Location",
                "located",
                i,
            ))
            .unwrap();
    }
    let keyword_live = engine.metrics(keywords).unwrap().partial_matches_live;
    let location_live = engine.metrics(locations).unwrap().partial_matches_live;
    assert!(keyword_live > 0 && location_live > 0);
    assert_eq!(
        engine.live_partial_matches(),
        keyword_live + location_live,
        "engine-wide accounting sums the per-query join stores"
    );

    // Deregistering the keyword query frees its join-store slots immediately:
    // the engine-wide figure drops to exactly the location query's share.
    engine.deregister(keywords).unwrap();
    assert_eq!(engine.live_partial_matches(), location_live);
    assert_eq!(engine.query_count(), 1);

    // The deregistered query reports no further matches; the survivor still
    // works.
    let out = engine
        .ingest(&[
            ev("b1", "shared", "Keyword", "mentions", 200),
            ev("b2", "shared", "Keyword", "mentions", 201),
            ev("b1", "paris", "Location", "located", 202),
            ev("b2", "paris", "Location", "located", 203),
        ])
        .unwrap();
    assert!(out.iter().all(|m| m.query == locations.id()));
    assert_eq!(out.len(), 2);
}

#[test]
fn pause_resume_round_trip_is_equivalent_to_never_pausing() {
    let events: Vec<EdgeEvent> = (0..200)
        .map(|i| {
            ev(
                &format!("a{}", i % 20),
                &format!("k{}", i % 5),
                "Keyword",
                "mentions",
                i,
            )
        })
        .collect();

    let mut plain = ContinuousQueryEngine::builder().build().unwrap();
    register_storing(&mut plain, keyword_pair(60));
    let mut toggled = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_storing(&mut toggled, keyword_pair(60));

    let mut plain_matches = Vec::new();
    let mut toggled_matches = Vec::new();
    for (i, event) in events.iter().enumerate() {
        plain_matches.extend(plain.ingest(event).unwrap());
        // Pause and immediately resume between every few events: no event is
        // ever routed while paused, so the round trip must be invisible.
        if i % 7 == 0 {
            toggled.pause(handle).unwrap();
            toggled.resume(handle).unwrap();
        }
        toggled_matches.extend(toggled.ingest(event).unwrap());
    }
    assert!(!plain_matches.is_empty());
    assert_eq!(plain_matches.len(), toggled_matches.len());
    let sig = |m: &streamworks::MatchEvent| {
        let mut e: Vec<u64> = m.edges.iter().map(|e| e.0).collect();
        e.sort_unstable();
        e
    };
    assert_eq!(
        plain_matches.iter().map(sig).collect::<Vec<_>>(),
        toggled_matches.iter().map(sig).collect::<Vec<_>>()
    );
}

#[test]
fn stale_handles_error_cleanly_everywhere() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = engine.register_query(keyword_pair(60)).unwrap();
    let (sink, _count) = CountingSink::new();
    let subscription = engine.subscribe(handle, sink).unwrap();
    engine.deregister(handle).unwrap();

    assert!(engine.plan(handle).is_err());
    assert!(engine.metrics(handle).is_err());
    assert!(engine.matcher(handle).is_err());
    assert!(engine.pause(handle).is_err());
    assert!(engine.resume(handle).is_err());
    assert!(engine.is_paused(handle).is_err());
    assert!(engine.deregister(handle).is_err(), "double deregistration");
    assert!(engine
        .replan(
            handle,
            &SelectivityOrdered::default(),
            TreeShapeKind::LeftDeep
        )
        .is_err());
    let (sink2, _c2) = CountingSink::new();
    assert!(engine.subscribe(handle, sink2).is_err());
    assert!(
        engine.unsubscribe(subscription).is_err(),
        "subscriptions died with the query"
    );

    // A new registration re-occupies the freed slot under a new generation:
    // the generation tag is what keeps the old handle stale.
    let fresh = engine.register_query(keyword_pair(60)).unwrap();
    assert_eq!(fresh.id(), handle.id(), "slot is recycled, not appended");
    assert_ne!(fresh, handle);
    assert!(engine.metrics(handle).is_err());
    assert!(engine.metrics(fresh).is_ok());

    // The recycled query matches like any other, and its match events carry
    // the *new* occupant's handle — a consumer routing by handle can never
    // misattribute them to the retired tenant that shared the id.
    engine
        .ingest(&ev("r1", "k1", "Keyword", "mentions", 1_000))
        .unwrap();
    let matched = engine
        .ingest(&ev("r2", "k1", "Keyword", "mentions", 1_001))
        .unwrap();
    assert_eq!(matched.len(), 2);
    assert!(matched.iter().all(|m| m.query == fresh.id()));
    assert!(matched.iter().all(|m| m.handle() == fresh));
    assert!(matched.iter().all(|m| m.handle() != handle));
}

#[test]
fn register_deregister_churn_keeps_slot_table_bounded() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let keep = engine.register_query(location_pair(60)).unwrap();
    let mut last = None;
    for _ in 0..100 {
        let h = engine.register_query(keyword_pair(60)).unwrap();
        engine.deregister(h).unwrap();
        if let Some(prev) = last {
            assert_ne!(h, prev, "each occupancy gets a distinct handle");
        }
        assert_eq!(h.id().0, 1, "the same slot is recycled every round");
        last = Some(h);
    }
    assert_eq!(engine.query_count(), 1);
    assert_eq!(engine.handles(), vec![keep]);
}

#[test]
fn handles_enumerate_live_queries_in_registration_order() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let first = engine.register_query(keyword_pair(60)).unwrap();
    let second = engine.register_query(location_pair(60)).unwrap();
    let third = engine.register_query(keyword_pair(120)).unwrap();
    assert_eq!(engine.handles(), vec![first, second, third]);

    engine.deregister(second).unwrap();
    assert_eq!(engine.handles(), vec![first, third]);
    assert_eq!(engine.query_count(), 2);

    // all_metrics follows the same order and skips the dead slot.
    let metrics = engine.all_metrics();
    assert_eq!(metrics.len(), 2);
    assert_eq!(metrics[0].0, first);
    assert_eq!(metrics[1].0, third);
}
