//! Verifies the zero-allocation guarantee of the matcher hot path: once a
//! store's lazy index is flushed, join-key probes (`MatchStore::candidates`)
//! and binding merges (`Binding::merge`) perform no heap allocation for
//! paper-sized queries. Uses a counting global allocator, so this test lives
//! in its own integration-test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

use streamworks::engine::{MatchStore, PartialMatch};
use streamworks::query::{QueryEdgeId, QueryVertexId};
use streamworks::{EdgeId, Timestamp, VertexId};

fn pair_match(a: u32, b: u32, edge: u64, ts: i64) -> PartialMatch {
    let mut m = PartialMatch::seed(
        4,
        QueryEdgeId(edge as usize % 4),
        EdgeId(edge),
        Timestamp::from_secs(ts),
    );
    assert!(m.binding.bind(QueryVertexId(0), VertexId(a)));
    assert!(m.binding.bind(QueryVertexId(1), VertexId(b)));
    m
}

#[test]
fn probe_path_is_allocation_free() {
    let mut store = MatchStore::new(vec![QueryVertexId(0), QueryVertexId(1)]);
    for i in 0..256u32 {
        store.insert(pair_match(i % 16, 100 + i % 8, i as u64, i as i64));
    }
    // First probe flushes the lazy index (this may allocate buckets).
    assert!(store.candidates(&[VertexId(3), VertexId(103)]).count() > 0);

    // Steady state: key projection + probe + candidate iteration must not
    // touch the allocator.
    let before = allocations();
    let mut hits = 0usize;
    for i in 0..16u32 {
        hits += store
            .candidates(&[VertexId(i), VertexId(100 + (i % 8))])
            .count();
    }
    assert_eq!(
        allocations(),
        before,
        "MatchStore::candidates allocated on the probe path"
    );
    assert!(hits > 0, "the probes must actually find candidates");
}

#[test]
fn binding_merge_is_allocation_free_for_inline_queries() {
    let left = pair_match(1, 101, 0, 10);
    let mut right = PartialMatch::seed(4, QueryEdgeId(1), EdgeId(9), Timestamp::from_secs(11));
    assert!(right.binding.bind(QueryVertexId(1), VertexId(101)));
    assert!(right.binding.bind(QueryVertexId(2), VertexId(202)));

    // Warm up (lazily initialised runtime bits must not pollute the count).
    assert!(left.binding.merge(&right.binding).is_some());

    let before = allocations();
    for _ in 0..1_000 {
        let merged = left
            .binding
            .merge(&right.binding)
            .expect("compatible bindings");
        assert_eq!(merged.bound_count(), 3);
        let full = left.merge(&right).expect("compatible matches");
        assert_eq!(full.edge_count(), 2);
    }
    assert_eq!(
        allocations(),
        before,
        "Binding/PartialMatch merge allocated for an inline-sized query"
    );
}

#[test]
fn partial_match_clone_is_allocation_free_for_inline_queries() {
    let m = pair_match(1, 101, 0, 10);
    let before = allocations();
    for _ in 0..1_000 {
        let c = m.clone();
        assert_eq!(c.edge_count(), 1);
    }
    assert_eq!(
        allocations(),
        before,
        "PartialMatch::clone allocated for an inline-sized query"
    );
}
