//! Verifies the zero-allocation guarantee of the unified matcher hot path:
//! once a [`SharedJoinStore`]'s bucket map, side vectors and expiry heap are
//! warm, the `probe_then_insert` join step (key projection, bucket lookup,
//! contiguous sibling scan, merge in the probe closure, insert into spare
//! capacity) and binding merges perform no heap allocation for paper-sized
//! queries. Uses a counting global allocator, so this test lives in its own
//! integration-test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

use streamworks::engine::{JoinSide, PartialMatch, SharedJoinStore};
use streamworks::query::{QueryEdgeId, QueryVertexId};
use streamworks::{EdgeId, Timestamp, VertexId};

fn pair_match(a: u32, b: u32, edge: u64, ts: i64) -> PartialMatch {
    let mut m = PartialMatch::seed(
        4,
        QueryEdgeId(edge as usize % 4),
        EdgeId(edge),
        Timestamp::from_secs(ts),
    );
    assert!(m.binding.bind(QueryVertexId(0), VertexId(a)));
    assert!(m.binding.bind(QueryVertexId(1), VertexId(b)));
    m
}

/// Files `m` on `side`, returning how many sibling candidates were probed.
fn file(store: &mut SharedJoinStore, side: JoinSide, m: PartialMatch) -> usize {
    let key = store.join_key_for(&m).expect("pair matches bind the key");
    let mut probed = 0usize;
    store.probe_then_insert(side, key, m, |m, candidate| {
        probed += 1;
        // The merge every real probe performs; both matches bind the same
        // key vertices, so the merge must succeed.
        assert!(m.binding.merge(&candidate.binding).is_some());
    });
    probed
}

#[test]
fn probe_then_insert_is_allocation_free_once_warm() {
    let mut store = SharedJoinStore::new(vec![QueryVertexId(0), QueryVertexId(1)]);

    // Warm-up: 16 keys, 8 matches per side per key (timestamps 0..8), so the
    // bucket map, both side vectors of every bucket and the expiry heap all
    // have backing capacity.
    for ts in 0..8i64 {
        for k in 0..16u32 {
            file(
                &mut store,
                JoinSide::Left,
                pair_match(k, 100 + k, (ts as u64) * 32 + k as u64, ts),
            );
            file(
                &mut store,
                JoinSide::Right,
                pair_match(k, 100 + k, (ts as u64) * 32 + 16 + k as u64, ts),
            );
        }
    }
    // Expire the older half: the sweep's `Vec::retain` compacts each side in
    // place, so every side keeps 4 matches plus 4 elements of spare capacity,
    // and the heap keeps its backing storage.
    let removed = store.expire_older_than(Timestamp::from_secs(4));
    assert_eq!(removed, 128);
    assert_eq!(store.len(), 128);

    // Steady state: key projection + single-hash-op probe + contiguous
    // sibling scan + candidate merge + push into the sides' spare capacity
    // must not touch the allocator.
    let before = allocations();
    let mut hits = 0usize;
    for i in 0..16u32 {
        hits += file(
            &mut store,
            JoinSide::Right,
            pair_match(i, 100 + i, 500 + i as u64, 10 + i as i64),
        );
    }
    assert_eq!(
        allocations(),
        before,
        "SharedJoinStore::probe_then_insert allocated on the warm probe path"
    );
    assert_eq!(hits, 64, "every probe scans its key's 4 left candidates");
}

#[test]
fn exact_expiry_is_allocation_free() {
    // The heap-scheduled expiry must not allocate either: pops shrink the
    // heap in place and the per-side sweeps retain-compact the bucket
    // vectors without reallocating. One full insert-and-drain cycle warms
    // every capacity, then the measured sweep runs against it.
    let mut store = SharedJoinStore::new(vec![QueryVertexId(0), QueryVertexId(1)]);
    for i in 0..128u32 {
        file(
            &mut store,
            JoinSide::Left,
            pair_match(i, 200 + i, i as u64, i as i64),
        );
    }
    store.expire_older_than(Timestamp::from_secs(1_000_000));
    for i in 0..128u32 {
        file(
            &mut store,
            JoinSide::Left,
            pair_match(i, 200 + i, i as u64, 2_000_000 + i as i64),
        );
    }
    let before = allocations();
    let removed = store.expire_older_than(Timestamp::from_secs(2_000_064));
    assert_eq!(
        allocations(),
        before,
        "SharedJoinStore::expire_older_than allocated during the sweep"
    );
    assert_eq!(removed, 64, "the min-heap sweep is exact");
    assert_eq!(store.len(), 64);
}

#[test]
fn binding_merge_is_allocation_free_for_inline_queries() {
    let left = pair_match(1, 101, 0, 10);
    let mut right = PartialMatch::seed(4, QueryEdgeId(1), EdgeId(9), Timestamp::from_secs(11));
    assert!(right.binding.bind(QueryVertexId(1), VertexId(101)));
    assert!(right.binding.bind(QueryVertexId(2), VertexId(202)));

    // Warm up (lazily initialised runtime bits must not pollute the count).
    assert!(left.binding.merge(&right.binding).is_some());

    let before = allocations();
    for _ in 0..1_000 {
        let merged = left
            .binding
            .merge(&right.binding)
            .expect("compatible bindings");
        assert_eq!(merged.bound_count(), 3);
        let full = left.merge(&right).expect("compatible matches");
        assert_eq!(full.edge_count(), 2);
    }
    assert_eq!(
        allocations(),
        before,
        "Binding/PartialMatch merge allocated for an inline-sized query"
    );
}

#[test]
fn partial_match_clone_is_allocation_free_for_inline_queries() {
    let m = pair_match(1, 101, 0, 10);
    let before = allocations();
    for _ in 0..1_000 {
        let c = m.clone();
        assert_eq!(c.edge_count(), 1);
    }
    assert_eq!(
        allocations(),
        before,
        "PartialMatch::clone allocated for an inline-sized query"
    );
}
