//! Integration tests of the summarization → selectivity → planning pipeline
//! (paper §4.1/§4.3) on generated workloads, plus trace round-tripping through
//! the full engine.

use streamworks::query::{QueryEdgeId, SelectivityEstimator, SelectivityOrdered};
use streamworks::workloads::queries::{news_triple_query, smurf_ddos_query};
use streamworks::workloads::{
    read_trace, write_trace, CyberConfig, CyberTrafficGenerator, NewsConfig, NewsStreamGenerator,
};
use streamworks::{ContinuousQueryEngine, Duration, Planner};

/// Feeds a workload through an engine purely to accumulate statistics.
fn summarize_stream(events: &[streamworks::EdgeEvent]) -> ContinuousQueryEngine {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    for ev in events {
        engine.ingest(ev).unwrap();
    }
    engine
}

#[test]
fn summary_ranks_rare_news_edges_below_frequent_ones() {
    let workload = NewsStreamGenerator::new(NewsConfig {
        articles: 800,
        planted_events: vec![],
        ..Default::default()
    })
    .generate();
    let engine = summarize_stream(&workload.events);
    let query = news_triple_query(Duration::from_mins(30));
    let estimator = SelectivityEstimator::with_summary(engine.summary(), engine.graph());

    // Edge 0 is a mention (frequent), edge 3 is a located edge (rarer: one per
    // article vs. up to four mentions).
    let mention = estimator.edge_cardinality(&query, QueryEdgeId(0));
    let located = estimator.edge_cardinality(&query, QueryEdgeId(3));
    assert!(
        located < mention,
        "located ({located}) should be rarer than mentions ({mention})"
    );

    // Consequently the statistics-driven plan starts from a primitive that
    // contains a located edge.
    let plan = Planner::new()
        .with_statistics(engine.summary(), engine.graph())
        .plan_with(query.clone(), &SelectivityOrdered::default())
        .unwrap();
    let first_leaf = &plan.primitives[0];
    let has_located = first_leaf
        .edges
        .iter()
        .any(|&e| query.edge(e).etype.as_deref() == Some("located"));
    assert!(
        has_located,
        "first primitive {:?} should contain a located edge",
        first_leaf.edges
    );
}

#[test]
fn cyber_summary_reflects_live_window_population() {
    let workload = CyberTrafficGenerator::new(CyberConfig {
        background_edges: 5_000,
        edge_interval: Duration::from_millis(200),
        attacks: vec![],
        ..Default::default()
    })
    .generate();
    // Register a query with a short window so retention (and thus summary
    // retraction) kicks in.
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    engine
        .register_query(smurf_ddos_query(3, Duration::from_mins(1)))
        .unwrap();
    for ev in &workload.events {
        engine.ingest(ev).unwrap();
    }
    let flow = engine.graph().edge_type_id("flow").unwrap();
    let live_flow_edges = engine.graph().edges().filter(|e| e.etype == flow).count() as u64;
    // The summary's live count tracks the graph's live count exactly (both are
    // updated on ingest and on expiry).
    assert_eq!(engine.summary().types().edge_count(flow), live_flow_edges);
    assert!(engine.graph_stats().expired_edges > 0);
}

#[test]
fn degree_skew_is_visible_in_summary_histograms() {
    let workload = CyberTrafficGenerator::new(CyberConfig {
        hosts: 300,
        background_edges: 6_000,
        attacks: vec![],
        ..Default::default()
    })
    .generate();
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    for ev in &workload.events {
        engine.ingest(ev).unwrap();
    }
    let mut summary = engine.summary().clone();
    summary.resample_degrees(engine.graph());
    let hist = summary.degrees().histogram();
    assert!(hist.count() > 0);
    // Power-law traffic: the maximum degree is far above the median.
    let median = hist.quantile(0.5).unwrap();
    let max = hist.max().unwrap();
    assert!(
        max > 4 * median.max(1),
        "expected hub-skewed degrees, median {median} max {max}"
    );
}

#[test]
fn traces_round_trip_through_the_engine() {
    let workload = NewsStreamGenerator::new(NewsConfig {
        articles: 300,
        planted_events: vec![("politics".into(), 3)],
        ..Default::default()
    })
    .generate();

    // Write to an in-memory trace and read back.
    let mut buf = Vec::new();
    write_trace(&mut buf, &workload.events).unwrap();
    let replayed = read_trace(buf.as_slice()).unwrap();
    assert_eq!(replayed.len(), workload.events.len());

    // The replayed stream produces exactly the same matches as the original.
    let run = |events: &[streamworks::EdgeEvent]| -> Vec<String> {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(streamworks::workloads::queries::labelled_news_query(
                "politics",
                Duration::from_mins(30),
            ))
            .unwrap();
        let mut out: Vec<String> = Vec::new();
        for ev in events {
            for m in engine.ingest(ev).unwrap() {
                out.push(m.render());
            }
        }
        out
    };
    assert_eq!(run(&workload.events), run(&replayed));
}
