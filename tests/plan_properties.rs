//! Property-based tests of the planner: for arbitrary connected query graphs,
//! every decomposition strategy must produce a valid edge partition and every
//! constructed SJ-Tree must satisfy the structural properties of paper §3.2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamworks::query::{
    validate_decomposition, BalancedPairs, DecompositionStrategy, LeftDeepEdgeChain, Planner,
    SelectivityOrdered, SjTreeShape, TreeShapeKind,
};
use streamworks::{Duration, QueryGraph, QueryGraphBuilder};

/// Builds a random connected query graph from a compact description.
///
/// `extra_edges[i] = (a, b, t)` adds an edge between vertices `a % n` and
/// `b % n` of type `t`; a spanning path over the first `n` vertices guarantees
/// connectivity.
fn build_query(n_vertices: usize, extra_edges: &[(u8, u8, u8)], window: i64) -> QueryGraph {
    let types = ["Host", "User", "Service"];
    let etypes = ["flow", "login", "uses"];
    let mut b = QueryGraphBuilder::new("random").window(Duration::from_secs(window));
    for i in 0..n_vertices {
        b = b.vertex(&format!("v{i}"), types[i % types.len()]);
    }
    // Spanning path keeps the query connected.
    for i in 1..n_vertices {
        b = b.edge(
            &format!("v{}", i - 1),
            etypes[i % etypes.len()],
            &format!("v{i}"),
        );
    }
    for &(a, eb, t) in extra_edges {
        let src = format!("v{}", a as usize % n_vertices);
        let dst = format!("v{}", eb as usize % n_vertices);
        if src == dst {
            continue;
        }
        b = b.edge(&src, etypes[t as usize % etypes.len()], &dst);
    }
    b.build().expect("constructed query is valid")
}

/// Draws a random `(a, b, t)` extra-edge list for [`build_query`].
fn random_extra(rng: &mut StdRng, max_len: usize) -> Vec<(u8, u8, u8)> {
    let len = rng.gen_range(0..max_len);
    (0..len)
        .map(|_| {
            (
                rng.gen_range(0..8u8),
                rng.gen_range(0..8u8),
                rng.gen_range(0..3u8),
            )
        })
        .collect()
}

#[test]
fn strategies_produce_valid_partitions_and_trees() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..64 {
        let n_vertices = rng.gen_range(2usize..8);
        let extra = random_extra(&mut rng, 6);
        let window = rng.gen_range(10i64..10_000);
        let query = build_query(n_vertices, &extra, window);
        let strategies: Vec<Box<dyn DecompositionStrategy>> = vec![
            Box::new(SelectivityOrdered {
                max_primitive_size: 1,
            }),
            Box::new(SelectivityOrdered {
                max_primitive_size: 2,
            }),
            Box::new(SelectivityOrdered {
                max_primitive_size: 3,
            }),
            Box::new(LeftDeepEdgeChain),
            Box::new(BalancedPairs),
        ];
        for strategy in strategies {
            let est = streamworks::query::SelectivityEstimator::without_summary();
            let primitives = strategy.decompose(&query, &est).unwrap();
            validate_decomposition(&query, &primitives).unwrap();

            // Both tree shapes satisfy the paper's structural properties.
            for shape in [
                SjTreeShape::left_deep(&query, &primitives).unwrap(),
                SjTreeShape::balanced(&query, &primitives).unwrap(),
            ] {
                shape.validate(&query).unwrap();
                // The root covers every query edge (property 1).
                assert_eq!(shape.node(shape.root()).edges.len(), query.edge_count());
                // Leaves are exactly the primitives, in order.
                assert_eq!(shape.leaves().len(), primitives.len());
                for (leaf, prim) in shape.leaves().iter().zip(&primitives) {
                    assert_eq!(&shape.node(*leaf).edges, &prim.edges);
                }
                // Sibling/join-key consistency: siblings share the same join key,
                // and the key is a subset of both siblings' vertex sets.
                for node in shape.nodes() {
                    if let Some(sib) = shape.sibling(node.id) {
                        assert_eq!(shape.join_key(node.id), shape.join_key(sib));
                        for v in shape.join_key(node.id) {
                            assert!(node.vertices.contains(v));
                            assert!(shape.node(sib).vertices.contains(v));
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn planner_end_to_end_on_random_queries() {
    let mut rng = StdRng::seed_from_u64(0xFACADE);
    for _ in 0..64 {
        let n_vertices = rng.gen_range(2usize..7);
        let extra = random_extra(&mut rng, 5);
        let query = build_query(n_vertices, &extra, 300);
        for kind in [TreeShapeKind::LeftDeep, TreeShapeKind::Balanced] {
            let plan = Planner::new().tree_kind(kind).plan(query.clone()).unwrap();
            plan.shape.validate(&plan.query).unwrap();
            assert_eq!(plan.edge_estimates.len(), query.edge_count());
            assert!(plan.shape.height() <= query.edge_count() + 1);
            // Explain output mentions every query variable.
            let explain = plan.explain();
            for v in query.vertices() {
                assert!(explain.contains(&v.name));
            }
        }
    }
}

#[test]
fn dsl_round_trip_preserves_plannability() {
    // Parse → format → parse → plan should work for a representative query.
    let text = r#"
        QUERY roundtrip WINDOW 10m
        MATCH (a:Host)-[:flow]->(b:Host)-[:flow]->(c:Host),
              (u:User)-[:login]->(a)
        WHERE u.privileged = true
    "#;
    let q1 = streamworks::parse_query(text).unwrap();
    let q2 = streamworks::parse_query(&streamworks::query::format_query(&q1)).unwrap();
    assert_eq!(q1.edge_count(), q2.edge_count());
    assert_eq!(q1.vertex_count(), q2.vertex_count());
    let plan = Planner::new().plan(q2).unwrap();
    plan.shape.validate(&plan.query).unwrap();
}
