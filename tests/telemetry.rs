//! End-to-end pipeline observability through the public facade.
//!
//! Pins the contract of the telemetry layer: sampled per-stage latency
//! histograms cover every stage a run actually exercises, trace spans land
//! in the rings keyed by sampled sequence numbers, the exported snapshot
//! renders in both text formats, enabling telemetry changes *no* matching
//! observable (counters and match multisets are bit-identical to a run with
//! it off, at every shard count), a quarantined subscription's reported lag
//! tracks the live outbox, and stage counters survive checkpoint/restore.
//!
//! The sharded scenarios use the 4-edge labelled news query: SJ-Tree leaves
//! are ~2-edge subgraph primitives, so a 1–2 edge query is a single-leaf
//! plan whose embeddings complete on the driver — only larger queries give
//! the shard workers join work to measure.

use std::collections::BTreeMap;

use streamworks::engine::EngineCheckpoint;
use streamworks::workloads::queries::labelled_news_query;
use streamworks::workloads::{NewsConfig, NewsStreamGenerator};
use streamworks::{
    clear_endpoint, reset_memory_sink, ContinuousQueryEngine, Duration, EdgeEvent, MatchEvent,
    QueryHandle, QueryMetrics, RetryPolicy, SinkSpec, TelemetryLevel, TelemetrySnapshot, Timestamp,
};

const PAIR_DSL: &str = "QUERY pair WINDOW 1h \
     MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)";

const STAGES: [&str; 7] = [
    "ingest_front",
    "local_search",
    "join_climb",
    "shard_routing",
    "fan_in_drain",
    "expiry_sweep",
    "delivery_flush",
];

fn news_events() -> Vec<EdgeEvent> {
    NewsStreamGenerator::new(NewsConfig {
        articles: 600,
        planted_events: vec![("politics".into(), 3)],
        seed: 5,
        ..Default::default()
    })
    .generate()
    .events
}

fn sampled_engine(shards: usize, level: TelemetryLevel) -> (ContinuousQueryEngine, QueryHandle) {
    let mut engine = ContinuousQueryEngine::builder()
        .shards(shards)
        .telemetry_level(level)
        .telemetry_sample_every(1)
        .build()
        .unwrap();
    let handle = engine
        .register_query(labelled_news_query("politics", Duration::from_mins(30)))
        .unwrap();
    (engine, handle)
}

fn multiset(events: &[MatchEvent]) -> BTreeMap<(String, Vec<u64>), usize> {
    let mut out = BTreeMap::new();
    for ev in events {
        let edges: Vec<u64> = ev.edges.iter().map(|e| e.0).collect();
        *out.entry((ev.query_name.clone(), edges)).or_insert(0) += 1;
    }
    out
}

fn stage_counts(snap: &TelemetrySnapshot) -> BTreeMap<String, u64> {
    snap.stages
        .iter()
        .map(|s| (s.name.clone(), s.count))
        .collect()
}

/// The acceptance run: sharded matching plus durable delivery plus an
/// explicit prune exercises every pipeline stage, and each one must report
/// observations with non-zero quantiles.
#[test]
fn sharded_durable_run_activates_every_stage() {
    let key = "telemetry-all-stages";
    reset_memory_sink(key);
    let (mut engine, handle) = sampled_engine(2, TelemetryLevel::Sampled);
    engine
        .subscribe_durable(
            handle,
            SinkSpec::Memory {
                key: key.to_owned(),
            },
        )
        .unwrap();

    let events = news_events();
    let mut matches = Vec::new();
    for chunk in events.chunks(256) {
        matches.extend(engine.ingest(chunk).unwrap());
    }
    assert!(!matches.is_empty(), "the stream must produce matches");
    // Advance stream time past the window and force a sweep so expiry work
    // is actually performed.
    let last = events.last().unwrap().timestamp;
    engine
        .ingest(&EdgeEvent::new(
            "late",
            "Article",
            "k-late",
            "Keyword",
            "mentions",
            Timestamp::from_micros(last.as_micros() + 4 * 3_600_000_000),
        ))
        .unwrap();
    engine.prune_now();
    engine.flush_deliveries();

    let snap = engine.telemetry_snapshot();
    assert_eq!(snap.level, "sampled");
    assert_eq!(snap.sample_every, 1);
    let names: Vec<&str> = snap.stages.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, STAGES, "every stage is always listed, in order");
    for stage in &snap.stages {
        assert!(stage.count > 0, "stage `{}` recorded nothing", stage.name);
        assert!(stage.p50_ns > 0, "stage `{}` has zero p50", stage.name);
        assert!(stage.p99_ns > 0, "stage `{}` has zero p99", stage.name);
        assert!(
            stage.p50_ns <= stage.p99_ns,
            "quantiles are monotone for `{}`",
            stage.name
        );
        assert!(stage.sum_ns >= stage.count, "each observation is >= 1ns");
        assert!(stage.min_ns <= stage.max_ns);
    }

    // Work actually reached the shard workers (and its routing balance is a
    // meaningful ratio).
    let set = &snap.shards[0];
    assert!(
        set.shards.iter().map(|s| s.items_routed).sum::<u64>() > 0,
        "embeddings were routed to workers"
    );
    assert!(set.skew >= 1.0, "skew is max/mean: {}", set.skew);

    // Spans: the rings hold recent sampled work, keyed by event seq, with
    // real durations and recognised stage names.
    assert!(!snap.spans.is_empty(), "spans recorded");
    for span in &snap.spans {
        assert!(
            STAGES.contains(&span.stage.as_str()),
            "unknown span stage `{}`",
            span.stage
        );
        assert!(
            span.duration_ns > 0,
            "span `{}` has no duration",
            span.stage
        );
        assert!(
            span.shard >= -1 && span.shard < 2,
            "span shard {} out of range",
            span.shard
        );
    }
    assert!(
        snap.spans.windows(2).all(|w| w[0].seq <= w[1].seq),
        "spans are seq-sorted"
    );
    assert!(
        snap.spans.iter().any(|s| s.shard == -1),
        "driver-side spans present"
    );
    assert!(
        snap.spans.iter().any(|s| s.shard >= 0),
        "worker-side spans present"
    );

    // Both export formats include the histogram series.
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE streamworks_stage_latency_ns histogram"));
    for stage in STAGES {
        assert!(
            prom.contains(&format!("stage=\"{stage}\"")),
            "`{stage}` exported: {prom}"
        );
    }
    assert!(prom.contains("streamworks_shard_skew"));
    let json = snap.to_json();
    let doc = serde_json::parse(&json).unwrap();
    assert_eq!(
        doc.get_field("stages")
            .and_then(|v| v.as_array())
            .map(<[_]>::len),
        Some(STAGES.len())
    );
    reset_memory_sink(key);
}

/// Matching is observably identical with telemetry off and on, at 1, 2 and
/// 4 shards, under lifecycle churn — every `QueryMetrics` counter and the
/// full match multiset agree with the reference run.
#[test]
fn counters_and_matches_are_invariant_under_telemetry_and_shards() {
    fn churn_run(shards: usize, level: TelemetryLevel) -> (Vec<MatchEvent>, QueryMetrics) {
        let (mut engine, handle) = sampled_engine(shards, level);
        let events = news_events();
        let (first, rest) = events.split_at(events.len() / 2);
        let (mid, last) = rest.split_at(rest.len() / 2);

        let mut matches = Vec::new();
        for chunk in first.chunks(128) {
            matches.extend(engine.ingest(chunk).unwrap());
        }
        engine.pause(handle).unwrap();
        assert!(
            engine.ingest(mid).unwrap().is_empty(),
            "paused sees nothing"
        );
        engine.resume(handle).unwrap();
        for chunk in last.chunks(128) {
            matches.extend(engine.ingest(chunk).unwrap());
        }
        let metrics = engine.metrics(handle).unwrap();
        engine.deregister(handle).unwrap();
        assert_eq!(engine.live_partial_matches(), 0);
        (matches, metrics)
    }

    let (ref_matches, ref_metrics) = churn_run(1, TelemetryLevel::Off);
    assert!(ref_metrics.complete_matches > 0, "churn run must match");
    let expected = multiset(&ref_matches);
    for shards in [1usize, 2, 4] {
        for level in [TelemetryLevel::Off, TelemetryLevel::Sampled] {
            let (matches, metrics) = churn_run(shards, level);
            assert_eq!(
                multiset(&matches),
                expected,
                "match multiset at shards={shards} level={level:?}"
            );
            assert_eq!(
                metrics.complete_matches, ref_metrics.complete_matches,
                "complete_matches at shards={shards} level={level:?}"
            );
            assert_eq!(
                metrics.edges_processed, ref_metrics.edges_processed,
                "edges_processed at shards={shards} level={level:?}"
            );
        }
        // At a fixed shard count the *entire* counter struct must be
        // identical with sampling on and off: the sampled matching path is
        // the same algorithm, only timed.
        let (_, off) = churn_run(shards, TelemetryLevel::Off);
        let (_, on) = churn_run(shards, TelemetryLevel::Sampled);
        assert_eq!(off, on, "full QueryMetrics at shards={shards}");
    }
}

/// The delivery snapshot's `lag` is computed from the live outbox, so a
/// quarantined subscription's lag keeps growing as matches keep routing to
/// it — it is not a stale copy from quarantine time.
#[test]
fn quarantined_subscription_lag_tracks_the_live_outbox() {
    let address = "telemetry-unreachable";
    clear_endpoint(address); // never registered: every connect fails
    let mut engine = ContinuousQueryEngine::builder()
        .telemetry_level(TelemetryLevel::Sampled)
        .telemetry_sample_every(1)
        .retry_policy(RetryPolicy::none())
        .build()
        .unwrap();
    let handle = engine.register_dsl(PAIR_DSL).unwrap();
    engine
        .subscribe_durable(
            handle,
            SinkSpec::Endpoint {
                address: address.to_owned(),
            },
        )
        .unwrap();

    let events: Vec<EdgeEvent> = (0..24)
        .map(|i| {
            EdgeEvent::new(
                format!("a{i}"),
                "Article",
                format!("k{}", i % 2),
                "Keyword",
                "mentions",
                Timestamp::from_secs(i as i64),
            )
        })
        .collect();
    let (first, second) = events.split_at(events.len() / 2);
    engine.ingest(first).unwrap();
    engine.flush_deliveries();
    let snap = engine.telemetry_snapshot();
    assert_eq!(snap.delivery.len(), 1);
    let before = snap.delivery[0].clone();
    assert_eq!(
        before.status, "quarantined",
        "one strike under RetryPolicy::none"
    );
    assert_eq!(before.target, format!("endpoint:{address}"));
    assert!(before.lag > 0, "undelivered matches show as lag");

    engine.ingest(second).unwrap();
    let snap = engine.telemetry_snapshot();
    let after = &snap.delivery[0];
    assert_eq!(after.status, "quarantined");
    assert!(
        after.lag > before.lag,
        "lag is live: {} then {}",
        before.lag,
        after.lag
    );
    assert_eq!(
        after.lag,
        engine.metrics(handle).unwrap().cursor_lag,
        "snapshot lag agrees with the per-query metric"
    );
    clear_endpoint(address);
}

/// Stage counters survive checkpoint/restore: the replay itself is not
/// re-measured on the driver, and the captured histogram is folded back in,
/// so a single-threaded engine restores to bit-identical stage counts.
#[test]
fn stage_counters_survive_checkpoint_restore() {
    let (mut single, _handle) = sampled_engine(1, TelemetryLevel::Sampled);
    for chunk in news_events().chunks(256) {
        single.ingest(chunk).unwrap();
    }
    let captured = stage_counts(&single.telemetry_snapshot());
    assert!(captured.values().any(|&c| c > 0), "run recorded stages");

    // Round-trip through JSON to also pin the checkpoint serialisation of
    // the telemetry payload.
    let json = EngineCheckpoint::capture(&single).to_json().unwrap();
    let restored = EngineCheckpoint::from_json(&json).unwrap().restore();
    assert_eq!(
        stage_counts(&restored.telemetry_snapshot()),
        captured,
        "single-threaded restore is exact"
    );

    // Sharded: workers re-measure their replayed climbs, so counts may only
    // grow — never shrink, never reset.
    let (mut sharded, _h) = sampled_engine(2, TelemetryLevel::Sampled);
    for chunk in news_events().chunks(256) {
        sharded.ingest(chunk).unwrap();
    }
    let captured = stage_counts(&sharded.telemetry_snapshot());
    let restored = EngineCheckpoint::capture(&sharded).restore();
    for (stage, count) in stage_counts(&restored.telemetry_snapshot()) {
        assert!(
            count >= captured[&stage],
            "stage `{stage}` shrank across restore: {} -> {count}",
            captured[&stage]
        );
    }
}

/// Telemetry `Off` is genuinely off: the snapshot still carries counters,
/// queries, shards and delivery state, but no histograms and no spans.
#[test]
fn off_level_reports_counters_but_no_samples() {
    let (mut engine, handle) = sampled_engine(2, TelemetryLevel::Off);
    for chunk in news_events().chunks(256) {
        engine.ingest(chunk).unwrap();
    }
    let snap = engine.telemetry_snapshot();
    assert_eq!(snap.level, "off");
    assert!(snap.stages.is_empty(), "no histograms when off");
    assert!(snap.spans.is_empty(), "no spans when off");
    assert!(snap.events_ingested > 0);
    assert_eq!(snap.queries.len(), 1);
    assert_eq!(snap.shards.len(), 1, "shard skew is counter-derived");
    assert!(snap.shards[0].skew >= 1.0, "skew: {}", snap.shards[0].skew);
    assert!(
        engine.metrics(handle).unwrap().complete_matches > 0,
        "matching unaffected"
    );
    // The exports still render the counter series.
    let prom = snap.to_prometheus();
    assert!(prom.contains("streamworks_events_ingested_total"));
    assert!(!prom.contains("streamworks_stage_latency_ns_bucket"));
}
