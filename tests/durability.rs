//! End-to-end durable delivery through the public facade.
//!
//! No fault injection here — `tests/chaos.rs` (behind `--features
//! failpoints`) covers crashes and retry storms. These scenarios run in the
//! default feature set and pin the happy-path contract: serialisable sinks,
//! acknowledged cursors across checkpoint/restore, exact overflow
//! accounting, and subscription recovery on a restored engine.

use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use streamworks::engine::EngineCheckpoint;
use streamworks::{
    clear_endpoint, memory_sink_contents, register_endpoint, reset_memory_sink,
    ContinuousQueryEngine, EdgeEvent, MatchEvent, QueryHandle, SinkOverflow, SinkSpec,
    SubscriptionHealth, Timestamp, Transport,
};

const PAIR_DSL: &str = "QUERY pair WINDOW 1h \
     MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)";

fn register_pair(engine: &mut ContinuousQueryEngine) -> QueryHandle {
    engine.register_dsl(PAIR_DSL).unwrap()
}

fn stream(n: usize, collisions: usize) -> Vec<EdgeEvent> {
    (0..n)
        .map(|i| {
            EdgeEvent::new(
                format!("a{i}"),
                "Article",
                format!("k{}", i % collisions),
                "Keyword",
                "mentions",
                Timestamp::from_secs(i as i64),
            )
        })
        .collect()
}

fn renders(matches: &[MatchEvent]) -> Vec<String> {
    matches.iter().map(MatchEvent::render).collect()
}

fn scratch_log(name: &str) -> String {
    let dir = std::env::temp_dir().join("sw_durability_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}_{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path.to_string_lossy().into_owned()
}

#[test]
fn a_log_file_sink_resumes_after_restore_without_duplicates_or_losses() {
    let path = scratch_log("resume");
    let events = stream(24, 3);

    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    engine
        .subscribe_durable(handle, SinkSpec::LogFile { path: path.clone() })
        .unwrap();
    let mut expected = Vec::new();
    for chunk in events[..12].chunks(4) {
        expected.extend(engine.ingest(chunk).unwrap());
    }
    assert_eq!(engine.flush_deliveries(), 0);
    let json = engine.checkpoint().to_json().unwrap();
    drop(engine); // "shutdown": the log holds exactly the acknowledged lines

    let mut restored = EngineCheckpoint::load(&json)
        .unwrap()
        .try_restore()
        .unwrap();
    let rh = restored.handles()[0];
    for chunk in events[12..].chunks(4) {
        expected.extend(restored.ingest(chunk).unwrap());
    }
    assert_eq!(restored.flush_deliveries(), 0);
    assert_eq!(restored.metrics(rh).unwrap().cursor_lag, 0);
    drop(restored);

    // The delivery log is the full run's match sequence: the restored
    // engine appended exactly after the acknowledged cursor — nothing
    // replayed twice, nothing lost across the restart.
    let lines: Vec<String> = std::fs::read_to_string(&path)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(lines, renders(&expected));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn restored_durable_subscriptions_are_addressable_again() {
    let key = "durability_addressable";
    reset_memory_sink(key);
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    let sub = engine
        .subscribe_durable(
            handle,
            SinkSpec::Memory {
                key: key.to_owned(),
            },
        )
        .unwrap();
    engine.ingest(&stream(8, 2)[..]).unwrap();
    let json = engine.checkpoint().to_json().unwrap();

    // The restore hands back no SubscriptionId; `durable_subscriptions`
    // recovers the same token, which resubscribe/unsubscribe/health accept.
    let restored = EngineCheckpoint::load(&json)
        .unwrap()
        .try_restore()
        .unwrap();
    let rh = restored.handles()[0];
    let recovered = restored.durable_subscriptions(rh).unwrap();
    assert_eq!(recovered.len(), 1);
    assert_eq!(recovered[0].token(), sub.token());
    assert_eq!(
        restored.subscription_health(recovered[0]).unwrap(),
        SubscriptionHealth::Active
    );
    let mut restored = restored;
    restored.resubscribe(recovered[0]).unwrap();
    restored.unsubscribe(recovered[0]).unwrap();
    assert_eq!(restored.subscription_count(rh).unwrap(), 0);
    reset_memory_sink(key);
}

#[test]
fn overflow_drops_on_an_unreachable_endpoint_are_counted_exactly() {
    let address = "durability-unreachable";
    clear_endpoint(address); // never registered: every connect fails
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    let capacity = 2usize;
    let sub = engine
        .subscribe_durable_with(
            handle,
            SinkSpec::Endpoint {
                address: address.to_owned(),
            },
            capacity,
            SinkOverflow::DropOldest,
        )
        .unwrap();
    let mut total = 0u64;
    for chunk in stream(16, 2).chunks(4) {
        total += engine.ingest(chunk).unwrap().len() as u64;
    }
    assert!(total > capacity as u64);
    let metrics = engine.metrics(handle).unwrap();
    assert_eq!(
        metrics.sink_events_dropped,
        total - capacity as u64,
        "DropOldest evicts exactly the overflow beyond the outbox capacity"
    );
    assert_eq!(
        metrics.cursor_lag, capacity as u64,
        "the surviving tail is still queued for delivery"
    );
    assert!(
        !matches!(
            engine.subscription_health(sub).unwrap(),
            SubscriptionHealth::Active
        ),
        "an unreachable endpoint cannot stay Active"
    );

    // Late-register the endpoint and probe: the surviving tail (and only
    // it) is delivered — losses are exactly the declared drops.
    let lines = Arc::new(Mutex::new(Vec::new()));
    struct Recorder {
        lines: Arc<Mutex<Vec<String>>>,
    }
    impl Transport for Recorder {
        fn send(&mut self, line: &str, _timeout: Duration) -> Result<(), String> {
            self.lines
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(line.to_owned());
            Ok(())
        }
    }
    {
        let lines = Arc::clone(&lines);
        register_endpoint(address, move |_| {
            Ok(Box::new(Recorder {
                lines: Arc::clone(&lines),
            }) as Box<dyn Transport>)
        });
    }
    engine.resubscribe(sub).unwrap();
    assert_eq!(engine.flush_deliveries(), 0);
    assert_eq!(
        engine.subscription_health(sub).unwrap(),
        SubscriptionHealth::Active
    );
    assert_eq!(
        lines.lock().unwrap_or_else(PoisonError::into_inner).len(),
        capacity
    );
    clear_endpoint(address);
}

#[test]
fn a_memory_sink_receives_every_match_in_emission_order() {
    let key = "durability_memory_order";
    reset_memory_sink(key);
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    engine
        .subscribe_durable(
            handle,
            SinkSpec::Memory {
                key: key.to_owned(),
            },
        )
        .unwrap();
    let mut expected = Vec::new();
    for chunk in stream(16, 4).chunks(4) {
        expected.extend(engine.ingest(chunk).unwrap());
    }
    assert_eq!(memory_sink_contents(key), renders(&expected));
    let metrics = engine.metrics(handle).unwrap();
    assert_eq!(metrics.delivery_attempts, expected.len() as u64);
    assert_eq!(metrics.delivery_retries, 0);
    assert_eq!(metrics.cursor_lag, 0);
    reset_memory_sink(key);
}

#[test]
fn endpoint_registry_helpers_are_idempotent() {
    clear_endpoint("durability-no-such-endpoint");
    clear_endpoint("durability-no-such-endpoint");
    reset_memory_sink("durability-no-such-buffer");
    reset_memory_sink("durability-no-such-buffer");
    assert!(memory_sink_contents("durability-no-such-buffer").is_empty());
}
