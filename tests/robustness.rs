//! Failure injection and robustness: the engine must stay correct (or fail
//! loudly) on the inputs a production stream actually delivers — out-of-order
//! timestamps, duplicate and self-loop edges, types never seen at planning
//! time, zero-width windows — and the operational features added on top of the
//! paper (checkpoint/restore, adaptive re-planning, cost-based plans) must not
//! change the set of matches reported.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use streamworks::baseline::RepeatedSearchMatcher;
use streamworks::engine::EngineCheckpoint;
use streamworks::query::{CostBasedOrdered, LeftDeepEdgeChain, QueryGraph, TriadWedges};
use streamworks::{
    AdaptiveConfig, AdaptiveReplanner, ContinuousQueryEngine, Duration, DynamicGraph, EdgeEvent,
    EngineConfig, QueryGraphBuilder, Timestamp, TreeShapeKind,
};

type Signature = Vec<(usize, u64)>;

fn ev(src: &str, st: &str, dst: &str, dt: &str, et: &str, t: i64) -> EdgeEvent {
    EdgeEvent::new(src, st, dst, dt, et, Timestamp::from_secs(t))
}

fn pair_query(window_secs: i64) -> QueryGraph {
    QueryGraphBuilder::new("pair")
        .window(Duration::from_secs(window_secs))
        .vertex("a1", "A")
        .vertex("a2", "A")
        .vertex("k", "K")
        .edge("a1", "rel", "k")
        .edge("a2", "rel", "k")
        .build()
        .unwrap()
}

fn wedge_query(window_secs: i64) -> QueryGraph {
    QueryGraphBuilder::new("wedge")
        .window(Duration::from_secs(window_secs))
        .vertex("a", "A")
        .vertex("k", "K")
        .vertex("l", "L")
        .edge("a", "rel", "k")
        .edge("a", "loc", "l")
        .build()
        .unwrap()
}

fn signatures(engine: &mut ContinuousQueryEngine, events: &[EdgeEvent]) -> BTreeSet<Signature> {
    let mut out = BTreeSet::new();
    for e in events {
        for m in engine.ingest(e).unwrap() {
            out.insert(
                m.edges
                    .iter()
                    .enumerate()
                    .map(|(q, id)| (q, id.0))
                    .collect(),
            );
        }
    }
    out
}

/// A match signature that is stable across an engine restart: the variable →
/// external-key bindings plus the completion time and span. (Raw [`EdgeId`]s
/// are arrival sequence numbers and therefore differ between a restored graph
/// and the original one.)
type KeySignature = (Vec<(String, String)>, i64, i64);

fn key_signatures(
    engine: &mut ContinuousQueryEngine,
    events: &[EdgeEvent],
) -> BTreeSet<KeySignature> {
    let mut out = BTreeSet::new();
    for e in events {
        for m in engine.ingest(e).unwrap() {
            let mut bindings: Vec<(String, String)> = m
                .bindings
                .iter()
                .map(|b| (b.variable.clone(), b.key.clone()))
                .collect();
            bindings.sort();
            out.insert((bindings, m.at.as_micros(), m.span.as_micros()));
        }
    }
    out
}

fn repeated_signatures(query: &QueryGraph, events: &[EdgeEvent]) -> BTreeSet<Signature> {
    let mut graph = DynamicGraph::unbounded();
    let mut matcher = RepeatedSearchMatcher::new(query.clone());
    let mut out = BTreeSet::new();
    for e in events {
        graph.ingest(e);
        for emb in matcher.process_update(&graph) {
            out.insert(emb.signature());
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Malformed / adversarial inputs
// ---------------------------------------------------------------------------

#[test]
fn self_loops_do_not_produce_non_injective_matches() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    engine.register_query(pair_query(1_000)).unwrap();
    // A self-loop on the keyword vertex and an article that mentions itself.
    engine.ingest(&ev("k1", "K", "k1", "K", "rel", 1)).unwrap();
    engine.ingest(&ev("a1", "A", "a1", "A", "rel", 2)).unwrap();
    // One legitimate mention; still no complete pair (a1 = a2 is forbidden).
    let matches = engine.ingest(&ev("a1", "A", "k1", "K", "rel", 3)).unwrap();
    assert!(matches.is_empty());
    // A second, distinct article completes the pattern exactly once per
    // automorphism.
    let matches = engine.ingest(&ev("a2", "A", "k1", "K", "rel", 4)).unwrap();
    assert_eq!(matches.len(), 2);
}

#[test]
fn duplicate_edge_events_agree_with_repeated_search() {
    let query = pair_query(500);
    let events = vec![
        ev("a1", "A", "k1", "K", "rel", 1),
        ev("a1", "A", "k1", "K", "rel", 1), // exact duplicate
        ev("a2", "A", "k1", "K", "rel", 2),
        ev("a2", "A", "k1", "K", "rel", 3), // same endpoints, later timestamp
    ];
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    engine.register_query(query.clone()).unwrap();
    let incremental = signatures(&mut engine, &events);
    let repeated = repeated_signatures(&query, &events);
    assert_eq!(incremental, repeated);
    assert!(!incremental.is_empty());
}

#[test]
fn out_of_order_timestamps_do_not_panic_and_respect_the_window() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    engine.register_query(pair_query(30)).unwrap();
    // The second mention arrives with an *older* timestamp, still inside the
    // window relative to the first edge.
    engine
        .ingest(&ev("a1", "A", "k1", "K", "rel", 100))
        .unwrap();
    let in_window = engine.ingest(&ev("a2", "A", "k1", "K", "rel", 80)).unwrap();
    assert_eq!(
        in_window.len(),
        2,
        "late-but-in-window edge must still match"
    );

    // A mention that is far in the past relative to the window must not match.
    let stale = engine.ingest(&ev("a3", "A", "k1", "K", "rel", 10)).unwrap();
    assert!(
        stale.iter().all(|m| m.span.as_secs() < 30),
        "any reported match must still satisfy τ(g) < tW"
    );
}

#[test]
fn clock_jumps_forward_expire_state_without_panicking() {
    use streamworks::SelectivityOrdered;
    let mut engine = ContinuousQueryEngine::new(EngineConfig {
        prune_every: 4,
        ..EngineConfig::default()
    });
    // Single-edge primitives so per-edge partial matches are actually stored.
    let id = engine
        .register_query_with(
            pair_query(60),
            &SelectivityOrdered {
                max_primitive_size: 1,
            },
            TreeShapeKind::LeftDeep,
        )
        .unwrap();
    engine.ingest(&ev("a1", "A", "k1", "K", "rel", 0)).unwrap();
    // Jump three hours ahead: the old partial match must be expired.
    engine
        .ingest(&ev("a2", "A", "k2", "K", "rel", 10_800))
        .unwrap();
    engine.prune_now();
    let metrics = engine.metrics(id).unwrap();
    assert!(metrics.partial_matches_expired > 0);
    // Matching continues normally at the new time frontier.
    let matches = engine
        .ingest(&ev("a3", "A", "k2", "K", "rel", 10_805))
        .unwrap();
    assert_eq!(matches.len(), 2);
}

#[test]
fn zero_width_window_reports_nothing() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    engine.register_query(pair_query(0)).unwrap();
    engine.ingest(&ev("a1", "A", "k1", "K", "rel", 5)).unwrap();
    let matches = engine.ingest(&ev("a2", "A", "k1", "K", "rel", 5)).unwrap();
    assert!(
        matches.is_empty(),
        "τ(g) < 0s can never hold, even for simultaneous edges"
    );
}

#[test]
fn types_unseen_at_registration_time_still_match_later() {
    // Register before *any* data: the type interner knows nothing about the
    // query's labels yet, so constraints must re-resolve lazily.
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    engine.register_query(wedge_query(600)).unwrap();
    // Unrelated traffic with completely different types arrives first.
    for i in 0..50 {
        engine
            .ingest(&ev(
                &format!("h{i}"),
                "Host",
                &format!("h{}", i + 1),
                "Host",
                "flow",
                i,
            ))
            .unwrap();
    }
    engine
        .ingest(&ev("a1", "A", "k1", "K", "rel", 100))
        .unwrap();
    let matches = engine
        .ingest(&ev("a1", "A", "l1", "L", "loc", 101))
        .unwrap();
    assert_eq!(matches.len(), 1);
}

#[test]
fn unrelated_edge_types_never_reach_the_matcher_as_matches() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let id = engine.register_query(pair_query(1_000)).unwrap();
    for i in 0..200 {
        let out = engine
            .ingest(&ev(
                &format!("x{}", i % 17),
                "A",
                &format!("y{}", i % 13),
                "K",
                "other_rel",
                i,
            ))
            .unwrap();
        assert!(out.is_empty());
    }
    assert_eq!(engine.metrics(id).unwrap().complete_matches, 0);
}

// ---------------------------------------------------------------------------
// Operational features preserve match semantics
// ---------------------------------------------------------------------------

#[test]
fn checkpoint_restore_preserves_future_matches_on_a_cyber_stream() {
    use streamworks::workloads::queries::smurf_ddos_query;
    use streamworks::workloads::{AttackKind, CyberConfig, CyberTrafficGenerator};

    let workload = CyberTrafficGenerator::new(CyberConfig {
        hosts: 200,
        background_edges: 4_000,
        attacks: vec![(AttackKind::SmurfDdos, 4)],
        ..Default::default()
    })
    .generate();
    let query = smurf_ddos_query(4, Duration::from_mins(5));

    // Reference: process the whole stream without interruption.
    let mut reference = ContinuousQueryEngine::builder().build().unwrap();
    reference.register_query(query.clone()).unwrap();
    let half = workload.events.len() / 2;
    let first_half_ref = key_signatures(&mut reference, &workload.events[..half]);
    let second_half_ref = key_signatures(&mut reference, &workload.events[half..]);

    // Checkpointed run: restart the engine in the middle of the stream.
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    engine.register_query(query).unwrap();
    let first_half = key_signatures(&mut engine, &workload.events[..half]);
    let checkpoint = EngineCheckpoint::capture(&engine);
    let json = checkpoint.to_json().unwrap();
    let mut restored = EngineCheckpoint::from_json(&json).unwrap().restore();
    let second_half = key_signatures(&mut restored, &workload.events[half..]);

    assert_eq!(first_half, first_half_ref);
    assert_eq!(
        second_half, second_half_ref,
        "matches completing after the restart must be identical to an uninterrupted run"
    );
}

#[test]
fn statistics_driven_strategies_agree_with_the_blind_plan() {
    use streamworks::workloads::{NewsConfig, NewsStreamGenerator};
    let workload = NewsStreamGenerator::new(NewsConfig {
        articles: 400,
        planted_events: vec![("politics".into(), 3)],
        ..Default::default()
    })
    .generate();
    let query =
        streamworks::workloads::queries::labelled_news_query("politics", Duration::from_mins(30));

    let mut results = Vec::new();
    let strategies: Vec<(&str, Box<dyn streamworks::query::DecompositionStrategy>)> = vec![
        ("blind", Box::new(LeftDeepEdgeChain)),
        ("cost", Box::new(CostBasedOrdered::default())),
        ("triads", Box::new(TriadWedges::default())),
    ];
    for (name, strategy) in &strategies {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query_with(query.clone(), strategy.as_ref(), TreeShapeKind::LeftDeep)
            .unwrap();
        let sigs = signatures(&mut engine, &workload.events);
        results.push((name, sigs));
    }
    let reference = results[0].1.clone();
    assert!(!reference.is_empty(), "planted bursts must be detected");
    for (name, sigs) in &results[1..] {
        assert_eq!(sigs, &reference, "strategy {name} changed the result set");
    }
}

#[test]
fn adaptive_replanning_keeps_finding_matches_after_the_switch() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let id = engine
        .register_query_with(
            wedge_query(3_600),
            &LeftDeepEdgeChain,
            TreeShapeKind::LeftDeep,
        )
        .unwrap();
    let mut replanner = AdaptiveReplanner::new(AdaptiveConfig {
        min_edges_between_replans: 200,
        drift_threshold: 0.05,
        min_improvement: 1.0,
        ..AdaptiveConfig::default()
    });
    replanner.check(&mut engine);

    // Skewed warm-up traffic that motivates a re-plan.
    let mut t = 0;
    for i in 0..600 {
        engine
            .ingest(&ev(
                &format!("a{}", i % 40),
                "A",
                &format!("k{}", i % 12),
                "K",
                "rel",
                t,
            ))
            .unwrap();
        t += 1;
    }
    let decisions = replanner.check(&mut engine);
    assert!(
        decisions.iter().any(|d| d.replanned),
        "re-plan expected on drifted statistics"
    );

    // Patterns completed entirely after the re-plan are still found.
    let before = engine.metrics(id).unwrap().complete_matches;
    engine
        .ingest(&ev("fresh", "A", "k-new", "K", "rel", t + 10))
        .unwrap();
    let matches = engine
        .ingest(&ev("fresh", "A", "l-new", "L", "loc", t + 11))
        .unwrap();
    assert_eq!(matches.len(), 1);
    assert_eq!(engine.metrics(id).unwrap().complete_matches, before + 1);
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

fn to_events(raw: &[(u8, u8, i64)]) -> Vec<EdgeEvent> {
    raw.iter()
        .map(|&(a, k, t)| {
            ev(
                &format!("a{}", a % 6),
                "A",
                &format!("k{}", k % 4),
                "K",
                "rel",
                t.rem_euclid(300),
            )
        })
        .collect()
}

/// Like [`to_events`] but delivered in timestamp order (the setting in which
/// incremental matching is equivalent to unbounded repeated search).
fn to_sorted_events(raw: &[(u8, u8, i64)]) -> Vec<EdgeEvent> {
    let mut events = to_events(raw);
    events.sort_by_key(|e| e.timestamp);
    events
}

/// Draws a raw `(src, keyword, timestamp)` stream description.
fn random_raw(rng: &mut StdRng, max_len: usize) -> Vec<(u8, u8, i64)> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| {
            (
                rng.gen_range(0..8u8),
                rng.gen_range(0..5u8),
                rng.gen_range(0i64..300),
            )
        })
        .collect()
}

/// Restarting from a checkpoint at *any* split point never changes the
/// matches reported for the rest of the stream.
#[test]
fn checkpoint_restore_is_transparent() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for _ in 0..48 {
        let events = to_events(&random_raw(&mut rng, 40));
        let split = rng.gen_range(0usize..40).min(events.len());
        let window = rng.gen_range(20i64..200);
        let query = pair_query(window);

        let mut reference = ContinuousQueryEngine::builder().build().unwrap();
        reference.register_query(query.clone()).unwrap();
        let _ = key_signatures(&mut reference, &events[..split]);
        let tail_ref = key_signatures(&mut reference, &events[split..]);

        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine.register_query(query).unwrap();
        let _ = key_signatures(&mut engine, &events[..split]);
        let mut restored = engine.checkpoint().restore();
        let tail = key_signatures(&mut restored, &events[split..]);

        assert_eq!(tail, tail_ref);
    }
}

/// The cost-based strategy reports exactly the same windowed matches as
/// the repeated-search baseline on arbitrary streams.
#[test]
fn cost_based_plans_match_repeated_search() {
    let mut rng = StdRng::seed_from_u64(0xDECAF);
    for _ in 0..48 {
        let events = to_sorted_events(&random_raw(&mut rng, 35));
        let window = rng.gen_range(20i64..200);
        let query = pair_query(window);
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query_with(
                query.clone(),
                &CostBasedOrdered::default(),
                TreeShapeKind::LeftDeep,
            )
            .unwrap();
        let incremental = signatures(&mut engine, &events);
        let repeated = repeated_signatures(&query, &events);
        assert_eq!(incremental, repeated);
    }
}

/// Out-of-order delivery (shuffled timestamps assigned to arrival order)
/// never panics and never reports a match wider than the window.
#[test]
fn shuffled_streams_respect_window_semantics() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for _ in 0..48 {
        let events = to_events(&random_raw(&mut rng, 40));
        let window = rng.gen_range(5i64..100);
        let query = pair_query(window);
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine.register_query(query).unwrap();
        for e in &events {
            for m in engine.ingest(e).unwrap() {
                assert!(m.span < Duration::from_secs(window));
            }
        }
    }
}
