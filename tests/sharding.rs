//! Shard-count invariance of the sharded single-query matcher.
//!
//! The contract of `EngineBuilder::shards` is that sharding is *invisible*
//! except in throughput: for any shard count, the engine reports exactly the
//! same match multiset (and the same `complete_matches` counts) as the
//! single-threaded engine, on any stream — including under query lifecycle
//! churn (register → pause → resume → deregister) and with subscriptions
//! attached. These tests pin that contract on both bundled workloads.

use std::collections::BTreeMap;
use streamworks::workloads::queries::{labelled_news_query, port_scan_query, smurf_ddos_query};
use streamworks::workloads::{
    AttackKind, CyberConfig, CyberTrafficGenerator, NewsConfig, NewsStreamGenerator,
};
use streamworks::{
    BufferingSink, ContinuousQueryEngine, Duration, EdgeEvent, MatchEvent, QueryGraph, QueryHandle,
    Timestamp,
};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Canonical multiset of matches: how often each (query name, data-edge
/// assignment) was reported. Using a count map (not a set) also catches
/// duplicate or missing reports of the same embedding.
fn multiset(events: &[MatchEvent]) -> BTreeMap<(String, Vec<u64>), usize> {
    let mut out = BTreeMap::new();
    for ev in events {
        let edges: Vec<u64> = ev.edges.iter().map(|e| e.0).collect();
        *out.entry((ev.query_name.clone(), edges)).or_insert(0) += 1;
    }
    out
}

fn engine_with_shards(shards: usize) -> ContinuousQueryEngine {
    ContinuousQueryEngine::builder()
        .shards(shards)
        .build()
        .unwrap()
}

/// Replays `events` through an engine with the given queries and shard
/// count, returning all matches plus the per-query complete-match counts.
fn run(
    queries: &[QueryGraph],
    events: &[EdgeEvent],
    shards: usize,
    batch: usize,
) -> (Vec<MatchEvent>, Vec<u64>) {
    let mut engine = engine_with_shards(shards);
    let handles: Vec<QueryHandle> = queries
        .iter()
        .map(|q| engine.register_query(q.clone()).unwrap())
        .collect();
    let mut matches = Vec::new();
    for chunk in events.chunks(batch) {
        matches.extend(engine.ingest(chunk).unwrap());
    }
    let counts = handles
        .iter()
        .map(|h| engine.metrics(*h).unwrap().complete_matches)
        .collect();
    (matches, counts)
}

fn cyber_events() -> Vec<EdgeEvent> {
    CyberTrafficGenerator::new(CyberConfig {
        hosts: 120,
        background_edges: 4_000,
        attacks: vec![(AttackKind::SmurfDdos, 3), (AttackKind::PortScan, 4)],
        seed: 11,
        ..Default::default()
    })
    .generate()
    .events
}

fn news_events() -> Vec<EdgeEvent> {
    NewsStreamGenerator::new(NewsConfig {
        articles: 600,
        planted_events: vec![("politics".into(), 3)],
        seed: 5,
        ..Default::default()
    })
    .generate()
    .events
}

#[test]
fn cyber_workload_is_shard_count_invariant() {
    let window = Duration::from_mins(5);
    let queries = vec![smurf_ddos_query(3, window), port_scan_query(5, window)];
    let events = cyber_events();
    let (reference, ref_counts) = run(&queries, &events, 1, 512);
    let expected = multiset(&reference);
    assert!(
        ref_counts.iter().sum::<u64>() > 0,
        "the cyber stream must produce matches for the invariance to be meaningful"
    );
    for shards in SHARD_COUNTS {
        let (got, counts) = run(&queries, &events, shards, 512);
        assert_eq!(multiset(&got), expected, "shards={shards}");
        assert_eq!(counts, ref_counts, "complete_matches at shards={shards}");
    }
}

#[test]
fn news_workload_is_shard_count_invariant() {
    let queries = vec![labelled_news_query("politics", Duration::from_mins(30))];
    let events = news_events();
    let (reference, ref_counts) = run(&queries, &events, 1, 256);
    let expected = multiset(&reference);
    assert!(ref_counts[0] > 0, "the news stream must produce matches");
    for shards in SHARD_COUNTS {
        let (got, counts) = run(&queries, &events, shards, 256);
        assert_eq!(multiset(&got), expected, "shards={shards}");
        assert_eq!(counts, ref_counts, "complete_matches at shards={shards}");
    }
}

#[test]
fn invariance_holds_across_batch_granularities() {
    // Single-event ingest forces a fan-in barrier per event; the result must
    // still be identical to large batches and to the unsharded engine.
    let queries = vec![labelled_news_query("politics", Duration::from_mins(30))];
    let events: Vec<EdgeEvent> = news_events().into_iter().take(1_500).collect();
    let (reference, ref_counts) = run(&queries, &events, 1, 1);
    let expected = multiset(&reference);
    for (shards, batch) in [(4usize, 1usize), (4, 64), (4, 4096)] {
        let (got, counts) = run(&queries, &events, shards, batch);
        assert_eq!(multiset(&got), expected, "shards={shards} batch={batch}");
        assert_eq!(counts, ref_counts, "shards={shards} batch={batch}");
    }
}

#[test]
fn sharded_lifecycle_churn_matches_single_threaded() {
    // register → match → pause → resume → deregister → re-register, sharded
    // and unsharded side by side; every observable must agree at each step.
    let events = news_events();
    let (first, second) = events.split_at(events.len() / 2);
    let query = labelled_news_query("politics", Duration::from_mins(30));

    let mut single = engine_with_shards(1);
    let mut sharded = engine_with_shards(4);
    let h_single = single.register_query(query.clone()).unwrap();
    let h_sharded = sharded.register_query(query.clone()).unwrap();

    let a = single.ingest(first).unwrap();
    let b = sharded.ingest(first).unwrap();
    assert_eq!(multiset(&a), multiset(&b), "pre-pause matches");

    // Paused queries see nothing, on either engine.
    single.pause(h_single).unwrap();
    sharded.pause(h_sharded).unwrap();
    assert!(sharded.is_paused(h_sharded).unwrap());
    let quarter = &second[..second.len() / 2];
    assert!(single.ingest(quarter).unwrap().is_empty());
    assert!(sharded.ingest(quarter).unwrap().is_empty());

    // Resumed queries match again, and still agree.
    single.resume(h_single).unwrap();
    sharded.resume(h_sharded).unwrap();
    let rest = &second[second.len() / 2..];
    let a = single.ingest(rest).unwrap();
    let b = sharded.ingest(rest).unwrap();
    assert_eq!(multiset(&a), multiset(&b), "post-resume matches");
    assert_eq!(
        single.metrics(h_single).unwrap().complete_matches,
        sharded.metrics(h_sharded).unwrap().complete_matches
    );

    // Deregistration drops the shard workers and all their partial-match
    // state; the handle goes stale and the slot is recyclable.
    sharded.deregister(h_sharded).unwrap();
    assert_eq!(sharded.live_partial_matches(), 0);
    assert!(sharded.metrics(h_sharded).is_err());
    let h_new = sharded.register_query(query).unwrap();
    assert_eq!(h_new.id(), h_sharded.id(), "slot is recycled");
    assert!(
        sharded.metrics(h_sharded).is_err(),
        "old handle stays stale"
    );
    assert!(sharded.metrics(h_new).is_ok());
}

#[test]
fn prune_now_waits_for_the_shard_sweeps() {
    // The public prune_now() is documented to be observable immediately:
    // after it returns, live partial-match counts reflect the sweep even
    // though sharded sweeps run on worker threads.
    let query = labelled_news_query("politics", Duration::from_mins(30));
    let mut engine = engine_with_shards(4);
    let handle = engine.register_query(query).unwrap();
    let events = news_events();
    let last = events.last().unwrap().timestamp;
    engine.ingest(&events).unwrap();

    // Advance stream time far past every window, then prune explicitly.
    engine
        .ingest(&EdgeEvent::new(
            "straggler",
            "Article",
            "k-late",
            "Keyword",
            "mentions",
            Timestamp::from_micros(last.as_micros() + 4 * 3_600_000_000),
        ))
        .unwrap();
    engine.prune_now();
    assert_eq!(engine.metrics(handle).unwrap().partial_matches_live, 0);
    assert_eq!(engine.live_partial_matches(), 0);
}

#[test]
fn sharded_subscription_sees_one_ordered_stream() {
    let query = labelled_news_query("politics", Duration::from_mins(30));
    let mut engine = engine_with_shards(4);
    let handle = engine.register_query(query).unwrap();
    let (sink, buffer) = BufferingSink::new();
    let sub = engine.subscribe(handle, sink).unwrap();

    let events = news_events();
    let mut returned = Vec::new();
    for chunk in events.chunks(512) {
        returned.extend(engine.ingest(chunk).unwrap());
    }
    assert!(!returned.is_empty(), "stream must produce matches");

    // The tenant's subscription got exactly the returned stream, in the same
    // order, and ordered by stream time (each match is stamped with the
    // timestamp of its completing edge, and edges arrive in time order).
    let seen = buffer.drain();
    assert_eq!(seen, returned);
    for pair in seen.windows(2) {
        assert!(
            pair[0].at <= pair[1].at,
            "fan-in must preserve stream order: {:?} then {:?}",
            pair[0].at,
            pair[1].at
        );
    }

    // Per-shard metrics account for all the store work.
    let per_shard = engine.shard_metrics(handle).unwrap().unwrap();
    assert_eq!(per_shard.len(), 4);
    let complete: u64 = per_shard.iter().map(|s| s.complete_matches).sum();
    assert_eq!(complete, seen.len() as u64);

    engine.unsubscribe(sub).unwrap();
    assert_eq!(engine.subscription_count(handle).unwrap(), 0);
}

/// Store-unification pin: the in-process `SjTreeMatcher` (now running on the
/// same `SharedJoinStore` + `probe_then_insert` inner loop as the shard
/// workers) must emit the exact match multiset of a directly-driven
/// `ShardedMatcher` at 1/2/4/8 shards, on both bundled workloads.
#[test]
fn unified_single_thread_matches_sharded_matcher_on_both_workloads() {
    use streamworks::engine::{ShardedMatcher, SjTreeMatcher};
    use streamworks::query::Planner;
    use streamworks::DynamicGraph;

    let cases: Vec<(&str, QueryGraph, Vec<EdgeEvent>)> = vec![
        (
            "cyber",
            port_scan_query(4, Duration::from_mins(5)),
            cyber_events(),
        ),
        (
            "news",
            labelled_news_query("politics", Duration::from_mins(30)),
            news_events(),
        ),
    ];
    for (workload, query, events) in cases {
        let plan = Planner::new().plan(query).unwrap();

        // Reference: the unified single-threaded matcher.
        let mut graph = DynamicGraph::unbounded();
        let mut single = SjTreeMatcher::new(plan.clone(), &graph);
        let mut expected: BTreeMap<u64, usize> = BTreeMap::new();
        let mut out = Vec::new();
        for ev in &events {
            let r = graph.ingest(ev);
            let edge = graph.edge(r.edge).unwrap().clone();
            out.clear();
            single.process_edge(&graph, &edge, &mut out);
            for m in &out {
                *expected.entry(m.signature()).or_insert(0) += 1;
            }
        }
        assert!(
            !expected.is_empty(),
            "{workload}: the stream must produce matches"
        );

        for shards in SHARD_COUNTS {
            let mut graph = DynamicGraph::unbounded();
            let mut sharded = ShardedMatcher::new(plan.clone(), &graph, shards, None);
            for ev in &events {
                let r = graph.ingest(ev);
                let edge = graph.edge(r.edge).unwrap().clone();
                sharded.process_edge(&graph, &edge);
            }
            let mut got: BTreeMap<u64, usize> = BTreeMap::new();
            for (_, m) in sharded.take_completed() {
                *got.entry(m.signature()).or_insert(0) += 1;
            }
            assert_eq!(got, expected, "{workload} shards={shards}");
        }
    }
}
