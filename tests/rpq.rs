//! Regular-path-query correctness: every engine emission is pinned against a
//! brute-force windowed path enumerator.
//!
//! The oracle keeps the full edge log and, after every single event,
//! recomputes from scratch the set of (source, target) pairs connected by a
//! label path the query's DFA accepts using only *live* edges (timestamp
//! strictly inside the window at the current stream time). The engine's
//! emission contract is "a pair is reported when it enters the live result
//! set" — so the predicted emissions for one event are exactly the pairs in
//! the oracle's live set after the event that were not in it immediately
//! before (at the same, already-advanced clock). The suite runs that
//! comparison per event across regex shapes (star, alternation, bounded
//! repetition), window sizes, out-of-order delivery, the two domain
//! workloads (cyber lateral movement, news citation chains), lifecycle
//! churn, and a checkpoint/restore cut mid-stream.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamworks::engine::EngineCheckpoint;
use streamworks::query::RpqDfa;
use streamworks::workloads::{
    citation_chain_rpq, lateral_movement_rpq, CitationChainGenerator, CitationConfig,
    LateralMovementConfig, LateralMovementGenerator,
};
use streamworks::{
    parse_rpq, ContinuousQueryEngine, Duration, EdgeEvent, MatchEvent, QueryHandle, RpqQuery,
    Timestamp,
};

// ---------------------------------------------------------------------------
// The brute-force oracle
// ---------------------------------------------------------------------------

struct Oracle {
    dfa: RpqDfa,
    window: Duration,
    /// Every alphabet edge ever ingested: (src key, dst key, symbol, ts).
    edges: Vec<(String, String, u32, Timestamp)>,
}

impl Oracle {
    fn new(rpq: &RpqQuery) -> Self {
        Oracle {
            dfa: rpq.compile(),
            window: rpq.window(),
            edges: Vec::new(),
        }
    }

    /// All (source, target) pairs connected by an accepted label path over
    /// edges live at `now`, via BFS on the product graph from every vertex.
    fn reachable(&self, now: Timestamp) -> BTreeSet<(String, String)> {
        let cutoff = now.minus(self.window);
        let mut adj: HashMap<&str, Vec<(u32, &str)>> = HashMap::new();
        let mut verts: BTreeSet<&str> = BTreeSet::new();
        for (src, dst, sym, ts) in &self.edges {
            if *ts > cutoff {
                adj.entry(src.as_str())
                    .or_default()
                    .push((*sym, dst.as_str()));
                verts.insert(src.as_str());
                verts.insert(dst.as_str());
            }
        }
        let mut result = BTreeSet::new();
        for &root in &verts {
            let mut seen: HashSet<(&str, u32)> = HashSet::new();
            let mut queue: VecDeque<(&str, u32)> = VecDeque::new();
            seen.insert((root, self.dfa.start()));
            queue.push_back((root, self.dfa.start()));
            while let Some((v, s)) = queue.pop_front() {
                for &(sym, dst) in adj.get(v).into_iter().flatten() {
                    if let Some(ns) = self.dfa.step(s, sym) {
                        if seen.insert((dst, ns)) {
                            queue.push_back((dst, ns));
                        }
                    }
                }
            }
            for (v, s) in seen {
                // The parser rejects empty-string patterns, so the start
                // state is never accepting and every pair needs >= 1 edge.
                if self.dfa.is_accepting(s) {
                    result.insert((root.to_owned(), v.to_owned()));
                }
            }
        }
        result
    }

    /// Feeds one event at the already-advanced clock `now`; returns the
    /// pairs predicted to be emitted for it, sorted.
    fn ingest(&mut self, ev: &EdgeEvent, now: Timestamp) -> Vec<(String, String)> {
        let before = self.reachable(now);
        if let Some(sym) = self.dfa.symbol(&ev.edge_type) {
            if ev.timestamp > now.minus(self.window) {
                self.edges
                    .push((ev.src_key.clone(), ev.dst_key.clone(), sym, ev.timestamp));
            }
        }
        let after = self.reachable(now);
        after.difference(&before).cloned().collect()
    }
}

fn pair_of(m: &MatchEvent) -> (String, String) {
    (
        m.bindings.first().expect("src binding").key.clone(),
        m.bindings.last().expect("dst binding").key.clone(),
    )
}

/// Replays `events` one at a time through a fresh engine and the oracle,
/// asserting identical emissions after every single event. Returns the total
/// number of matches, so callers can assert the run was not vacuous.
fn check_against_oracle(rpq: &RpqQuery, events: &[EdgeEvent]) -> usize {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = engine.register_rpq(rpq.clone());
    let mut oracle = Oracle::new(rpq);
    let mut now: Option<Timestamp> = None;
    let mut total = 0;
    for (i, ev) in events.iter().enumerate() {
        let at = now.map_or(ev.timestamp, |n| n.max(ev.timestamp));
        now = Some(at);
        let mut got: Vec<(String, String)> = engine
            .ingest(ev)
            .unwrap()
            .iter()
            .filter(|m| m.handle() == handle)
            .map(pair_of)
            .collect();
        got.sort();
        let want = oracle.ingest(ev, at);
        assert_eq!(got, want, "event #{i} ({ev:?}) at {at:?}");
        total += got.len();
    }
    total
}

/// A random labelled stream over a small vertex set. `jitter_ms > 0` makes
/// delivery out of order (timestamps are perturbed backwards after the
/// arrival sequence is fixed).
fn random_events(
    labels: &[&str],
    vertices: usize,
    count: usize,
    max_step_ms: i64,
    jitter_ms: i64,
    seed: u64,
) -> Vec<EdgeEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0i64;
    (0..count)
        .map(|_| {
            t += rng.gen_range(1..=max_step_ms);
            let ts = Timestamp::from_millis((t - rng.gen_range(0..=jitter_ms)).max(0));
            let src = format!("v{}", rng.gen_range(0..vertices));
            let dst = format!("v{}", rng.gen_range(0..vertices));
            let label = labels[rng.gen_range(0..labels.len())];
            EdgeEvent::new(src, "V", dst, "V", label, ts)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Regex shapes, window sizes, out-of-order delivery
// ---------------------------------------------------------------------------

#[test]
fn star_pattern_matches_oracle_under_expiry() {
    let rpq = parse_rpq("RPQ star WINDOW 5s PATH a b* c").unwrap();
    // `d` is outside the alphabet: noise the matcher must ignore.
    let events = random_events(&["a", "b", "c", "d"], 8, 250, 300, 0, 42);
    let matches = check_against_oracle(&rpq, &events);
    assert!(matches > 0, "stream too sparse to exercise the pattern");
}

#[test]
fn alternation_matches_oracle() {
    let rpq = parse_rpq("RPQ alt WINDOW 4s PATH (a | b) c+").unwrap();
    let events = random_events(&["a", "b", "c"], 7, 220, 250, 0, 7);
    let matches = check_against_oracle(&rpq, &events);
    assert!(matches > 0);
}

#[test]
fn bounded_repetition_matches_oracle() {
    let rpq = parse_rpq("RPQ rep WINDOW 6s PATH a{2,4}").unwrap();
    let events = random_events(&["a", "b"], 6, 220, 250, 0, 99);
    let matches = check_against_oracle(&rpq, &events);
    assert!(matches > 0);
}

#[test]
fn out_of_order_delivery_matches_oracle() {
    // Timestamps jittered up to 2s backwards on a ~0.25s cadence: plenty of
    // late arrivals, some of them already outside the 3s window on arrival.
    let rpq = parse_rpq("RPQ ooo WINDOW 3s PATH a b* c").unwrap();
    let events = random_events(&["a", "b", "c"], 8, 250, 250, 2_000, 1234);
    check_against_oracle(&rpq, &events);
}

#[test]
fn window_size_sweep_matches_oracle() {
    let events = random_events(&["a", "b", "c"], 8, 180, 300, 400, 5);
    for (window, expect_matches) in [("500ms", false), ("8s", true), ("1h", true)] {
        let rpq = parse_rpq(&format!("RPQ w WINDOW {window} PATH a b* c")).unwrap();
        let matches = check_against_oracle(&rpq, &events);
        if expect_matches {
            assert!(matches > 0, "window {window} found nothing");
        }
    }
}

// ---------------------------------------------------------------------------
// The two domain scenarios
// ---------------------------------------------------------------------------

#[test]
fn cyber_lateral_movement_matches_oracle_and_finds_all_chains() {
    let workload = LateralMovementGenerator::new(LateralMovementConfig {
        hosts: 16,
        background_edges: 150,
        edge_interval: Duration::from_millis(10),
        intrusions: vec![0, 2, 5],
        ..Default::default()
    })
    .generate();
    let rpq = lateral_movement_rpq(Duration::from_secs(600));

    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    engine.register_rpq(rpq.clone());
    let mut oracle = Oracle::new(&rpq);
    let mut now: Option<Timestamp> = None;
    let mut all: Vec<(String, String)> = Vec::new();
    for ev in &workload.events {
        let at = now.map_or(ev.timestamp, |n| n.max(ev.timestamp));
        now = Some(at);
        let mut got: Vec<(String, String)> =
            engine.ingest(ev).unwrap().iter().map(pair_of).collect();
        got.sort();
        assert_eq!(got, oracle.ingest(ev, at), "event {ev:?}");
        all.extend(got);
    }
    // Full recall on the planted ground truth.
    for chain in &workload.chains {
        assert!(
            all.iter()
                .any(|(s, t)| *s == chain.source && *t == chain.target),
            "planted chain {chain:?} not detected"
        );
    }
}

#[test]
fn news_citation_chains_match_oracle_and_find_all_chains() {
    let workload = CitationChainGenerator::new(CitationConfig {
        articles: 30,
        background_edges: 120,
        edge_interval: Duration::from_millis(20),
        chains: vec![2, 4],
        ..Default::default()
    })
    .generate();
    let rpq = citation_chain_rpq(Duration::from_secs(600));
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    engine.register_rpq(rpq.clone());
    let mut oracle = Oracle::new(&rpq);
    let mut now: Option<Timestamp> = None;
    let mut all: Vec<(String, String)> = Vec::new();
    for ev in &workload.events {
        let at = now.map_or(ev.timestamp, |n| n.max(ev.timestamp));
        now = Some(at);
        let mut got: Vec<(String, String)> =
            engine.ingest(ev).unwrap().iter().map(pair_of).collect();
        got.sort();
        assert_eq!(got, oracle.ingest(ev, at), "event {ev:?}");
        all.extend(got);
    }
    for chain in &workload.chains {
        assert!(
            all.iter()
                .any(|(s, t)| *s == chain.source && *t == chain.target),
            "planted chain {chain:?} not detected"
        );
    }
}

// ---------------------------------------------------------------------------
// Windowed expiry is exact
// ---------------------------------------------------------------------------

#[test]
fn tree_state_drains_to_zero_after_a_full_window() {
    let rpq = parse_rpq("RPQ drain WINDOW 10s PATH a b* c").unwrap();
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = engine.register_rpq(rpq);

    let events = random_events(&["a", "b", "c"], 6, 120, 200, 0, 21);
    for ev in &events {
        engine.ingest(ev).unwrap();
    }
    assert!(
        engine.metrics(handle).unwrap().rpq_tree_nodes_live > 0,
        "stream should leave live tree state behind"
    );

    // Advance the clock far past the window with an out-of-alphabet edge:
    // the matcher drains its expiry heap before the symbol check, so every
    // node, counter and tree must be gone afterwards.
    let far = Timestamp::from_secs(10_000);
    engine
        .ingest(&EdgeEvent::new("x", "V", "y", "V", "zz", far))
        .unwrap();
    let m = engine.metrics(handle).unwrap();
    assert_eq!(m.rpq_tree_nodes_live, 0, "tree state must drain exactly");
    assert_eq!(
        m.partial_matches_expired, m.partial_matches_inserted,
        "every inserted node must eventually expire"
    );
}

// ---------------------------------------------------------------------------
// Lifecycle churn
// ---------------------------------------------------------------------------

/// A two-hop chain that completes the pattern `a c` at `base_ms`.
fn chain(tag: &str, base_ms: i64) -> [EdgeEvent; 2] {
    [
        EdgeEvent::new(
            format!("{tag}-s"),
            "V",
            format!("{tag}-m"),
            "V",
            "a",
            Timestamp::from_millis(base_ms),
        ),
        EdgeEvent::new(
            format!("{tag}-m"),
            "V",
            format!("{tag}-t"),
            "V",
            "c",
            Timestamp::from_millis(base_ms + 100),
        ),
    ]
}

#[test]
fn lifecycle_churn_pauses_resumes_and_deregisters() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = engine
        .register_rpq_dsl("RPQ life WINDOW 1h PATH a b* c")
        .unwrap();
    assert!(engine.is_rpq(handle).unwrap());

    // Running: a completed chain emits.
    let matched: usize = chain("r1", 1_000)
        .iter()
        .map(|e| engine.ingest(e).unwrap().len())
        .sum();
    assert_eq!(matched, 1);

    // Paused: the query observes nothing, so a chain completed entirely
    // while paused is never reported — even after resume.
    engine.pause(handle).unwrap();
    let matched: usize = chain("p1", 2_000)
        .iter()
        .map(|e| engine.ingest(e).unwrap().len())
        .sum();
    assert_eq!(matched, 0, "paused query must not emit");
    engine.resume(handle).unwrap();
    assert!(engine.ingest(&chain("p2", 3_000)[1]).unwrap().is_empty());

    // Resumed: fresh chains match again.
    let matched: usize = chain("r2", 4_000)
        .iter()
        .map(|e| engine.ingest(e).unwrap().len())
        .sum();
    assert_eq!(matched, 1);

    // Replanning an RPQ is a successful no-op (its minimized DFA is
    // canonical) and does not disturb accumulated state.
    engine
        .replan(
            handle,
            &streamworks::SelectivityOrdered::default(),
            streamworks::TreeShapeKind::LeftDeep,
        )
        .unwrap();
    let matched: usize = chain("r3", 5_000)
        .iter()
        .map(|e| engine.ingest(e).unwrap().len())
        .sum();
    assert_eq!(matched, 1, "replan no-op must not disturb the matcher");

    // Deregister: the slot is released, the stale handle is rejected, and
    // further chains go unmatched.
    engine.deregister(handle).unwrap();
    assert!(engine.metrics(handle).is_err());
    let matched: usize = chain("d1", 6_000)
        .iter()
        .map(|e| engine.ingest(e).unwrap().len())
        .sum();
    assert_eq!(matched, 0);

    // Slot recycling: the next registration reuses the slot under a new
    // generation, so the old handle stays dead.
    let fresh = engine
        .register_rpq_dsl("RPQ life2 WINDOW 1h PATH a c")
        .unwrap();
    assert_eq!(fresh.id(), handle.id());
    assert_ne!(fresh, handle);
    assert!(engine.metrics(handle).is_err());
    assert!(engine.metrics(fresh).is_ok());
}

#[test]
fn wrong_query_kind_is_a_typed_error() {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let rpq = engine
        .register_rpq_dsl("RPQ kinds WINDOW 1h PATH a")
        .unwrap();
    let sj = engine
        .register_query(
            streamworks::QueryGraphBuilder::new("pair")
                .window(Duration::from_secs(3_600))
                .vertex("x", "V")
                .vertex("y", "V")
                .edge("x", "e", "y")
                .build()
                .unwrap(),
        )
        .unwrap();
    assert!(engine.plan(rpq).is_err(), "RPQ has no SJ-Tree plan");
    assert!(engine.rpq_query(sj).is_err(), "SJ query is not an RPQ");
    assert!(!engine.is_rpq(sj).unwrap());
    assert!(engine.rpq_query(rpq).is_ok());
}

// ---------------------------------------------------------------------------
// Checkpoint / restore mid-stream
// ---------------------------------------------------------------------------

#[test]
fn checkpoint_round_trip_mid_stream_preserves_rpq_semantics() {
    let rpq = parse_rpq("RPQ ckpt WINDOW 20s PATH a b* c").unwrap();
    let events = random_events(&["a", "b", "c"], 8, 200, 200, 0, 77);
    let (first, second) = events.split_at(events.len() / 2);

    // Original engine + oracle over the first half.
    let mut original = ContinuousQueryEngine::builder().build().unwrap();
    let handle = original.register_rpq(rpq.clone());
    let mut oracle = Oracle::new(&rpq);
    let mut now: Option<Timestamp> = None;
    for ev in first {
        let at = now.map_or(ev.timestamp, |n| n.max(ev.timestamp));
        now = Some(at);
        let mut got: Vec<(String, String)> =
            original.ingest(ev).unwrap().iter().map(pair_of).collect();
        got.sort();
        assert_eq!(got, oracle.ingest(ev, at));
    }

    // Cut: capture, serialise, restore. The restored engine must carry the
    // RPQ (as an RPQ, not a plan) and its reconstructed tree state.
    let json = EngineCheckpoint::capture(&original).to_json().unwrap();
    let mut restored = EngineCheckpoint::from_json(&json).unwrap().restore();
    let restored_handle = restored.handles()[0];
    assert!(restored.is_rpq(restored_handle).unwrap());
    assert_eq!(
        restored.rpq_query(restored_handle).unwrap().name(),
        rpq.name()
    );

    // Second half: the original, the restored engine and the oracle must
    // agree emission-for-emission. (The restored engine replayed only live
    // edges, so its already-reported pairs coincide with the original's.)
    for ev in second {
        let at = now.map_or(ev.timestamp, |n| n.max(ev.timestamp));
        now = Some(at);
        let mut from_original: Vec<(String, String)> = original
            .ingest(ev)
            .unwrap()
            .iter()
            .filter(|m| m.handle() == handle)
            .map(pair_of)
            .collect();
        from_original.sort();
        let mut from_restored: Vec<(String, String)> = restored
            .ingest(ev)
            .unwrap()
            .iter()
            .filter(|m| m.handle() == restored_handle)
            .map(pair_of)
            .collect();
        from_restored.sort();
        let want = oracle.ingest(ev, at);
        assert_eq!(from_original, want, "original diverged at {ev:?}");
        assert_eq!(from_restored, want, "restored diverged at {ev:?}");
    }
}

#[test]
fn checkpoint_interleaves_both_query_classes() {
    // Registration order SJ, RPQ, SJ, RPQ — the round-trip must preserve
    // each slot's kind and name.
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let mk_sj = |name: &str| {
        streamworks::QueryGraphBuilder::new(name)
            .window(Duration::from_secs(3_600))
            .vertex("x", "V")
            .vertex("y", "V")
            .edge("x", "e", "y")
            .build()
            .unwrap()
    };
    engine.register_query(mk_sj("sj_a")).unwrap();
    engine
        .register_rpq_dsl("RPQ rpq_a WINDOW 1h PATH a c")
        .unwrap();
    engine.register_query(mk_sj("sj_b")).unwrap();
    let paused = engine
        .register_rpq_dsl("RPQ rpq_b WINDOW 1h PATH a b* c")
        .unwrap();
    engine.pause(paused).unwrap();
    engine.ingest(&chain("seed", 1_000)[0]).unwrap();

    let restored = EngineCheckpoint::capture(&engine).restore();
    let handles: Vec<QueryHandle> = restored.handles();
    assert_eq!(handles.len(), 4);
    let kinds: Vec<bool> = handles
        .iter()
        .map(|&h| restored.is_rpq(h).unwrap())
        .collect();
    assert_eq!(kinds, vec![false, true, false, true]);
    assert_eq!(restored.rpq_query(handles[1]).unwrap().name(), "rpq_a");
    assert_eq!(restored.rpq_query(handles[3]).unwrap().name(), "rpq_b");
    assert!(restored.is_paused(handles[3]).unwrap());
    assert!(!restored.is_paused(handles[1]).unwrap());
}
