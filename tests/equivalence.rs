//! Equivalence of the incremental SJ-Tree engine with the baseline matchers.
//!
//! The strongest correctness evidence for the incremental algorithm is that,
//! on arbitrary streams and queries, it reports exactly the same set of
//! windowed embeddings as an exhaustive repeated search (and as the naive
//! per-edge expansion), each exactly once, and that every reported match
//! passes independent verification. These tests exercise that equivalence on
//! hand-built streams and on randomized streams via proptest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use streamworks::baseline::{verify_assignment, NaiveEdgeExpansion, RepeatedSearchMatcher};
use streamworks::query::{QueryEdgeId, QueryGraph, SelectivityOrdered};
use streamworks::{
    ContinuousQueryEngine, Duration, DynamicGraph, EdgeEvent, EngineConfig, QueryGraphBuilder,
    Timestamp, TreeShapeKind,
};

/// Canonical form of a match: the sorted (query edge, data edge id) pairs.
type Signature = Vec<(usize, u64)>;

/// Runs the incremental engine over a stream and returns every reported match
/// as a signature, plus the count of reports (to detect duplicates).
fn run_incremental(
    query: &QueryGraph,
    events: &[EdgeEvent],
    primitive_size: usize,
) -> (BTreeSet<Signature>, usize) {
    let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
    let id = engine
        .register_query_with(
            query.clone(),
            &SelectivityOrdered {
                max_primitive_size: primitive_size,
            },
            TreeShapeKind::LeftDeep,
        )
        .unwrap();
    let mut signatures = BTreeSet::new();
    let mut reports = 0usize;
    for ev in events {
        for m in engine.ingest(ev).unwrap() {
            assert_eq!(m.query, id.id());
            let sig: Signature = m.edges.iter().enumerate().map(|(q, e)| (q, e.0)).collect();
            signatures.insert(sig);
            reports += 1;
        }
    }
    (signatures, reports)
}

/// Runs the repeated-search baseline over the same stream.
fn run_repeated(query: &QueryGraph, events: &[EdgeEvent]) -> BTreeSet<Signature> {
    let mut graph = DynamicGraph::unbounded();
    let mut matcher = RepeatedSearchMatcher::new(query.clone());
    let mut signatures = BTreeSet::new();
    for ev in events {
        graph.ingest(ev);
        for emb in matcher.process_update(&graph) {
            signatures.insert(emb.signature());
        }
    }
    signatures
}

/// Runs the naive edge-expansion baseline over the same stream.
fn run_naive(query: &QueryGraph, events: &[EdgeEvent]) -> (BTreeSet<Signature>, usize) {
    let mut graph = DynamicGraph::unbounded();
    let mut matcher = NaiveEdgeExpansion::new(query.clone());
    let mut signatures = BTreeSet::new();
    let mut reports = 0usize;
    for ev in events {
        let r = graph.ingest(ev);
        let edge = graph.edge(r.edge).unwrap().clone();
        for emb in matcher.process_edge(&graph, &edge) {
            signatures.insert(emb.signature());
            reports += 1;
        }
    }
    (signatures, reports)
}

/// Checks all three matchers agree and that incremental matches verify.
fn assert_equivalent(query: &QueryGraph, events: &[EdgeEvent]) {
    let (inc1, reports1) = run_incremental(query, events, 1);
    let (inc2, _) = run_incremental(query, events, 2);
    let repeated = run_repeated(query, events);
    let (naive, naive_reports) = run_naive(query, events);

    assert_eq!(inc1, repeated, "incremental(size=1) vs repeated search");
    assert_eq!(inc2, repeated, "incremental(size=2) vs repeated search");
    assert_eq!(naive, repeated, "naive expansion vs repeated search");
    // No duplicate reports from the incremental engine or the naive baseline.
    assert_eq!(reports1, inc1.len(), "incremental reported duplicates");
    assert_eq!(naive_reports, naive.len(), "naive reported duplicates");

    // Every incremental match verifies independently.
    let mut reference = DynamicGraph::unbounded();
    for ev in events {
        reference.ingest(ev);
    }
    for sig in &inc1 {
        let assignment: Vec<(QueryEdgeId, streamworks::EdgeId)> = sig
            .iter()
            .map(|&(q, e)| (QueryEdgeId(q), streamworks::EdgeId(e)))
            .collect();
        verify_assignment(&reference, query, &assignment)
            .unwrap_or_else(|err| panic!("verification failed: {err:?} for {sig:?}"));
    }
}

// ---------------------------------------------------------------------------
// Hand-built scenarios
// ---------------------------------------------------------------------------

fn pair_query(window_secs: i64) -> QueryGraph {
    QueryGraphBuilder::new("pair")
        .window(Duration::from_secs(window_secs))
        .vertex("a1", "A")
        .vertex("a2", "A")
        .vertex("k", "K")
        .edge("a1", "rel", "k")
        .edge("a2", "rel", "k")
        .build()
        .unwrap()
}

fn triangle_query(window_secs: i64) -> QueryGraph {
    QueryGraphBuilder::new("triangle")
        .window(Duration::from_secs(window_secs))
        .vertex("a", "A")
        .vertex("b", "A")
        .vertex("c", "A")
        .edge("a", "rel", "b")
        .edge("b", "rel", "c")
        .edge("c", "rel", "a")
        .build()
        .unwrap()
}

#[test]
fn equivalence_on_shared_keyword_stream() {
    let events: Vec<EdgeEvent> = (0..20)
        .map(|i| {
            EdgeEvent::new(
                format!("a{}", i % 6),
                "A",
                format!("k{}", i % 3),
                "K",
                "rel",
                Timestamp::from_secs(i * 7),
            )
        })
        .collect();
    assert_equivalent(&pair_query(50), &events);
    assert_equivalent(&pair_query(10_000), &events);
}

#[test]
fn equivalence_on_triangles_with_parallel_edges() {
    let mut events = Vec::new();
    let hosts = ["x", "y", "z", "w"];
    for i in 0..30i64 {
        let src = hosts[(i % 4) as usize];
        let dst = hosts[((i + 1) % 4) as usize];
        events.push(EdgeEvent::new(
            src,
            "A",
            dst,
            "A",
            "rel",
            Timestamp::from_secs(i * 3),
        ));
        // Parallel edge with a different timestamp now and then.
        if i % 5 == 0 {
            events.push(EdgeEvent::new(
                src,
                "A",
                dst,
                "A",
                "rel",
                Timestamp::from_secs(i * 3 + 1),
            ));
        }
    }
    // Close a few triangles explicitly.
    events.push(EdgeEvent::new(
        "x",
        "A",
        "z",
        "A",
        "rel",
        Timestamp::from_secs(100),
    ));
    events.push(EdgeEvent::new(
        "z",
        "A",
        "y",
        "A",
        "rel",
        Timestamp::from_secs(101),
    ));
    events.push(EdgeEvent::new(
        "y",
        "A",
        "x",
        "A",
        "rel",
        Timestamp::from_secs(102),
    ));
    assert_equivalent(&triangle_query(40), &events);
}

#[test]
fn equivalence_with_mixed_types_and_predicates() {
    let query = QueryGraphBuilder::new("labelled")
        .window(Duration::from_secs(100))
        .vertex("a1", "A")
        .vertex("a2", "A")
        .vertex("k", "K")
        .edge_with(
            "a1",
            "rel",
            "k",
            vec![streamworks::Predicate::eq("label", "hot")],
        )
        .edge("a2", "rel", "k")
        .build()
        .unwrap();
    let mut events = Vec::new();
    for i in 0..25i64 {
        let mut ev = EdgeEvent::new(
            format!("a{}", i % 5),
            "A",
            format!("k{}", i % 2),
            "K",
            "rel",
            Timestamp::from_secs(i * 4),
        );
        if i % 3 == 0 {
            ev = ev.with_attr("label", "hot");
        }
        events.push(ev);
        // Noise of a different type.
        events.push(EdgeEvent::new(
            format!("a{}", i % 5),
            "A",
            format!("l{}", i % 4),
            "L",
            "other",
            Timestamp::from_secs(i * 4 + 1),
        ));
    }
    assert_equivalent(&query, &events);
}

// ---------------------------------------------------------------------------
// Randomized equivalence (seeded property-style cases)
// ---------------------------------------------------------------------------

/// Generates a random edge stream over a small vertex pool: the regime where
/// collisions (shared endpoints, parallel edges, mixed types) are dense enough
/// to exercise every join path.
fn random_stream(rng: &mut StdRng, max_len: usize) -> Vec<EdgeEvent> {
    let len = rng.gen_range(5..max_len);
    let mut t = 0i64;
    let mut events = Vec::with_capacity(len);
    while events.len() < len {
        let s = rng.gen_range(0..8u32);
        let d = rng.gen_range(0..8u32);
        if s == d {
            continue;
        }
        t += rng.gen_range(1..30i64);
        events.push(EdgeEvent::new(
            format!("v{s}"),
            "A",
            format!("v{d}"),
            "A",
            if rng.gen_bool(0.5) { "rel" } else { "other" },
            Timestamp::from_secs(t),
        ));
    }
    events
}

#[test]
fn random_streams_pair_query() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..24 {
        let events = random_stream(&mut rng, 40);
        let window = rng.gen_range(20i64..200);
        assert_equivalent(&pair_query(window), &events);
    }
}

#[test]
fn random_streams_triangle_query() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for _ in 0..24 {
        let events = random_stream(&mut rng, 30);
        let window = rng.gen_range(20i64..200);
        assert_equivalent(&triangle_query(window), &events);
    }
}

#[test]
fn random_streams_path_query() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..24 {
        let window = rng.gen_range(20i64..200);
        let query = QueryGraphBuilder::new("path3")
            .window(Duration::from_secs(window))
            .vertex("a", "A")
            .vertex("b", "A")
            .vertex("c", "A")
            .vertex("d", "A")
            .edge("a", "rel", "b")
            .edge("b", "rel", "c")
            .edge("c", "other", "d")
            .build()
            .unwrap();
        let events = random_stream(&mut rng, 35);
        assert_equivalent(&query, &events);
    }
}

// ---------------------------------------------------------------------------
// Realistic workload equivalence (cyber / news generators)
// ---------------------------------------------------------------------------

/// The optimized matcher must emit exactly the repeated-search baseline's
/// complete-match sets (order-insensitive) on random cyber traffic.
#[test]
fn equivalence_on_random_cyber_workload() {
    use streamworks::workloads::cyber::{CyberConfig, CyberTrafficGenerator};
    use streamworks::workloads::queries::{port_scan_query, worm_spread_query};
    use streamworks::workloads::AttackKind;

    for seed in [7u64, 19, 101] {
        let workload = CyberTrafficGenerator::new(CyberConfig {
            hosts: 40,
            background_edges: 250,
            attacks: vec![(AttackKind::PortScan, 3), (AttackKind::WormSpread, 3)],
            seed,
            ..Default::default()
        })
        .generate();
        assert_equivalent(
            &port_scan_query(3, Duration::from_mins(5)),
            &workload.events,
        );
        assert_equivalent(
            &worm_spread_query(2, Duration::from_mins(5)),
            &workload.events,
        );
    }
}

/// Same equivalence on random news streams with planted co-occurrences.
#[test]
fn equivalence_on_random_news_workload() {
    use streamworks::workloads::queries::labelled_news_query;
    use streamworks::workloads::{NewsConfig, NewsStreamGenerator};

    for seed in [3u64, 23] {
        let workload = NewsStreamGenerator::new(NewsConfig {
            articles: 60,
            keywords: 12,
            locations: 4,
            planted_events: vec![("politics".into(), 3)],
            seed,
            ..Default::default()
        })
        .generate();
        assert_equivalent(
            &labelled_news_query("politics", Duration::from_mins(30)),
            &workload.events,
        );
    }
}

/// Batched ingest must report exactly the same matches as per-event ingest,
/// across arbitrary batch boundaries.
#[test]
fn batch_ingest_equals_streaming_ingest() {
    use streamworks::workloads::queries::labelled_news_query;
    use streamworks::workloads::{NewsConfig, NewsStreamGenerator};

    let events = NewsStreamGenerator::new(NewsConfig {
        articles: 120,
        keywords: 10,
        locations: 4,
        planted_events: vec![("politics".into(), 4)],
        ..Default::default()
    })
    .generate()
    .events;
    let query = labelled_news_query("politics", Duration::from_mins(30));

    let per_event: Vec<_> = {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine.register_query(query.clone()).unwrap();
        events
            .iter()
            .flat_map(|ev| engine.ingest(ev).unwrap())
            .collect()
    };

    for chunk_size in [1usize, 7, 64, usize::MAX] {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine.register_query(query.clone()).unwrap();
        let mut batched = Vec::new();
        for chunk in events.chunks(chunk_size.min(events.len())) {
            batched.extend(engine.ingest(chunk).unwrap());
        }
        assert_eq!(batched.len(), per_event.len(), "chunk={chunk_size}");
        let sig = |m: &streamworks::MatchEvent| {
            let mut e: Vec<u64> = m.edges.iter().map(|e| e.0).collect();
            e.sort_unstable();
            e
        };
        let mut a: Vec<_> = batched.iter().map(sig).collect();
        let mut b: Vec<_> = per_event.iter().map(sig).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "chunk={chunk_size}");
    }
}

// ---------------------------------------------------------------------------
// Window semantics
// ---------------------------------------------------------------------------

#[test]
fn every_reported_match_is_within_its_window() {
    // Build a stream whose matches straddle the window boundary, then check
    // the span of every reported match against an independent recomputation
    // from the raw events.
    let window = Duration::from_secs(50);
    let query = pair_query(50);
    let events: Vec<EdgeEvent> = (0..40)
        .map(|i| {
            EdgeEvent::new(
                format!("a{i}"),
                "A",
                format!("k{}", i % 2),
                "K",
                "rel",
                Timestamp::from_secs(i * 13),
            )
        })
        .collect();

    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    engine.register_query(query).unwrap();
    let mut timestamps: HashMap<u64, i64> = HashMap::new();
    let mut count = 0;
    for ev in &events {
        // Track edge-id -> timestamp as the graph assigns ids in arrival order.
        timestamps.insert(timestamps.len() as u64, ev.timestamp.as_micros());
        for m in engine.ingest(ev).unwrap() {
            let times: Vec<i64> = m.edges.iter().map(|e| timestamps[&e.0]).collect();
            let span = times.iter().max().unwrap() - times.iter().min().unwrap();
            assert!(span < window.as_micros(), "span {span} exceeds window");
            assert_eq!(m.span.as_micros(), span);
            count += 1;
        }
    }
    assert!(count > 0, "the scenario should produce at least one match");
}

// ---------------------------------------------------------------------------
// Exact expiry
// ---------------------------------------------------------------------------

/// After stream time advances a full window past the last event, every
/// partial match is expirable — and with the unified store's exact min-heap
/// expiry, `partial_matches_live` must read exactly 0 on the single-threaded
/// AND the sharded path (the retired `MatchStore` FIFO could retain stale
/// matches behind an in-window head, so this figure used to read high).
#[test]
fn partial_matches_drain_to_zero_after_full_window() {
    use streamworks::workloads::cyber::{CyberConfig, CyberTrafficGenerator};
    use streamworks::workloads::queries::{labelled_news_query, port_scan_query};
    use streamworks::workloads::{AttackKind, NewsConfig, NewsStreamGenerator};

    let cyber = CyberTrafficGenerator::new(CyberConfig {
        hosts: 40,
        background_edges: 400,
        attacks: vec![(AttackKind::PortScan, 3)],
        seed: 9,
        ..Default::default()
    })
    .generate()
    .events;
    let news = NewsStreamGenerator::new(NewsConfig {
        articles: 80,
        planted_events: vec![("politics".into(), 3)],
        seed: 4,
        ..Default::default()
    })
    .generate()
    .events;

    let cases: Vec<(&str, QueryGraph, &[EdgeEvent])> = vec![
        (
            "cyber",
            port_scan_query(3, Duration::from_mins(5)),
            &cyber[..],
        ),
        (
            "news",
            labelled_news_query("politics", Duration::from_mins(30)),
            &news[..],
        ),
    ];
    for (workload, query, events) in cases {
        for shards in [1usize, 4] {
            let mut engine = ContinuousQueryEngine::builder()
                .shards(shards)
                .build()
                .unwrap();
            let handle = engine.register_query(query.clone()).unwrap();
            engine.ingest(events).unwrap();
            let live_before = engine.metrics(handle).unwrap().partial_matches_live;
            assert!(
                live_before > 0,
                "{workload}/shards={shards}: the stream must leave partial state behind"
            );
            // Advance stream time a full window past the last event with an
            // edge no query matches, then prune: everything must drain.
            let last = events.iter().map(|e| e.timestamp).max().unwrap();
            let far = Timestamp(last.0 + 100 * query.window().as_micros());
            engine
                .ingest(&EdgeEvent::new("x", "Noise", "y", "Noise", "noise", far))
                .unwrap();
            engine.prune_now();
            let metrics = engine.metrics(handle).unwrap();
            assert_eq!(
                metrics.partial_matches_live, 0,
                "{workload}/shards={shards}: exact expiry must drain every partial match"
            );
            assert!(metrics.partial_matches_expired >= live_before);
        }
    }
}
