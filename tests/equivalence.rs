//! Equivalence of the incremental SJ-Tree engine with the baseline matchers.
//!
//! The strongest correctness evidence for the incremental algorithm is that,
//! on arbitrary streams and queries, it reports exactly the same set of
//! windowed embeddings as an exhaustive repeated search (and as the naive
//! per-edge expansion), each exactly once, and that every reported match
//! passes independent verification. These tests exercise that equivalence on
//! hand-built streams and on randomized streams via proptest.

use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use streamworks::baseline::{verify_assignment, NaiveEdgeExpansion, RepeatedSearchMatcher};
use streamworks::query::{QueryEdgeId, QueryGraph, SelectivityOrdered};
use streamworks::{
    ContinuousQueryEngine, Duration, DynamicGraph, EdgeEvent, EngineConfig, QueryGraphBuilder,
    Timestamp, TreeShapeKind,
};

/// Canonical form of a match: the sorted (query edge, data edge id) pairs.
type Signature = Vec<(usize, u64)>;

/// Runs the incremental engine over a stream and returns every reported match
/// as a signature, plus the count of reports (to detect duplicates).
fn run_incremental(
    query: &QueryGraph,
    events: &[EdgeEvent],
    primitive_size: usize,
) -> (BTreeSet<Signature>, usize) {
    let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
    let id = engine
        .register_query_with(
            query.clone(),
            &SelectivityOrdered {
                max_primitive_size: primitive_size,
            },
            TreeShapeKind::LeftDeep,
        )
        .unwrap();
    let mut signatures = BTreeSet::new();
    let mut reports = 0usize;
    for ev in events {
        for m in engine.process(ev) {
            assert_eq!(m.query, id);
            let sig: Signature = m.edges.iter().enumerate().map(|(q, e)| (q, e.0)).collect();
            signatures.insert(sig);
            reports += 1;
        }
    }
    (signatures, reports)
}

/// Runs the repeated-search baseline over the same stream.
fn run_repeated(query: &QueryGraph, events: &[EdgeEvent]) -> BTreeSet<Signature> {
    let mut graph = DynamicGraph::unbounded();
    let mut matcher = RepeatedSearchMatcher::new(query.clone());
    let mut signatures = BTreeSet::new();
    for ev in events {
        graph.ingest(ev);
        for emb in matcher.process_update(&graph) {
            signatures.insert(emb.signature());
        }
    }
    signatures
}

/// Runs the naive edge-expansion baseline over the same stream.
fn run_naive(query: &QueryGraph, events: &[EdgeEvent]) -> (BTreeSet<Signature>, usize) {
    let mut graph = DynamicGraph::unbounded();
    let mut matcher = NaiveEdgeExpansion::new(query.clone());
    let mut signatures = BTreeSet::new();
    let mut reports = 0usize;
    for ev in events {
        let r = graph.ingest(ev);
        let edge = graph.edge(r.edge).unwrap().clone();
        for emb in matcher.process_edge(&graph, &edge) {
            signatures.insert(emb.signature());
            reports += 1;
        }
    }
    (signatures, reports)
}

/// Checks all three matchers agree and that incremental matches verify.
fn assert_equivalent(query: &QueryGraph, events: &[EdgeEvent]) {
    let (inc1, reports1) = run_incremental(query, events, 1);
    let (inc2, _) = run_incremental(query, events, 2);
    let repeated = run_repeated(query, events);
    let (naive, naive_reports) = run_naive(query, events);

    assert_eq!(inc1, repeated, "incremental(size=1) vs repeated search");
    assert_eq!(inc2, repeated, "incremental(size=2) vs repeated search");
    assert_eq!(naive, repeated, "naive expansion vs repeated search");
    // No duplicate reports from the incremental engine or the naive baseline.
    assert_eq!(reports1, inc1.len(), "incremental reported duplicates");
    assert_eq!(naive_reports, naive.len(), "naive reported duplicates");

    // Every incremental match verifies independently.
    let mut reference = DynamicGraph::unbounded();
    for ev in events {
        reference.ingest(ev);
    }
    for sig in &inc1 {
        let assignment: Vec<(QueryEdgeId, streamworks::EdgeId)> = sig
            .iter()
            .map(|&(q, e)| (QueryEdgeId(q), streamworks::EdgeId(e)))
            .collect();
        verify_assignment(&reference, query, &assignment)
            .unwrap_or_else(|err| panic!("verification failed: {err:?} for {sig:?}"));
    }
}

// ---------------------------------------------------------------------------
// Hand-built scenarios
// ---------------------------------------------------------------------------

fn pair_query(window_secs: i64) -> QueryGraph {
    QueryGraphBuilder::new("pair")
        .window(Duration::from_secs(window_secs))
        .vertex("a1", "A")
        .vertex("a2", "A")
        .vertex("k", "K")
        .edge("a1", "rel", "k")
        .edge("a2", "rel", "k")
        .build()
        .unwrap()
}

fn triangle_query(window_secs: i64) -> QueryGraph {
    QueryGraphBuilder::new("triangle")
        .window(Duration::from_secs(window_secs))
        .vertex("a", "A")
        .vertex("b", "A")
        .vertex("c", "A")
        .edge("a", "rel", "b")
        .edge("b", "rel", "c")
        .edge("c", "rel", "a")
        .build()
        .unwrap()
}

#[test]
fn equivalence_on_shared_keyword_stream() {
    let events: Vec<EdgeEvent> = (0..20)
        .map(|i| {
            EdgeEvent::new(
                format!("a{}", i % 6),
                "A",
                format!("k{}", i % 3),
                "K",
                "rel",
                Timestamp::from_secs(i * 7),
            )
        })
        .collect();
    assert_equivalent(&pair_query(50), &events);
    assert_equivalent(&pair_query(10_000), &events);
}

#[test]
fn equivalence_on_triangles_with_parallel_edges() {
    let mut events = Vec::new();
    let hosts = ["x", "y", "z", "w"];
    for i in 0..30i64 {
        let src = hosts[(i % 4) as usize];
        let dst = hosts[((i + 1) % 4) as usize];
        events.push(EdgeEvent::new(src, "A", dst, "A", "rel", Timestamp::from_secs(i * 3)));
        // Parallel edge with a different timestamp now and then.
        if i % 5 == 0 {
            events.push(EdgeEvent::new(src, "A", dst, "A", "rel", Timestamp::from_secs(i * 3 + 1)));
        }
    }
    // Close a few triangles explicitly.
    events.push(EdgeEvent::new("x", "A", "z", "A", "rel", Timestamp::from_secs(100)));
    events.push(EdgeEvent::new("z", "A", "y", "A", "rel", Timestamp::from_secs(101)));
    events.push(EdgeEvent::new("y", "A", "x", "A", "rel", Timestamp::from_secs(102)));
    assert_equivalent(&triangle_query(40), &events);
}

#[test]
fn equivalence_with_mixed_types_and_predicates() {
    let query = QueryGraphBuilder::new("labelled")
        .window(Duration::from_secs(100))
        .vertex("a1", "A")
        .vertex("a2", "A")
        .vertex("k", "K")
        .edge_with(
            "a1",
            "rel",
            "k",
            vec![streamworks::Predicate::eq("label", "hot")],
        )
        .edge("a2", "rel", "k")
        .build()
        .unwrap();
    let mut events = Vec::new();
    for i in 0..25i64 {
        let mut ev = EdgeEvent::new(
            format!("a{}", i % 5),
            "A",
            format!("k{}", i % 2),
            "K",
            "rel",
            Timestamp::from_secs(i * 4),
        );
        if i % 3 == 0 {
            ev = ev.with_attr("label", "hot");
        }
        events.push(ev);
        // Noise of a different type.
        events.push(EdgeEvent::new(
            format!("a{}", i % 5),
            "A",
            format!("l{}", i % 4),
            "L",
            "other",
            Timestamp::from_secs(i * 4 + 1),
        ));
    }
    assert_equivalent(&query, &events);
}

// ---------------------------------------------------------------------------
// Randomized equivalence (proptest)
// ---------------------------------------------------------------------------

/// A compact random stream description: (src, dst, type index, time gap).
fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u8, u8, u8, i64)>> {
    prop::collection::vec((0u8..8, 0u8..8, 0u8..2, 1i64..30), 5..max_len)
}

fn to_events(raw: &[(u8, u8, u8, i64)]) -> Vec<EdgeEvent> {
    let mut t = 0i64;
    raw.iter()
        .filter(|(s, d, _, _)| s != d)
        .map(|&(s, d, ty, gap)| {
            t += gap;
            EdgeEvent::new(
                format!("v{s}"),
                "A",
                format!("v{d}"),
                "A",
                if ty == 0 { "rel" } else { "other" },
                Timestamp::from_secs(t),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_streams_pair_query(raw in stream_strategy(40), window in 20i64..200) {
        let events = to_events(&raw);
        prop_assume!(!events.is_empty());
        assert_equivalent(&pair_query(window), &events);
    }

    #[test]
    fn random_streams_triangle_query(raw in stream_strategy(30), window in 20i64..200) {
        let events = to_events(&raw);
        prop_assume!(!events.is_empty());
        assert_equivalent(&triangle_query(window), &events);
    }

    #[test]
    fn random_streams_path_query(raw in stream_strategy(35), window in 20i64..200) {
        let query = QueryGraphBuilder::new("path3")
            .window(Duration::from_secs(window))
            .vertex("a", "A")
            .vertex("b", "A")
            .vertex("c", "A")
            .vertex("d", "A")
            .edge("a", "rel", "b")
            .edge("b", "rel", "c")
            .edge("c", "other", "d")
            .build()
            .unwrap();
        let events = to_events(&raw);
        prop_assume!(!events.is_empty());
        assert_equivalent(&query, &events);
    }
}

// ---------------------------------------------------------------------------
// Window semantics
// ---------------------------------------------------------------------------

#[test]
fn every_reported_match_is_within_its_window() {
    // Build a stream whose matches straddle the window boundary, then check
    // the span of every reported match against an independent recomputation
    // from the raw events.
    let window = Duration::from_secs(50);
    let query = pair_query(50);
    let events: Vec<EdgeEvent> = (0..40)
        .map(|i| {
            EdgeEvent::new(
                format!("a{i}"),
                "A",
                format!("k{}", i % 2),
                "K",
                "rel",
                Timestamp::from_secs(i * 13),
            )
        })
        .collect();

    let mut engine = ContinuousQueryEngine::with_defaults();
    engine.register_query(query).unwrap();
    let mut timestamps: HashMap<u64, i64> = HashMap::new();
    let mut count = 0;
    for ev in &events {
        // Track edge-id -> timestamp as the graph assigns ids in arrival order.
        timestamps.insert(timestamps.len() as u64, ev.timestamp.as_micros());
        for m in engine.process(ev) {
            let times: Vec<i64> = m.edges.iter().map(|e| timestamps[&e.0]).collect();
            let span = times.iter().max().unwrap() - times.iter().min().unwrap();
            assert!(span < window.as_micros(), "span {span} exceeds window");
            assert_eq!(m.span.as_micros(), span);
            count += 1;
        }
    }
    assert!(count > 0, "the scenario should produce at least one match");
}
