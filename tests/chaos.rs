//! Deterministic fault-injection (chaos) suite.
//!
//! Run with:
//!
//! ```text
//! cargo test --features failpoints --test chaos
//! ```
//!
//! Every scenario arms one of the named failpoint sites (see
//! `streamworks::failpoint`), drives the engine, and pins down the exact
//! containment contract of ARCHITECTURE.md's "Failure model":
//!
//! * `FailFast`: a dead shard surfaces as a structured
//!   [`EngineError::ShardFailed`] within bounded time (no hang), and the
//!   poisoned engine rejects every later call instead of silently
//!   under-reporting matches.
//! * `Degrade`: the dead shard's join state is transplanted onto survivors
//!   and the match multiset stays *exactly* equal to an unfaulted engine's —
//!   across shard counts, fault sites, and query-lifecycle churn.
//! * Sink quarantine: a panicking subscriber is detached and recorded, and
//!   neither the engine nor the other subscribers miss a single event.
//! * Drop counters are exact under declared overflow policies.
//! * Durable delivery: a flaky transport storm converges back to `Active`
//!   within the retry budget, quarantine recovers through probation, and a
//!   crash at *any* failpoint site followed by checkpoint-restore leaves
//!   every durable delivery log bit-identical to an uninterrupted run.

#![cfg(feature = "failpoints")]

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration as StdDuration;

use streamworks::engine::EngineCheckpoint;
use streamworks::failpoint::{self, FailAction};
use streamworks::{
    clear_endpoint, memory_sink_contents, register_endpoint, reset_memory_sink, BufferingSink,
    CallbackSink, ContinuousQueryEngine, EdgeEvent, EngineError, MatchEvent, QueryHandle,
    RetryPolicy, ShardFailurePolicy, SinkOverflow, SinkSpec, SubscriptionHealth, TelemetryLevel,
    Timestamp, Transport,
};

/// The failpoint registry is process-global; chaos scenarios must not run
/// interleaved. Lock recovery keeps one panicking test from wedging the rest.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    failpoint::clear();
    guard
}

const PAIR_DSL: &str = "QUERY pair WINDOW 1h \
     MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)";

/// Registers the pair query decomposed into *single-edge* primitives, so
/// completing a match requires a join climb — the work that actually lives
/// on the shard workers. (The default planner would fold both edges into
/// one primitive, completing every match driver-side and leaving the
/// workers — and their failpoint sites — idle.)
fn register_pair(engine: &mut ContinuousQueryEngine) -> streamworks::QueryHandle {
    let query = streamworks::parse_query(PAIR_DSL).unwrap();
    engine
        .register_query_with(
            query,
            &streamworks::SelectivityOrdered {
                max_primitive_size: 1,
            },
            streamworks::TreeShapeKind::LeftDeep,
        )
        .unwrap()
}

/// A stream where article `a{i}` mentions keyword `k{i % collisions}`:
/// every repeated keyword completes pair matches, spreading join state over
/// all shards (the join key hashes the keyword vertex).
fn stream(n: usize, collisions: usize) -> Vec<EdgeEvent> {
    (0..n)
        .map(|i| {
            EdgeEvent::new(
                format!("a{i}"),
                "Article",
                format!("k{}", i % collisions),
                "Keyword",
                "mentions",
                Timestamp::from_secs(i as i64),
            )
        })
        .collect()
}

fn engine_with(shards: usize, policy: ShardFailurePolicy) -> ContinuousQueryEngine {
    ContinuousQueryEngine::builder()
        .shards(shards)
        .shard_failure_policy(policy)
        .channel_capacity(8)
        .build()
        .unwrap()
}

/// Order-insensitive signature of a match multiset.
fn multiset(events: &[MatchEvent]) -> Vec<String> {
    let mut keys: Vec<String> = events.iter().map(|e| e.render()).collect();
    keys.sort();
    keys
}

/// The match multiset an unfaulted single-shard engine reports for `events`,
/// fed in the same batch shape.
fn reference_multiset(events: &[EdgeEvent], batch: usize) -> Vec<String> {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    register_pair(&mut engine);
    let mut all = Vec::new();
    for chunk in events.chunks(batch) {
        all.extend(engine.ingest(chunk).unwrap());
    }
    multiset(&all)
}

#[test]
fn failfast_shard_panic_is_a_bounded_time_structured_error() {
    let _guard = serial();
    // Shard counts above 1 only: a 1-shard engine runs the in-process
    // matcher with no worker threads, so shard faults cannot exist there.
    for shards in [2usize, 4] {
        failpoint::clear();
        failpoint::configure("shard-worker", 0, FailAction::Panic, 0);
        let events = stream(64, 4);
        // The faulted ingest runs on a helper thread so a protocol hang
        // shows up as a test failure, not a CI timeout.
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let mut engine = engine_with(shards, ShardFailurePolicy::FailFast);
            register_pair(&mut engine);
            let first = engine.ingest(&events[..]);
            let second = engine.ingest(&events[..4]);
            let _ = tx.send((first, second));
        });
        let (first, second) = rx
            .recv_timeout(StdDuration::from_secs(30))
            .expect("FailFast must surface within bounded time, not hang");
        handle.join().unwrap();
        match first {
            Err(EngineError::ShardFailed {
                shard,
                degraded,
                ref message,
            }) => {
                assert_eq!(shard, 0);
                assert!(!degraded, "FailFast never degrades");
                assert!(message.contains("injected"), "got: {message}");
            }
            other => panic!("{shards} shards: expected ShardFailed, got {other:?}"),
        }
        assert!(
            matches!(second, Err(EngineError::Poisoned(_))),
            "a poisoned engine rejects every later call, got {second:?}"
        );
    }
    failpoint::clear();
}

#[test]
fn degrade_preserves_the_exact_match_multiset_across_fault_sites() {
    let _guard = serial();
    let events = stream(96, 5);
    let batch = 16;
    let expected = reference_multiset(&events, batch);
    for shards in [2usize, 4] {
        for site in ["shard-worker", "join-climb"] {
            failpoint::clear();
            // Let a few batches through first so the dying shard holds real
            // join state when it goes down.
            failpoint::configure(site, 0, FailAction::Panic, 2);
            let mut engine = engine_with(shards, ShardFailurePolicy::Degrade);
            let handle = register_pair(&mut engine);
            let (sink, seen) = BufferingSink::new();
            engine.subscribe(handle, sink).unwrap();
            let mut failures = 0;
            for chunk in events.chunks(batch) {
                match engine.ingest(chunk) {
                    Ok(_) => {}
                    Err(EngineError::ShardFailed { degraded, .. }) => {
                        assert!(degraded, "Degrade policy must contain the failure");
                        failures += 1;
                    }
                    Err(other) => panic!("unexpected error: {other:?}"),
                }
            }
            assert_eq!(failures, 1, "{site} on {shards} shards fired once");
            assert_eq!(
                multiset(&seen.drain()),
                expected,
                "{site} fault on {shards} shards changed the match multiset"
            );
        }
    }
    failpoint::clear();
}

#[test]
fn degrade_survives_expiry_sweep_faults() {
    let _guard = serial();
    let events = stream(96, 5);
    let batch = 16;
    let expected = reference_multiset(&events, batch);
    failpoint::clear();
    failpoint::configure("expiry-sweep", 0, FailAction::Panic, 0);
    let mut engine = ContinuousQueryEngine::builder()
        .shards(2)
        .shard_failure_policy(ShardFailurePolicy::Degrade)
        .prune_every(8) // make sweeps frequent enough to hit the site
        .build()
        .unwrap();
    let handle = register_pair(&mut engine);
    let (sink, seen) = BufferingSink::new();
    engine.subscribe(handle, sink).unwrap();
    let mut failures = 0;
    for chunk in events.chunks(batch) {
        match engine.ingest(chunk) {
            Ok(_) => {}
            Err(EngineError::ShardFailed { degraded, .. }) => {
                assert!(degraded);
                failures += 1;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert_eq!(failures, 1);
    assert_eq!(multiset(&seen.drain()), expected);
    failpoint::clear();
}

#[test]
fn degrade_stays_exact_under_lifecycle_churn() {
    let _guard = serial();
    let events = stream(96, 5);
    let batch = 16;
    // Reference: unfaulted single-shard engine with the *same* pause/resume
    // choreography (pause during the third batch, resume for the fifth).
    // Matches are observed through a subscription: a degraded batch returns
    // an error in place of its matches, but its subscribers still receive
    // every one of them.
    let choreography = |engine: &mut ContinuousQueryEngine| -> Vec<MatchEvent> {
        let pair = register_pair(engine);
        let extra = engine
            .register_dsl(
                "QUERY colocated WINDOW 1h \
                 MATCH (a1:Article)-[:located]->(l:Location), (a2:Article)-[:located]->(l)",
            )
            .unwrap();
        let (sink, seen) = BufferingSink::new();
        engine.subscribe(pair, sink).unwrap();
        for (i, chunk) in events.chunks(batch).enumerate() {
            if i == 2 {
                engine.pause(pair).unwrap();
            }
            if i == 4 {
                engine.resume(pair).unwrap();
                engine.deregister(extra).unwrap();
            }
            match engine.ingest(chunk) {
                Ok(_) => {}
                Err(EngineError::ShardFailed { degraded, .. }) => assert!(degraded),
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        seen.drain()
    };
    let mut reference = ContinuousQueryEngine::builder().build().unwrap();
    let expected = multiset(&choreography(&mut reference));

    failpoint::clear();
    failpoint::configure("shard-worker", 1, FailAction::Panic, 1);
    let mut faulted = engine_with(4, ShardFailurePolicy::Degrade);
    let got = multiset(&choreography(&mut faulted));
    assert_eq!(
        got, expected,
        "lifecycle churn + shard death changed matches"
    );
    failpoint::clear();
}

#[test]
fn seeded_faults_are_contained_for_any_seed() {
    let _guard = serial();
    let events = stream(64, 4);
    let batch = 16;
    let expected = reference_multiset(&events, batch);
    let sites: &[(&'static str, usize)] = &[
        ("shard-worker", 0),
        ("shard-worker", 1),
        ("join-climb", 0),
        ("join-climb", 1),
    ];
    for seed in 0..12u64 {
        failpoint::clear();
        let armed = failpoint::arm_seeded(seed, sites);
        let mut engine = engine_with(2, ShardFailurePolicy::Degrade);
        let handle = register_pair(&mut engine);
        let (sink, seen) = BufferingSink::new();
        engine.subscribe(handle, sink).unwrap();
        for chunk in events.chunks(batch) {
            match engine.ingest(chunk) {
                Ok(_) => {}
                Err(EngineError::ShardFailed { degraded, .. }) => {
                    assert!(degraded, "seed {seed} armed {armed:?}: must degrade")
                }
                Err(other) => panic!("seed {seed} armed {armed:?}: {other:?}"),
            }
        }
        assert_eq!(
            multiset(&seen.drain()),
            expected,
            "seed {seed} armed {armed:?} changed the match multiset"
        );
    }
    failpoint::clear();
}

#[test]
fn panicking_sink_is_quarantined_without_poisoning_anything() {
    let _guard = serial();
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    let bad = engine
        .subscribe(
            handle,
            CallbackSink::new(|_e| panic!("subscriber exploded")),
        )
        .unwrap();
    let (sink, seen) = BufferingSink::new();
    let good = engine.subscribe(handle, sink).unwrap();

    let events = stream(8, 2);
    let matches = engine.ingest(&events[..]).unwrap();
    assert!(!matches.is_empty());
    // The healthy subscriber and the call-level collection saw everything.
    assert_eq!(seen.drain().len(), matches.len());
    // The panicking sink is quarantined with its panic message recorded...
    match engine.subscription_health(bad).unwrap() {
        SubscriptionHealth::Quarantined(message) => {
            assert!(message.contains("subscriber exploded"), "got: {message}")
        }
        // In-process sinks never retry: Degraded is a durable-only state.
        SubscriptionHealth::Active | SubscriptionHealth::Degraded { .. } => {
            panic!("panicking sink must be quarantined")
        }
    }
    assert_eq!(
        engine.subscription_health(good).unwrap(),
        SubscriptionHealth::Active
    );
    // ...and stays registered (health queryable) but silent from then on.
    assert_eq!(engine.subscription_count(handle).unwrap(), 2);
    let more = engine.ingest(&stream(8, 2)[..]).unwrap();
    assert_eq!(seen.drain().len(), more.len());
    // Unsubscribing the quarantined sink works like any other.
    engine.unsubscribe(bad).unwrap();
    assert_eq!(engine.subscription_count(handle).unwrap(), 1);
}

#[test]
fn injected_sink_delivery_error_quarantines_exactly_the_target_token() {
    let _guard = serial();
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    let (sink_a, seen_a) = BufferingSink::new();
    let sub_a = engine.subscribe(handle, sink_a).unwrap();
    let (sink_b, seen_b) = BufferingSink::new();
    let sub_b = engine.subscribe(handle, sink_b).unwrap();

    // Token indexes select the victim: quarantine b, leave a alone.
    failpoint::clear();
    failpoint::configure(
        "sink-delivery",
        sub_b.token() as usize,
        FailAction::Error,
        0,
    );
    let matches = engine.ingest(&stream(8, 2)[..]).unwrap();
    assert!(!matches.is_empty());
    assert_eq!(seen_a.drain().len(), matches.len());
    assert!(
        seen_b.drain().len() < matches.len(),
        "the quarantined sink stopped receiving at the injected failure"
    );
    assert_eq!(
        engine.subscription_health(sub_a).unwrap(),
        SubscriptionHealth::Active
    );
    assert!(matches!(
        engine.subscription_health(sub_b).unwrap(),
        SubscriptionHealth::Quarantined(_)
    ));
    failpoint::clear();
}

#[test]
fn sink_drop_counters_are_exact() {
    let _guard = serial();
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    let cap = 3usize;
    let (sink, buffer) = BufferingSink::bounded(cap, SinkOverflow::DropNewest);
    engine.subscribe(handle, sink).unwrap();

    let matches = engine.ingest(&stream(16, 2)[..]).unwrap();
    assert!(matches.len() > cap);
    let expected_drops = (matches.len() - cap) as u64;
    assert_eq!(buffer.len(), cap);
    assert_eq!(buffer.dropped(), expected_drops);
    assert_eq!(
        engine.metrics(handle).unwrap().sink_events_dropped,
        expected_drops,
        "QueryMetrics folds per-subscriber drop counters exactly"
    );
}

#[test]
fn ingest_front_faults_leave_the_engine_consistent() {
    let _guard = serial();
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    register_pair(&mut engine);
    let events = stream(4, 2);

    // Delay: pure latency, no behavioural change.
    failpoint::clear();
    failpoint::configure("ingest-front", 0, FailAction::Delay(5), 0);
    let first = engine.ingest(&events[..2]).unwrap();

    // Panic: unwinds before any state is touched; the engine keeps working.
    failpoint::configure("ingest-front", 0, FailAction::Panic, 0);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = engine.ingest(&events[2..]);
    }));
    assert!(panicked.is_err());
    failpoint::clear();
    let second = engine.ingest(&events[2..]).unwrap();
    assert_eq!(
        multiset(&first).len() + multiset(&second).len(),
        reference_multiset(&events, 2).len(),
        "the aborted call absorbed nothing: replaying it reports every match"
    );
}

#[test]
fn degraded_engine_checkpoints_and_restores_cleanly() {
    let _guard = serial();
    let events = stream(96, 5);
    let batch = 16;
    // Reference: unfaulted engine over the same split, collecting only the
    // second half's matches (the restored engine replays silently).
    let mut reference = ContinuousQueryEngine::builder().build().unwrap();
    register_pair(&mut reference);
    for chunk in events[..48].chunks(batch) {
        reference.ingest(chunk).unwrap();
    }
    let mut expected = Vec::new();
    for chunk in events[48..].chunks(batch) {
        expected.extend(reference.ingest(chunk).unwrap());
    }

    // Faulted run: shard dies in the first half, engine degrades, then the
    // degraded engine is checkpointed through the JSON load path.
    failpoint::clear();
    failpoint::configure("shard-worker", 0, FailAction::Panic, 1);
    let mut engine = engine_with(2, ShardFailurePolicy::Degrade);
    register_pair(&mut engine);
    let mut failures = 0;
    for chunk in events[..48].chunks(batch) {
        match engine.ingest(chunk) {
            Ok(_) => {}
            Err(EngineError::ShardFailed { degraded, .. }) => {
                assert!(degraded);
                failures += 1;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert_eq!(failures, 1);
    failpoint::clear(); // the restored engine must replay unfaulted
    let json = engine.checkpoint().to_json().unwrap();
    let checkpoint = streamworks::engine::EngineCheckpoint::load(&json).unwrap();
    let mut restored = checkpoint.restore();
    // The restore rebuilt fresh shard workers; the second half matches the
    // unfaulted reference exactly.
    let mut got = Vec::new();
    for chunk in events[48..].chunks(batch) {
        got.extend(restored.ingest(chunk).unwrap());
    }
    assert_eq!(multiset(&got), multiset(&expected));
}

// ---------------------------------------------------------------------------
// Durable delivery: retry storms, quarantine recovery, crash-exact resume.
// ---------------------------------------------------------------------------

/// A [`Transport`] that refuses the first `failures_left` sends, then
/// records every line it accepts. Failed sends record nothing, so the
/// recorded lines are exactly the acknowledged deliveries.
struct FlakyRecorder {
    lines: Arc<Mutex<Vec<String>>>,
    failures_left: Arc<AtomicU64>,
}

impl Transport for FlakyRecorder {
    fn send(&mut self, line: &str, _timeout: StdDuration) -> Result<(), String> {
        if self.failures_left.load(Ordering::SeqCst) > 0 {
            self.failures_left.fetch_sub(1, Ordering::SeqCst);
            return Err("storm: endpoint refused the line".to_owned());
        }
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(line.to_owned());
        Ok(())
    }
}

/// A [`Transport`] behind a breaker: every send fails while `broken`, and
/// records the line once the breaker is closed.
struct BreakerRecorder {
    lines: Arc<Mutex<Vec<String>>>,
    broken: Arc<AtomicBool>,
}

impl Transport for BreakerRecorder {
    fn send(&mut self, line: &str, _timeout: StdDuration) -> Result<(), String> {
        if self.broken.load(Ordering::SeqCst) {
            return Err("endpoint down".to_owned());
        }
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(line.to_owned());
        Ok(())
    }
}

/// The sorted delivery lines an unfaulted run produces: durable sinks write
/// `MatchEvent::render()` lines, so the match multiset doubles as the
/// expected delivery log content.
fn sorted_lines(mut lines: Vec<String>) -> Vec<String> {
    lines.sort();
    lines
}

#[test]
fn a_retry_storm_converges_back_to_active_within_the_policy_budget() {
    let _guard = serial();
    let events = stream(32, 4);
    let batch = 8;
    let expected = reference_multiset(&events, batch);
    for shards in [1usize, 2, 4] {
        let address = format!("chaos-retry-storm-{shards}");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let failures_left = Arc::new(AtomicU64::new(3));
        {
            let lines = Arc::clone(&lines);
            let failures_left = Arc::clone(&failures_left);
            register_endpoint(address.clone(), move |_| {
                Ok(Box::new(FlakyRecorder {
                    lines: Arc::clone(&lines),
                    failures_left: Arc::clone(&failures_left),
                }) as Box<dyn Transport>)
            });
        }
        let mut engine = ContinuousQueryEngine::builder()
            .shards(shards)
            .channel_capacity(8)
            .retry_policy(RetryPolicy {
                max_attempts: 8,
                backoff_base_ms: 0,
                backoff_cap_ms: 0,
                attempt_timeout_ms: 1_000,
            })
            .build()
            .unwrap();
        let handle = register_pair(&mut engine);
        let sub = engine
            .subscribe_durable(
                handle,
                SinkSpec::Endpoint {
                    address: address.clone(),
                },
            )
            .unwrap();
        for chunk in events.chunks(batch) {
            engine.ingest(chunk).unwrap();
        }
        // Convergence is bounded by the retry budget: each flush is at most
        // one more retry, and the transport injects exactly 3 failures.
        for _ in 0..8 {
            if engine.flush_deliveries() == 0 {
                break;
            }
        }
        assert_eq!(
            engine.subscription_health(sub).unwrap(),
            SubscriptionHealth::Active,
            "{shards} shards: the storm must converge back to Active"
        );
        let metrics = engine.metrics(handle).unwrap();
        assert!(
            metrics.delivery_retries >= 3,
            "{shards} shards: 3 injected failures force >= 3 retries, got {}",
            metrics.delivery_retries
        );
        assert!(
            metrics.delivery_recoveries >= 1,
            "{shards} shards: converging back to Active is a recovery"
        );
        assert_eq!(metrics.cursor_lag, 0, "{shards} shards: nothing pending");
        let got = sorted_lines(lines.lock().unwrap_or_else(PoisonError::into_inner).clone());
        assert_eq!(
            got, expected,
            "{shards} shards: the storm lost or duplicated matches"
        );
        clear_endpoint(&address);
    }
}

#[test]
fn a_quarantined_endpoint_recovers_through_probation() {
    let _guard = serial();
    let events = stream(32, 4);
    let batch = 8;
    let expected = reference_multiset(&events, batch);
    for shards in [1usize, 2, 4] {
        let address = format!("chaos-quarantine-{shards}");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let broken = Arc::new(AtomicBool::new(true));
        {
            let lines = Arc::clone(&lines);
            let broken = Arc::clone(&broken);
            register_endpoint(address.clone(), move |_| {
                Ok(Box::new(BreakerRecorder {
                    lines: Arc::clone(&lines),
                    broken: Arc::clone(&broken),
                }) as Box<dyn Transport>)
            });
        }
        // Tiny budget, huge backoff cap: the subscription quarantines fast
        // and the automatic probe stays out of the picture, so recovery is
        // observed through the explicit `resubscribe` probation path.
        let mut engine = ContinuousQueryEngine::builder()
            .shards(shards)
            .channel_capacity(8)
            .retry_policy(RetryPolicy {
                max_attempts: 2,
                backoff_base_ms: 0,
                backoff_cap_ms: 600_000,
                attempt_timeout_ms: 1_000,
            })
            .build()
            .unwrap();
        let handle = register_pair(&mut engine);
        let sub = engine
            .subscribe_durable(
                handle,
                SinkSpec::Endpoint {
                    address: address.clone(),
                },
            )
            .unwrap();
        for chunk in events.chunks(batch) {
            engine.ingest(chunk).unwrap();
        }
        assert!(
            matches!(
                engine.subscription_health(sub).unwrap(),
                SubscriptionHealth::Quarantined(_)
            ),
            "{shards} shards: exhausted budget must quarantine"
        );
        assert!(
            lines
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty(),
            "{shards} shards: nothing delivered while the endpoint is down"
        );
        // Fix the endpoint, then put the subscription on probation.
        broken.store(false, Ordering::SeqCst);
        engine.resubscribe(sub).unwrap();
        assert_eq!(engine.flush_deliveries(), 0, "{shards} shards: drained");
        assert_eq!(
            engine.subscription_health(sub).unwrap(),
            SubscriptionHealth::Active,
            "{shards} shards: probation must promote back to Active"
        );
        let got = sorted_lines(lines.lock().unwrap_or_else(PoisonError::into_inner).clone());
        assert_eq!(
            got, expected,
            "{shards} shards: quarantine must not lose a single match"
        );
        assert_eq!(engine.metrics(handle).unwrap().cursor_lag, 0);
        clear_endpoint(&address);
    }
}

#[test]
fn failfast_with_a_durable_subscriber_still_fails_within_bounded_time() {
    let _guard = serial();
    for shards in [2usize, 4] {
        failpoint::clear();
        failpoint::configure("shard-worker", 0, FailAction::Panic, 0);
        let key = format!("chaos_failfast_durable_{shards}");
        reset_memory_sink(&key);
        let (tx, rx) = std::sync::mpsc::channel();
        let sink_key = key.clone();
        let handle = std::thread::spawn(move || {
            let mut engine = engine_with(shards, ShardFailurePolicy::FailFast);
            let h = register_pair(&mut engine);
            engine
                .subscribe_durable(h, SinkSpec::Memory { key: sink_key })
                .unwrap();
            let first = engine.ingest(&stream(64, 4)[..]);
            let pending = engine.flush_deliveries();
            let _ = tx.send((first, pending));
        });
        let (first, pending) = rx
            .recv_timeout(StdDuration::from_secs(30))
            .expect("FailFast with a durable subscriber must not hang");
        handle.join().unwrap();
        assert!(
            matches!(
                first,
                Err(EngineError::ShardFailed {
                    degraded: false,
                    ..
                })
            ),
            "{shards} shards: expected a FailFast ShardFailed, got {first:?}"
        );
        assert_eq!(pending, 0, "{shards} shards: no delivery left hanging");
    }
    failpoint::clear();
}

#[test]
fn degrade_with_a_durable_subscriber_stays_exact() {
    let _guard = serial();
    let events = stream(96, 5);
    let batch = 16;
    let expected = reference_multiset(&events, batch);
    for shards in [2usize, 4] {
        failpoint::clear();
        failpoint::configure("shard-worker", 0, FailAction::Panic, 2);
        let key = format!("chaos_degrade_durable_{shards}");
        reset_memory_sink(&key);
        let mut engine = engine_with(shards, ShardFailurePolicy::Degrade);
        let handle = register_pair(&mut engine);
        engine
            .subscribe_durable(handle, SinkSpec::Memory { key: key.clone() })
            .unwrap();
        let mut failures = 0;
        for chunk in events.chunks(batch) {
            match engine.ingest(chunk) {
                Ok(_) => {}
                Err(EngineError::ShardFailed { degraded, .. }) => {
                    assert!(degraded);
                    failures += 1;
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert_eq!(failures, 1);
        assert_eq!(engine.flush_deliveries(), 0);
        assert_eq!(
            sorted_lines(memory_sink_contents(&key)),
            expected,
            "{shards} shards: shard death changed what the durable sink saw"
        );
    }
    failpoint::clear();
}

#[test]
fn ack_failures_are_exactly_once_for_owned_sinks_at_least_once_for_endpoints() {
    let _guard = serial();
    let events = stream(16, 2);
    let expected = reference_multiset(&events, 4);

    // Owned sink (Memory): the reconnect-per-retry truncates the
    // delivered-but-unacknowledged line away, so the redelivery is
    // *exactly*-once despite the injected ack failure.
    failpoint::clear();
    failpoint::configure("delivery-ack", 0, FailAction::Error, 1);
    let key = "chaos_ack_memory";
    reset_memory_sink(key);
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    engine
        .subscribe_durable(
            handle,
            SinkSpec::Memory {
                key: key.to_owned(),
            },
        )
        .unwrap();
    for chunk in events.chunks(4) {
        engine.ingest(chunk).unwrap();
    }
    for _ in 0..4 {
        if engine.flush_deliveries() == 0 {
            break;
        }
    }
    assert_eq!(
        sorted_lines(memory_sink_contents(key)),
        expected,
        "owned sinks are exactly-once even when the ack fails"
    );
    assert!(engine.metrics(handle).unwrap().delivery_retries >= 1);

    // External endpoint: the engine cannot reach inside it to truncate, so
    // the same injected ack failure yields exactly one duplicated line —
    // at-least-once, never lossy.
    failpoint::clear();
    failpoint::configure("delivery-ack", 0, FailAction::Error, 1);
    let address = "chaos-ack-endpoint";
    let lines = Arc::new(Mutex::new(Vec::new()));
    {
        let lines = Arc::clone(&lines);
        register_endpoint(address, move |_| {
            Ok(Box::new(FlakyRecorder {
                lines: Arc::clone(&lines),
                failures_left: Arc::new(AtomicU64::new(0)),
            }) as Box<dyn Transport>)
        });
    }
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    engine
        .subscribe_durable(
            handle,
            SinkSpec::Endpoint {
                address: address.to_owned(),
            },
        )
        .unwrap();
    for chunk in events.chunks(4) {
        engine.ingest(chunk).unwrap();
    }
    for _ in 0..4 {
        if engine.flush_deliveries() == 0 {
            break;
        }
    }
    let got = lines.lock().unwrap_or_else(PoisonError::into_inner).clone();
    assert_eq!(
        got.len(),
        expected.len() + 1,
        "the unacknowledged endpoint line is redelivered once"
    );
    let mut deduped = got.clone();
    deduped.sort();
    deduped.dedup();
    assert_eq!(deduped, expected, "no line is lost, only duplicated");
    clear_endpoint(address);
    failpoint::clear();
}

// --- Crash-point harness -------------------------------------------------

/// Scratch path for a durable delivery log, unique per test and process.
fn scratch_log(name: &str) -> String {
    let dir = std::env::temp_dir().join("sw_chaos_delivery");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}_{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path.to_string_lossy().into_owned()
}

/// Drives batches `range` of `events` (global batch indices) with a fixed
/// pause/resume choreography keyed to those indices, so an interrupted run,
/// its restored continuation, and the uninterrupted reference all perform
/// the *same* lifecycle churn. Degraded shard failures are tolerated.
fn drive_with_churn(
    engine: &mut ContinuousQueryEngine,
    handle: QueryHandle,
    events: &[EdgeEvent],
    batch: usize,
    range: std::ops::Range<usize>,
) {
    for i in range {
        let lo = i * batch;
        let hi = usize::min(lo + batch, events.len());
        if i == 1 || i == 5 {
            engine.pause(handle).unwrap();
        }
        if i == 2 || i == 6 {
            engine.resume(handle).unwrap();
        }
        match engine.ingest(&events[lo..hi]) {
            Ok(_) => {}
            Err(EngineError::ShardFailed { degraded, .. }) => assert!(degraded),
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
}

/// Kill → restore → continue, at every failpoint site, across shard counts,
/// under pause/resume churn: the durable delivery log must end up
/// *bit-identical* to an uninterrupted run's. (Within one shard count the
/// emission order is deterministic: completed matches are sorted by stream
/// position, and every completion for one position climbs on the single
/// shard owning its join key, whose FIFO order ties preserve.)
///
/// The crash is simulated by abandoning the engine wherever the armed panic
/// leaves it — including delivered-but-unacknowledged lines on disk, which
/// the restore's truncate-to-cursor reconnect must discard. Sites that a
/// given topology never reaches (e.g. `shard-worker` on 1 shard) make the
/// run complete uninterrupted; the restore then rewinds its *entire* second
/// half, which is exactly the duplicate-suppression contract again.
#[test]
fn crash_at_every_site_restores_bit_identical_delivery_logs() {
    let _guard = serial();
    let events = stream(64, 4);
    let batch = 8; // 8 batches; checkpoint at the batch-4 boundary
    let sites = [
        "ingest-front",
        "shard-worker",
        "join-climb",
        "expiry-sweep",
        "delivery-retry",
        "delivery-ack",
    ];
    for shards in [1usize, 2, 4] {
        // Uninterrupted reference run with the same choreography.
        failpoint::clear();
        let reference_path = scratch_log(&format!("reference_{shards}"));
        let mut reference = engine_with(shards, ShardFailurePolicy::Degrade);
        let rh = register_pair(&mut reference);
        reference
            .subscribe_durable(
                rh,
                SinkSpec::LogFile {
                    path: reference_path.clone(),
                },
            )
            .unwrap();
        drive_with_churn(&mut reference, rh, &events, batch, 0..8);
        assert_eq!(reference.flush_deliveries(), 0);
        drop(reference);
        let want = std::fs::read(&reference_path).unwrap();
        assert!(!want.is_empty(), "the reference run must deliver matches");

        for site in sites {
            failpoint::clear();
            let path = scratch_log(&format!("crash_{shards}_{site}"));
            // First life: run to the midpoint, checkpoint, then arm the
            // crash and continue until it strikes (or the run ends).
            let mut first = engine_with(shards, ShardFailurePolicy::Degrade);
            let h = register_pair(&mut first);
            first
                .subscribe_durable(h, SinkSpec::LogFile { path: path.clone() })
                .unwrap();
            drive_with_churn(&mut first, h, &events, batch, 0..4);
            let json = first.checkpoint().to_json().unwrap();
            failpoint::configure(site, 0, FailAction::Panic, 1);
            let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                drive_with_churn(&mut first, h, &events, batch, 4..8);
            }));
            failpoint::clear();
            drop(first); // the "kill": whatever it wrote past the cursor stays on disk

            // Second life: restore, which truncates the log back to the
            // acknowledged cursor, then replay the post-checkpoint half.
            let checkpoint = EngineCheckpoint::load(&json).unwrap();
            let mut second = checkpoint
                .try_restore()
                .unwrap_or_else(|e| panic!("{site}/{shards}: restore failed: {e:?}"));
            let h2 = second.handles()[0];
            drive_with_churn(&mut second, h2, &events, batch, 4..8);
            assert_eq!(
                second.flush_deliveries(),
                0,
                "{site}/{shards}: restored run left deliveries pending"
            );
            assert_eq!(
                engine_health(&second),
                SubscriptionHealth::Active,
                "{site}/{shards}: durable subscriber must end Active"
            );
            drop(second);
            let got = std::fs::read(&path).unwrap();
            assert_eq!(
                got, want,
                "{site}/{shards}: crash+restore delivery log diverges from the \
                 uninterrupted run"
            );
        }
    }
    failpoint::clear();
}

/// Health of the single durable subscription of the engine's only query —
/// restored engines hand back no [`streamworks::SubscriptionId`], so it is
/// recovered through `durable_subscriptions`.
fn engine_health(engine: &ContinuousQueryEngine) -> SubscriptionHealth {
    let handle = engine.handles()[0];
    let sub = engine.durable_subscriptions(handle).unwrap()[0];
    engine.subscription_health(sub).unwrap()
}

/// Telemetry under fault injection: a shard dies mid-run under `Degrade`,
/// and the span rings and histograms must stay coherent — spans from both
/// the driver and the surviving workers, a JSON dump that parses, and
/// ingest counters that reflect every event. Observability being trustworthy
/// *during* an incident is its whole purpose.
#[test]
fn telemetry_spans_survive_shard_faults_and_dump_as_json() {
    let _guard = serial();
    let events = stream(600, 6);
    failpoint::configure("shard-worker", 0, FailAction::Panic, 2);
    let mut engine = ContinuousQueryEngine::builder()
        .shards(2)
        .shard_failure_policy(ShardFailurePolicy::Degrade)
        .channel_capacity(8)
        .telemetry_level(TelemetryLevel::Sampled)
        .telemetry_sample_every(1)
        .build()
        .unwrap();
    register_pair(&mut engine);
    let mut faulted = 0usize;
    for chunk in events.chunks(64) {
        match engine.ingest(chunk) {
            Ok(_) => {}
            Err(EngineError::ShardFailed { degraded, .. }) => {
                assert!(degraded);
                faulted += 1;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert!(faulted > 0, "the armed shard-worker panic must fire");
    failpoint::clear();

    let snap = engine.telemetry_snapshot();
    assert_eq!(snap.events_ingested, events.len() as u64);
    assert!(
        snap.spans.iter().any(|s| s.shard == -1),
        "driver-side spans survive the fault"
    );
    assert!(
        snap.spans.iter().any(|s| s.shard >= 0),
        "worker-side spans survive the fault"
    );
    assert!(
        snap.stages
            .iter()
            .any(|s| s.name == "join_climb" && s.count > 0),
        "climb latency kept being recorded on the surviving shard"
    );

    // The postmortem artifact itself: the JSON dump parses and carries the
    // spans; the Prometheus rendering exposes the stage histograms.
    let doc = serde_json::parse(&snap.to_json()).unwrap();
    let spans = doc.get_field("spans").and_then(|v| v.as_array()).unwrap();
    assert_eq!(spans.len(), snap.spans.len());
    assert!(snap
        .to_prometheus()
        .contains("streamworks_stage_latency_ns_bucket"));
}
