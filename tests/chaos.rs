//! Deterministic fault-injection (chaos) suite.
//!
//! Run with:
//!
//! ```text
//! cargo test --features failpoints --test chaos
//! ```
//!
//! Every scenario arms one of the named failpoint sites (see
//! `streamworks::failpoint`), drives the engine, and pins down the exact
//! containment contract of ARCHITECTURE.md's "Failure model":
//!
//! * `FailFast`: a dead shard surfaces as a structured
//!   [`EngineError::ShardFailed`] within bounded time (no hang), and the
//!   poisoned engine rejects every later call instead of silently
//!   under-reporting matches.
//! * `Degrade`: the dead shard's join state is transplanted onto survivors
//!   and the match multiset stays *exactly* equal to an unfaulted engine's —
//!   across shard counts, fault sites, and query-lifecycle churn.
//! * Sink quarantine: a panicking subscriber is detached and recorded, and
//!   neither the engine nor the other subscribers miss a single event.
//! * Drop counters are exact under declared overflow policies.

#![cfg(feature = "failpoints")]

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration as StdDuration;

use streamworks::failpoint::{self, FailAction};
use streamworks::{
    BufferingSink, CallbackSink, ContinuousQueryEngine, EdgeEvent, EngineError, MatchEvent,
    ShardFailurePolicy, SinkOverflow, SubscriptionHealth, Timestamp,
};

/// The failpoint registry is process-global; chaos scenarios must not run
/// interleaved. Lock recovery keeps one panicking test from wedging the rest.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    failpoint::clear();
    guard
}

const PAIR_DSL: &str = "QUERY pair WINDOW 1h \
     MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)";

/// Registers the pair query decomposed into *single-edge* primitives, so
/// completing a match requires a join climb — the work that actually lives
/// on the shard workers. (The default planner would fold both edges into
/// one primitive, completing every match driver-side and leaving the
/// workers — and their failpoint sites — idle.)
fn register_pair(engine: &mut ContinuousQueryEngine) -> streamworks::QueryHandle {
    let query = streamworks::parse_query(PAIR_DSL).unwrap();
    engine
        .register_query_with(
            query,
            &streamworks::SelectivityOrdered {
                max_primitive_size: 1,
            },
            streamworks::TreeShapeKind::LeftDeep,
        )
        .unwrap()
}

/// A stream where article `a{i}` mentions keyword `k{i % collisions}`:
/// every repeated keyword completes pair matches, spreading join state over
/// all shards (the join key hashes the keyword vertex).
fn stream(n: usize, collisions: usize) -> Vec<EdgeEvent> {
    (0..n)
        .map(|i| {
            EdgeEvent::new(
                format!("a{i}"),
                "Article",
                format!("k{}", i % collisions),
                "Keyword",
                "mentions",
                Timestamp::from_secs(i as i64),
            )
        })
        .collect()
}

fn engine_with(shards: usize, policy: ShardFailurePolicy) -> ContinuousQueryEngine {
    ContinuousQueryEngine::builder()
        .shards(shards)
        .shard_failure_policy(policy)
        .channel_capacity(8)
        .build()
        .unwrap()
}

/// Order-insensitive signature of a match multiset.
fn multiset(events: &[MatchEvent]) -> Vec<String> {
    let mut keys: Vec<String> = events.iter().map(|e| e.render()).collect();
    keys.sort();
    keys
}

/// The match multiset an unfaulted single-shard engine reports for `events`,
/// fed in the same batch shape.
fn reference_multiset(events: &[EdgeEvent], batch: usize) -> Vec<String> {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    register_pair(&mut engine);
    let mut all = Vec::new();
    for chunk in events.chunks(batch) {
        all.extend(engine.ingest(chunk).unwrap());
    }
    multiset(&all)
}

#[test]
fn failfast_shard_panic_is_a_bounded_time_structured_error() {
    let _guard = serial();
    // Shard counts above 1 only: a 1-shard engine runs the in-process
    // matcher with no worker threads, so shard faults cannot exist there.
    for shards in [2usize, 4] {
        failpoint::clear();
        failpoint::configure("shard-worker", 0, FailAction::Panic, 0);
        let events = stream(64, 4);
        // The faulted ingest runs on a helper thread so a protocol hang
        // shows up as a test failure, not a CI timeout.
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let mut engine = engine_with(shards, ShardFailurePolicy::FailFast);
            register_pair(&mut engine);
            let first = engine.ingest(&events[..]);
            let second = engine.ingest(&events[..4]);
            let _ = tx.send((first, second));
        });
        let (first, second) = rx
            .recv_timeout(StdDuration::from_secs(30))
            .expect("FailFast must surface within bounded time, not hang");
        handle.join().unwrap();
        match first {
            Err(EngineError::ShardFailed {
                shard,
                degraded,
                ref message,
            }) => {
                assert_eq!(shard, 0);
                assert!(!degraded, "FailFast never degrades");
                assert!(message.contains("injected"), "got: {message}");
            }
            other => panic!("{shards} shards: expected ShardFailed, got {other:?}"),
        }
        assert!(
            matches!(second, Err(EngineError::Poisoned(_))),
            "a poisoned engine rejects every later call, got {second:?}"
        );
    }
    failpoint::clear();
}

#[test]
fn degrade_preserves_the_exact_match_multiset_across_fault_sites() {
    let _guard = serial();
    let events = stream(96, 5);
    let batch = 16;
    let expected = reference_multiset(&events, batch);
    for shards in [2usize, 4] {
        for site in ["shard-worker", "join-climb"] {
            failpoint::clear();
            // Let a few batches through first so the dying shard holds real
            // join state when it goes down.
            failpoint::configure(site, 0, FailAction::Panic, 2);
            let mut engine = engine_with(shards, ShardFailurePolicy::Degrade);
            let handle = register_pair(&mut engine);
            let (sink, seen) = BufferingSink::new();
            engine.subscribe(handle, sink).unwrap();
            let mut failures = 0;
            for chunk in events.chunks(batch) {
                match engine.ingest(chunk) {
                    Ok(_) => {}
                    Err(EngineError::ShardFailed { degraded, .. }) => {
                        assert!(degraded, "Degrade policy must contain the failure");
                        failures += 1;
                    }
                    Err(other) => panic!("unexpected error: {other:?}"),
                }
            }
            assert_eq!(failures, 1, "{site} on {shards} shards fired once");
            assert_eq!(
                multiset(&seen.drain()),
                expected,
                "{site} fault on {shards} shards changed the match multiset"
            );
        }
    }
    failpoint::clear();
}

#[test]
fn degrade_survives_expiry_sweep_faults() {
    let _guard = serial();
    let events = stream(96, 5);
    let batch = 16;
    let expected = reference_multiset(&events, batch);
    failpoint::clear();
    failpoint::configure("expiry-sweep", 0, FailAction::Panic, 0);
    let mut engine = ContinuousQueryEngine::builder()
        .shards(2)
        .shard_failure_policy(ShardFailurePolicy::Degrade)
        .prune_every(8) // make sweeps frequent enough to hit the site
        .build()
        .unwrap();
    let handle = register_pair(&mut engine);
    let (sink, seen) = BufferingSink::new();
    engine.subscribe(handle, sink).unwrap();
    let mut failures = 0;
    for chunk in events.chunks(batch) {
        match engine.ingest(chunk) {
            Ok(_) => {}
            Err(EngineError::ShardFailed { degraded, .. }) => {
                assert!(degraded);
                failures += 1;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert_eq!(failures, 1);
    assert_eq!(multiset(&seen.drain()), expected);
    failpoint::clear();
}

#[test]
fn degrade_stays_exact_under_lifecycle_churn() {
    let _guard = serial();
    let events = stream(96, 5);
    let batch = 16;
    // Reference: unfaulted single-shard engine with the *same* pause/resume
    // choreography (pause during the third batch, resume for the fifth).
    // Matches are observed through a subscription: a degraded batch returns
    // an error in place of its matches, but its subscribers still receive
    // every one of them.
    let choreography = |engine: &mut ContinuousQueryEngine| -> Vec<MatchEvent> {
        let pair = register_pair(engine);
        let extra = engine
            .register_dsl(
                "QUERY colocated WINDOW 1h \
                 MATCH (a1:Article)-[:located]->(l:Location), (a2:Article)-[:located]->(l)",
            )
            .unwrap();
        let (sink, seen) = BufferingSink::new();
        engine.subscribe(pair, sink).unwrap();
        for (i, chunk) in events.chunks(batch).enumerate() {
            if i == 2 {
                engine.pause(pair).unwrap();
            }
            if i == 4 {
                engine.resume(pair).unwrap();
                engine.deregister(extra).unwrap();
            }
            match engine.ingest(chunk) {
                Ok(_) => {}
                Err(EngineError::ShardFailed { degraded, .. }) => assert!(degraded),
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        seen.drain()
    };
    let mut reference = ContinuousQueryEngine::builder().build().unwrap();
    let expected = multiset(&choreography(&mut reference));

    failpoint::clear();
    failpoint::configure("shard-worker", 1, FailAction::Panic, 1);
    let mut faulted = engine_with(4, ShardFailurePolicy::Degrade);
    let got = multiset(&choreography(&mut faulted));
    assert_eq!(
        got, expected,
        "lifecycle churn + shard death changed matches"
    );
    failpoint::clear();
}

#[test]
fn seeded_faults_are_contained_for_any_seed() {
    let _guard = serial();
    let events = stream(64, 4);
    let batch = 16;
    let expected = reference_multiset(&events, batch);
    let sites: &[(&'static str, usize)] = &[
        ("shard-worker", 0),
        ("shard-worker", 1),
        ("join-climb", 0),
        ("join-climb", 1),
    ];
    for seed in 0..12u64 {
        failpoint::clear();
        let armed = failpoint::arm_seeded(seed, sites);
        let mut engine = engine_with(2, ShardFailurePolicy::Degrade);
        let handle = register_pair(&mut engine);
        let (sink, seen) = BufferingSink::new();
        engine.subscribe(handle, sink).unwrap();
        for chunk in events.chunks(batch) {
            match engine.ingest(chunk) {
                Ok(_) => {}
                Err(EngineError::ShardFailed { degraded, .. }) => {
                    assert!(degraded, "seed {seed} armed {armed:?}: must degrade")
                }
                Err(other) => panic!("seed {seed} armed {armed:?}: {other:?}"),
            }
        }
        assert_eq!(
            multiset(&seen.drain()),
            expected,
            "seed {seed} armed {armed:?} changed the match multiset"
        );
    }
    failpoint::clear();
}

#[test]
fn panicking_sink_is_quarantined_without_poisoning_anything() {
    let _guard = serial();
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    let bad = engine
        .subscribe(
            handle,
            CallbackSink::new(|_e| panic!("subscriber exploded")),
        )
        .unwrap();
    let (sink, seen) = BufferingSink::new();
    let good = engine.subscribe(handle, sink).unwrap();

    let events = stream(8, 2);
    let matches = engine.ingest(&events[..]).unwrap();
    assert!(!matches.is_empty());
    // The healthy subscriber and the call-level collection saw everything.
    assert_eq!(seen.drain().len(), matches.len());
    // The panicking sink is quarantined with its panic message recorded...
    match engine.subscription_health(bad).unwrap() {
        SubscriptionHealth::Quarantined(message) => {
            assert!(message.contains("subscriber exploded"), "got: {message}")
        }
        SubscriptionHealth::Active => panic!("panicking sink must be quarantined"),
    }
    assert_eq!(
        engine.subscription_health(good).unwrap(),
        SubscriptionHealth::Active
    );
    // ...and stays registered (health queryable) but silent from then on.
    assert_eq!(engine.subscription_count(handle).unwrap(), 2);
    let more = engine.ingest(&stream(8, 2)[..]).unwrap();
    assert_eq!(seen.drain().len(), more.len());
    // Unsubscribing the quarantined sink works like any other.
    engine.unsubscribe(bad).unwrap();
    assert_eq!(engine.subscription_count(handle).unwrap(), 1);
}

#[test]
fn injected_sink_delivery_error_quarantines_exactly_the_target_token() {
    let _guard = serial();
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    let (sink_a, seen_a) = BufferingSink::new();
    let sub_a = engine.subscribe(handle, sink_a).unwrap();
    let (sink_b, seen_b) = BufferingSink::new();
    let sub_b = engine.subscribe(handle, sink_b).unwrap();

    // Token indexes select the victim: quarantine b, leave a alone.
    failpoint::clear();
    failpoint::configure(
        "sink-delivery",
        sub_b.token() as usize,
        FailAction::Error,
        0,
    );
    let matches = engine.ingest(&stream(8, 2)[..]).unwrap();
    assert!(!matches.is_empty());
    assert_eq!(seen_a.drain().len(), matches.len());
    assert!(
        seen_b.drain().len() < matches.len(),
        "the quarantined sink stopped receiving at the injected failure"
    );
    assert_eq!(
        engine.subscription_health(sub_a).unwrap(),
        SubscriptionHealth::Active
    );
    assert!(matches!(
        engine.subscription_health(sub_b).unwrap(),
        SubscriptionHealth::Quarantined(_)
    ));
    failpoint::clear();
}

#[test]
fn sink_drop_counters_are_exact() {
    let _guard = serial();
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let handle = register_pair(&mut engine);
    let cap = 3usize;
    let (sink, buffer) = BufferingSink::bounded(cap, SinkOverflow::DropNewest);
    engine.subscribe(handle, sink).unwrap();

    let matches = engine.ingest(&stream(16, 2)[..]).unwrap();
    assert!(matches.len() > cap);
    let expected_drops = (matches.len() - cap) as u64;
    assert_eq!(buffer.len(), cap);
    assert_eq!(buffer.dropped(), expected_drops);
    assert_eq!(
        engine.metrics(handle).unwrap().sink_events_dropped,
        expected_drops,
        "QueryMetrics folds per-subscriber drop counters exactly"
    );
}

#[test]
fn ingest_front_faults_leave_the_engine_consistent() {
    let _guard = serial();
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    register_pair(&mut engine);
    let events = stream(4, 2);

    // Delay: pure latency, no behavioural change.
    failpoint::clear();
    failpoint::configure("ingest-front", 0, FailAction::Delay(5), 0);
    let first = engine.ingest(&events[..2]).unwrap();

    // Panic: unwinds before any state is touched; the engine keeps working.
    failpoint::configure("ingest-front", 0, FailAction::Panic, 0);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = engine.ingest(&events[2..]);
    }));
    assert!(panicked.is_err());
    failpoint::clear();
    let second = engine.ingest(&events[2..]).unwrap();
    assert_eq!(
        multiset(&first).len() + multiset(&second).len(),
        reference_multiset(&events, 2).len(),
        "the aborted call absorbed nothing: replaying it reports every match"
    );
}

#[test]
fn degraded_engine_checkpoints_and_restores_cleanly() {
    let _guard = serial();
    let events = stream(96, 5);
    let batch = 16;
    // Reference: unfaulted engine over the same split, collecting only the
    // second half's matches (the restored engine replays silently).
    let mut reference = ContinuousQueryEngine::builder().build().unwrap();
    register_pair(&mut reference);
    for chunk in events[..48].chunks(batch) {
        reference.ingest(chunk).unwrap();
    }
    let mut expected = Vec::new();
    for chunk in events[48..].chunks(batch) {
        expected.extend(reference.ingest(chunk).unwrap());
    }

    // Faulted run: shard dies in the first half, engine degrades, then the
    // degraded engine is checkpointed through the JSON load path.
    failpoint::clear();
    failpoint::configure("shard-worker", 0, FailAction::Panic, 1);
    let mut engine = engine_with(2, ShardFailurePolicy::Degrade);
    register_pair(&mut engine);
    let mut failures = 0;
    for chunk in events[..48].chunks(batch) {
        match engine.ingest(chunk) {
            Ok(_) => {}
            Err(EngineError::ShardFailed { degraded, .. }) => {
                assert!(degraded);
                failures += 1;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert_eq!(failures, 1);
    failpoint::clear(); // the restored engine must replay unfaulted
    let json = engine.checkpoint().to_json().unwrap();
    let checkpoint = streamworks::engine::EngineCheckpoint::load(&json).unwrap();
    let mut restored = checkpoint.restore();
    // The restore rebuilt fresh shard workers; the second half matches the
    // unfaulted reference exactly.
    let mut got = Vec::new();
    for chunk in events[48..].chunks(batch) {
        got.extend(restored.ingest(chunk).unwrap());
    }
    assert_eq!(multiset(&got), multiset(&expected));
}
