//! Randomized differential oracle for the subtree-sharing layer.
//!
//! The contract under test: with subtree sharing and predicate-constant
//! lifting enabled (the defaults), the engine reports **exactly** the same
//! per-query match multiset as (a) the same engine with all sharing
//! disabled, and (b) one completely independent engine per query — for any
//! shard count, and under register → pause → resume → deregister churn
//! applied identically to every contender. The registries come from the
//! seeded [`differential_workload`] generator, whose template families are
//! built to provoke every sharing regime at once (exact structural copies,
//! copies differing only in an equality constant, unpredicated copies,
//! non-sharing singletons); a failure therefore reproduces from its printed
//! seed alone.

use std::collections::BTreeMap;
use streamworks::workloads::{differential_workload, DifferentialConfig};
use streamworks::{ContinuousQueryEngine, EdgeEvent, MatchEvent, QueryGraph, QueryHandle};

/// Canonical multiset of matches: how often each (query name, data-edge
/// assignment) was reported. Count maps also catch duplicated or missing
/// reports of the same embedding.
fn multiset(events: &[MatchEvent]) -> BTreeMap<(String, Vec<u64>), usize> {
    let mut out = BTreeMap::new();
    for ev in events {
        let edges: Vec<u64> = ev.edges.iter().map(|e| e.0).collect();
        *out.entry((ev.query_name.clone(), edges)).or_insert(0) += 1;
    }
    out
}

/// One lifecycle action, applied at a chunk boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Register query `.1` (it is withheld from initial registration).
    Register(usize),
    Pause(usize),
    Resume(usize),
    Deregister(usize),
}

impl Action {
    fn query(self) -> usize {
        match self {
            Action::Register(q) | Action::Pause(q) | Action::Resume(q) | Action::Deregister(q) => q,
        }
    }
}

const CHUNKS: usize = 8;

/// Builds a deterministic churn schedule: roughly a third of the queries
/// get a lifecycle (pause/resume, pause-forever, deregister, or late
/// registration) at seed-chosen chunk boundaries.
fn churn_schedule(seed: u64, queries: usize) -> Vec<(usize, Action)> {
    // Cheap deterministic per-query draws via splitmix64 — the schedule only
    // needs to be fixed and varied, not statistically strong.
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut schedule = Vec::new();
    for q in 0..queries {
        if next() % 3 != 0 {
            continue;
        }
        let a = 1 + (next() as usize) % (CHUNKS - 2); // in 1..CHUNKS-1
        match next() % 4 {
            0 => {
                let b = a + 1 + (next() as usize) % (CHUNKS - 1 - a);
                schedule.push((a, Action::Pause(q)));
                schedule.push((b, Action::Resume(q)));
            }
            1 => schedule.push((a, Action::Pause(q))),
            2 => schedule.push((a, Action::Deregister(q))),
            _ => schedule.push((a, Action::Register(q))),
        }
    }
    schedule.sort_by_key(|(chunk, a)| (*chunk, a.query()));
    schedule
}

/// Drives one engine through the event stream and churn schedule, returning
/// every match it reported. `restrict` limits the registry (and the
/// schedule) to a single query index — the one-engine-per-query oracle.
fn drive(
    queries: &[QueryGraph],
    events: &[EdgeEvent],
    schedule: &[(usize, Action)],
    shared: bool,
    shards: usize,
    restrict: Option<usize>,
) -> Vec<MatchEvent> {
    let mut engine = ContinuousQueryEngine::builder()
        .shared_matching(shared)
        .shards(shards)
        .build()
        .unwrap();
    let wanted = |q: usize| restrict.is_none_or(|only| only == q);
    let late: Vec<usize> = schedule
        .iter()
        .filter_map(|(_, a)| match a {
            Action::Register(q) => Some(*q),
            _ => None,
        })
        .collect();
    let mut handles: Vec<Option<QueryHandle>> = vec![None; queries.len()];
    for (qi, q) in queries.iter().enumerate() {
        if wanted(qi) && !late.contains(&qi) {
            handles[qi] = Some(engine.register_query(q.clone()).unwrap());
        }
    }
    let mut matches = Vec::new();
    let chunk_len = events.len().div_ceil(CHUNKS);
    for (chunk, slice) in events.chunks(chunk_len).enumerate() {
        for (at, action) in schedule {
            if *at != chunk || !wanted(action.query()) {
                continue;
            }
            match *action {
                Action::Register(q) => {
                    handles[q] = Some(engine.register_query(queries[q].clone()).unwrap());
                }
                Action::Pause(q) => engine.pause(handles[q].unwrap()).unwrap(),
                Action::Resume(q) => engine.resume(handles[q].unwrap()).unwrap(),
                Action::Deregister(q) => engine.deregister(handles[q].take().unwrap()).unwrap(),
            }
        }
        matches.extend(engine.ingest(slice).unwrap());
    }
    matches
}

/// Runs the full comparison for one seed: sharing-on (subtree + lifted, the
/// default) versus sharing-off, at the given shard count, plus — when
/// `oracle` — one independent engine per query.
fn check_seed(seed: u64, shards: usize, oracle: bool) {
    let workload = differential_workload(&DifferentialConfig {
        seed,
        ..Default::default()
    });
    let schedule = churn_schedule(seed, workload.queries.len());
    let reference = multiset(&drive(
        &workload.queries,
        &workload.events,
        &schedule,
        false,
        1,
        None,
    ));
    assert!(
        !reference.is_empty(),
        "seed {seed}: workload must produce matches"
    );
    let shared = multiset(&drive(
        &workload.queries,
        &workload.events,
        &schedule,
        true,
        shards,
        None,
    ));
    assert_eq!(
        shared, reference,
        "seed {seed}, shards {shards}: sharing-on diverged from sharing-off"
    );
    if oracle {
        let mut independent = BTreeMap::new();
        for qi in 0..workload.queries.len() {
            let matches = drive(
                &workload.queries,
                &workload.events,
                &schedule,
                false,
                1,
                Some(qi),
            );
            for (k, v) in multiset(&matches) {
                *independent.entry(k).or_insert(0) += v;
            }
        }
        assert_eq!(
            shared, independent,
            "seed {seed}: sharing-on diverged from one-engine-per-query"
        );
    }
}

// The ≥20-seed sweep, split so a failure names its seed range. Shard counts
// cycle 1/2/4 across seeds; every third seed also runs the
// one-engine-per-query oracle.

#[test]
fn differential_seeds_0_to_6() {
    for seed in 0..7u64 {
        check_seed(seed, [1, 2, 4][seed as usize % 3], seed % 3 == 0);
    }
}

#[test]
fn differential_seeds_7_to_13() {
    for seed in 7..14u64 {
        check_seed(seed, [1, 2, 4][seed as usize % 3], seed % 3 == 0);
    }
}

#[test]
fn differential_seeds_14_to_20() {
    for seed in 14..21u64 {
        check_seed(seed, [1, 2, 4][seed as usize % 3], seed % 3 == 0);
    }
}

/// Lifting disabled but subtree interning on: the middle configuration must
/// also agree with the reference (constant-varied families fall back to the
/// leaf layer, exact-copy families still intern whole subtrees).
#[test]
fn subtree_without_lifting_agrees_too() {
    for seed in [3u64, 8, 15] {
        let workload = differential_workload(&DifferentialConfig {
            seed,
            ..Default::default()
        });
        let schedule = churn_schedule(seed, workload.queries.len());
        let reference = multiset(&drive(
            &workload.queries,
            &workload.events,
            &schedule,
            false,
            1,
            None,
        ));
        let mut engine_matches = Vec::new();
        {
            let mut engine = ContinuousQueryEngine::builder()
                .lifted_sharing(false)
                .build()
                .unwrap();
            let mut handles: Vec<Option<QueryHandle>> = vec![None; workload.queries.len()];
            let late: Vec<usize> = schedule
                .iter()
                .filter_map(|(_, a)| match a {
                    Action::Register(q) => Some(*q),
                    _ => None,
                })
                .collect();
            for (qi, q) in workload.queries.iter().enumerate() {
                if !late.contains(&qi) {
                    handles[qi] = Some(engine.register_query(q.clone()).unwrap());
                }
            }
            let chunk_len = workload.events.len().div_ceil(CHUNKS);
            for (chunk, slice) in workload.events.chunks(chunk_len).enumerate() {
                for (at, action) in &schedule {
                    if *at != chunk {
                        continue;
                    }
                    match *action {
                        Action::Register(q) => {
                            handles[q] =
                                Some(engine.register_query(workload.queries[q].clone()).unwrap());
                        }
                        Action::Pause(q) => engine.pause(handles[q].unwrap()).unwrap(),
                        Action::Resume(q) => engine.resume(handles[q].unwrap()).unwrap(),
                        Action::Deregister(q) => {
                            engine.deregister(handles[q].take().unwrap()).unwrap()
                        }
                    }
                }
                engine_matches.extend(engine.ingest(slice).unwrap());
            }
        }
        assert_eq!(
            multiset(&engine_matches),
            reference,
            "seed {seed}: subtree-without-lifting diverged"
        );
    }
}
