//! News / social-media monitoring (paper §5.2, Figs. 5–6) — experiment E3.
//!
//! Run with:
//! ```text
//! cargo run --release --example news_monitoring [-- <articles>]
//! ```
//!
//! Generates a synthetic news stream with planted co-occurrence bursts
//! (several articles sharing a labelled keyword and a location inside a short
//! window), registers one labelled query per event type — the Fig. 5 query
//! family — and prints the resulting event table: the textual equivalent of
//! the paper's map and grid views.

use streamworks::workloads::queries::labelled_news_query;
use streamworks::workloads::{NewsConfig, NewsStreamGenerator};
use streamworks::{ContinuousQueryEngine, Duration, MatchEvent, QueryHandle};

fn main() {
    let articles: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);

    let labels = ["politics", "accident", "earthquake"];
    let config = NewsConfig {
        articles,
        planted_events: labels.iter().map(|l| (l.to_string(), 3)).collect(),
        ..Default::default()
    };
    let workload = NewsStreamGenerator::new(config).generate();
    println!(
        "generated {} events, {} planted bursts",
        workload.events.len(),
        workload.planted.len()
    );

    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let window = Duration::from_mins(30);
    let query_ids: Vec<(QueryHandle, &str)> = labels
        .iter()
        .map(|label| {
            let id = engine
                .register_query(labelled_news_query(label, window))
                .unwrap();
            (id, *label)
        })
        .collect();

    let mut events: Vec<MatchEvent> = Vec::new();
    for ev in &workload.events {
        events.extend(engine.ingest(ev).unwrap());
    }

    // Tabular event view (Fig. 6 analogue): one row per detected event.
    println!("\n=== detected events ===");
    println!(
        "{:<12} {:>10} {:<22} {:<28} articles",
        "label", "time(s)", "location", "keyword"
    );
    for e in &events {
        let label = query_ids
            .iter()
            .find(|(id, _)| id.id() == e.query)
            .map(|(_, l)| *l)
            .unwrap_or("?");
        let location = e.binding("l").map(|b| b.key.as_str()).unwrap_or("?");
        let keyword = e.binding("k").map(|b| b.key.as_str()).unwrap_or("?");
        let articles: Vec<&str> = e
            .bindings
            .iter()
            .filter(|b| b.variable.starts_with('a'))
            .map(|b| b.key.as_str())
            .collect();
        println!(
            "{:<12} {:>10} {:<22} {:<28} {}",
            label,
            e.at.as_micros() / 1_000_000,
            location,
            keyword,
            articles.join(", ")
        );
    }

    // Recall against the planted ground truth.
    println!("\n=== planted-burst recall ===");
    let mut detected_bursts = 0;
    for planted in &workload.planted {
        let hit = events.iter().any(|e| {
            e.binding("k")
                .map(|b| b.key == planted.keyword)
                .unwrap_or(false)
                && e.binding("l")
                    .map(|b| b.key == planted.location)
                    .unwrap_or(false)
        });
        if hit {
            detected_bursts += 1;
        }
        println!(
            "burst {:<22} at {:<22} ({} articles): {}",
            planted.keyword,
            planted.location,
            planted.articles.len(),
            if hit { "DETECTED" } else { "missed" }
        );
    }
    println!(
        "\nrecall: {detected_bursts}/{} bursts, {} total match events",
        workload.planted.len(),
        events.len()
    );
}
