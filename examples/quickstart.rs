//! Quickstart: register a continuous graph query and feed it a stream.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example registers the simplest interesting query — two articles that
//! mention the same keyword within one hour — and pushes a handful of edge
//! events through the engine, printing every match as it is discovered.

use streamworks::{ContinuousQueryEngine, EdgeEvent, Timestamp};

fn main() {
    // 1. Create the engine. The default configuration maintains graph
    //    statistics (used for query planning) and prunes stale partial
    //    matches automatically.
    let mut engine = ContinuousQueryEngine::with_defaults();

    // 2. Register a continuous query using the text DSL. Queries can also be
    //    built programmatically with `QueryGraphBuilder`.
    let query_id = engine
        .register_dsl(
            r#"
            QUERY common_keyword WINDOW 1h
            MATCH (a1:Article)-[:mentions]->(k:Keyword),
                  (a2:Article)-[:mentions]->(k)
            "#,
        )
        .expect("query parses and plans");
    println!(
        "registered query:\n{}\n",
        engine.plan(query_id).unwrap().explain()
    );

    // 3. Feed a stream of timestamped edge events. Each call returns the
    //    complete matches that the event produced.
    let stream = [
        EdgeEvent::new(
            "article-1",
            "Article",
            "rust",
            "Keyword",
            "mentions",
            Timestamp::from_secs(0),
        ),
        EdgeEvent::new(
            "article-1",
            "Article",
            "berlin",
            "Location",
            "located",
            Timestamp::from_secs(30),
        ),
        EdgeEvent::new(
            "article-2",
            "Article",
            "go",
            "Keyword",
            "mentions",
            Timestamp::from_secs(60),
        ),
        EdgeEvent::new(
            "article-3",
            "Article",
            "rust",
            "Keyword",
            "mentions",
            Timestamp::from_secs(90),
        ),
        EdgeEvent::new(
            "article-4",
            "Article",
            "rust",
            "Keyword",
            "mentions",
            Timestamp::from_secs(120),
        ),
    ];

    let mut total = 0;
    for event in &stream {
        let matches = engine.process(event);
        for m in &matches {
            println!("match: {}", m.render());
        }
        total += matches.len();
    }

    // 4. Inspect engine metrics.
    let metrics = engine.metrics(query_id).unwrap();
    println!("\n{total} matches emitted");
    println!(
        "edges processed: {}, partial matches live: {}, joins attempted: {}",
        metrics.edges_processed, metrics.partial_matches_live, metrics.joins_attempted
    );
    println!("graph: {:?}", engine.graph_stats());
}
