//! Quickstart: register a continuous graph query and feed it a stream.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example registers the simplest interesting query — two articles that
//! mention the same keyword within one hour — subscribes a callback to it,
//! pushes a batch of edge events through the engine, and then walks the query
//! through its lifecycle (pause, resume, deregister).

use streamworks::{CallbackSink, ContinuousQueryEngine, EdgeEvent, Timestamp};

fn main() {
    // 1. Build the engine. The builder validates every setting up front; the
    //    defaults maintain graph statistics (used for query planning) and
    //    prune stale partial matches automatically.
    let mut engine = ContinuousQueryEngine::builder()
        .prune_every(256)
        .build()
        .expect("valid configuration");

    // 2. Register a continuous query using the text DSL. Queries can also be
    //    built programmatically with `QueryGraphBuilder`. Registration hands
    //    back a generation-tagged handle — the capability for everything
    //    else: metrics, re-planning, subscriptions, pause and deregister.
    let pairs = engine
        .register_dsl(
            r#"
            QUERY common_keyword WINDOW 1h
            MATCH (a1:Article)-[:mentions]->(k:Keyword),
                  (a2:Article)-[:mentions]->(k)
            "#,
        )
        .expect("query parses and plans");
    println!(
        "registered query:\n{}\n",
        engine.plan(pairs).unwrap().explain()
    );

    // 3. Subscribe to the query: the engine owns the sink and delivers every
    //    future match of *this* query to it, independent of other tenants.
    let subscription = engine
        .subscribe(
            pairs,
            CallbackSink::new(|m| println!("subscriber saw: {}", m.render())),
        )
        .unwrap();

    // 4. Feed a stream of timestamped edge events. `ingest` accepts a single
    //    `&event`, a slice, or any iterator via `EventBatch`; batches share
    //    one bookkeeping pass and return the complete matches in order.
    let stream = [
        EdgeEvent::new(
            "article-1",
            "Article",
            "rust",
            "Keyword",
            "mentions",
            Timestamp::from_secs(0),
        ),
        EdgeEvent::new(
            "article-1",
            "Article",
            "berlin",
            "Location",
            "located",
            Timestamp::from_secs(30),
        ),
        EdgeEvent::new(
            "article-2",
            "Article",
            "go",
            "Keyword",
            "mentions",
            Timestamp::from_secs(60),
        ),
        EdgeEvent::new(
            "article-3",
            "Article",
            "rust",
            "Keyword",
            "mentions",
            Timestamp::from_secs(90),
        ),
        EdgeEvent::new(
            "article-4",
            "Article",
            "rust",
            "Keyword",
            "mentions",
            Timestamp::from_secs(120),
        ),
    ];
    let matches = engine.ingest(&stream).unwrap();
    println!("\n{} matches emitted", matches.len());

    // 5. Lifecycle: a paused query costs nothing per event and reports no
    //    matches; resuming re-enters it into the dispatch table.
    engine.pause(pairs).unwrap();
    let while_paused = engine
        .ingest(&EdgeEvent::new(
            "article-5",
            "Article",
            "rust",
            "Keyword",
            "mentions",
            Timestamp::from_secs(150),
        ))
        .unwrap();
    assert!(while_paused.is_empty());
    engine.resume(pairs).unwrap();

    // 6. Inspect metrics through the handle, then retire the query. After
    //    deregistration the handle is permanently stale and all partial-match
    //    memory is released.
    let metrics = engine.metrics(pairs).unwrap();
    println!(
        "edges processed: {}, partial matches live: {}, joins attempted: {}",
        metrics.edges_processed, metrics.partial_matches_live, metrics.joins_attempted
    );
    println!("graph: {:?}", engine.graph_stats());

    engine.unsubscribe(subscription).unwrap();
    engine.deregister(pairs).unwrap();
    assert!(engine.metrics(pairs).is_err());
    println!(
        "query deregistered; {} live queries remain",
        engine.query_count()
    );
}
