//! Adaptive re-planning: continuously collected statistics update the query
//! decomposition while the stream runs (the future-work item of paper §4.3).
//!
//! Run with:
//! ```text
//! cargo run --release --example adaptive_replanning
//! ```
//!
//! The example registers the Fig. 2-style news query with a deliberately bad
//! (frequency-blind) plan, streams a first phase of traffic whose skew makes
//! that plan expensive, lets the [`AdaptiveReplanner`] observe the drift and
//! swap in a cost-based plan, then streams a second phase and compares the
//! partial-match effort before and after the switch.

use streamworks::query::LeftDeepEdgeChain;
use streamworks::workloads::{NewsConfig, NewsStreamGenerator};
use streamworks::{
    AdaptiveConfig, AdaptiveReplanner, ContinuousQueryEngine, Duration, TreeShapeKind,
};

fn main() {
    let query = streamworks::workloads::queries::news_triple_query(Duration::from_mins(30));

    // Register with the frequency-blind plan: single-edge primitives in edge
    // order, exactly what a system with no statistics would do.
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let id = engine
        .register_query_with(query, &LeftDeepEdgeChain, TreeShapeKind::LeftDeep)
        .expect("query plans");
    println!("initial plan ({}):", engine.plan(id).unwrap().strategy);
    println!(
        "{}",
        engine
            .plan(id)
            .unwrap()
            .shape
            .render(&engine.plan(id).unwrap().query)
    );

    let mut replanner = AdaptiveReplanner::new(AdaptiveConfig {
        min_edges_between_replans: 2_000,
        drift_threshold: 0.05,
        min_improvement: 1.1,
        ..AdaptiveConfig::default()
    });
    replanner.check(&mut engine); // capture the (empty) baseline

    // Phase 1: heavily skewed news traffic — mentions vastly outnumber
    // located edges, so anchoring the plan on mentions is wasteful.
    let phase1 = NewsStreamGenerator::new(NewsConfig {
        articles: 3_000,
        planted_events: vec![("politics".into(), 3)],
        seed: 11,
        ..Default::default()
    })
    .generate();
    let mut matches_phase1 = 0usize;
    for ev in &phase1.events {
        matches_phase1 += engine.ingest(ev).unwrap().len();
    }
    let before = engine.metrics(id).unwrap();
    println!(
        "phase 1: {} events, {} matches, {} partial matches inserted, {} joins",
        phase1.events.len(),
        matches_phase1,
        before.partial_matches_inserted,
        before.joins_attempted
    );

    // Let the replanner look at the drifted statistics.
    let decisions = replanner.check(&mut engine);
    for d in &decisions {
        println!(
            "replan decision: drift={:.3} current_cost={:.1} candidate_cost={:.1} replanned={} ({})",
            d.drift, d.current_cost, d.candidate_cost, d.replanned, d.reason
        );
    }
    println!(
        "\nplan after check ({}):",
        engine.plan(id).unwrap().strategy
    );
    println!(
        "{}",
        engine
            .plan(id)
            .unwrap()
            .shape
            .render(&engine.plan(id).unwrap().query)
    );

    // Phase 2: more traffic with the same skew, now under the new plan.
    let phase2 = NewsStreamGenerator::new(NewsConfig {
        articles: 3_000,
        planted_events: vec![("politics".into(), 3)],
        seed: 12,
        ..Default::default()
    })
    .generate();
    let inserted_before_phase2 = engine.metrics(id).unwrap().partial_matches_inserted;
    let mut matches_phase2 = 0usize;
    for ev in &phase2.events {
        matches_phase2 += engine.ingest(ev).unwrap().len();
    }
    let after = engine.metrics(id).unwrap();
    println!(
        "phase 2: {} events, {} matches, {} partial matches inserted under the new plan",
        phase2.events.len(),
        matches_phase2,
        after.partial_matches_inserted - inserted_before_phase2
    );
    println!(
        "\nreplans applied: {} (decisions recorded: {})",
        replanner.replans_applied(),
        replanner.decisions().len()
    );
}
