//! Trace replay, adaptive re-planning and multi-core execution.
//!
//! Run with:
//! ```text
//! cargo run --release --example replay_and_replan
//! ```
//!
//! This example exercises three capabilities that round out the system beyond
//! the paper's demo script:
//!
//! 1. **Trace persistence** — a generated workload is written to a JSON-lines
//!    trace file and replayed from disk (the reproduction's stand-in for
//!    replaying captured CAIDA traffic).
//! 2. **Adaptive re-planning** — a query registered *before* any data arrives
//!    is planned blindly; after the stream has been summarized the engine
//!    re-plans it with the learned statistics (paper §4.3 lists this as future
//!    work) and the two plans are compared.
//! 3. **Parallel multi-query execution** — the same trace is replayed through
//!    a sharded, multi-threaded runner, and the aggregate match counts are
//!    checked against the sequential engine.

use streamworks::engine::ParallelRunner;
use streamworks::query::{LeftDeepEdgeChain, SelectivityOrdered, TreeShapeKind};
use streamworks::workloads::queries::{labelled_news_query, news_triple_query};
use streamworks::workloads::{read_trace_file, write_trace_file, NewsConfig, NewsStreamGenerator};
use streamworks::{ContinuousQueryEngine, Duration, EngineConfig};

fn main() {
    // ---- 1. generate a workload and persist it as a trace -----------------
    let workload = NewsStreamGenerator::new(NewsConfig {
        articles: 1_500,
        planted_events: vec![("politics".into(), 3), ("earthquake".into(), 4)],
        ..Default::default()
    })
    .generate();
    let trace_path = std::env::temp_dir().join("streamworks-news-trace.jsonl");
    let written = write_trace_file(&trace_path, &workload.events).expect("write trace");
    println!("wrote {written} events to {}", trace_path.display());

    let replayed = read_trace_file(&trace_path).expect("read trace");
    assert_eq!(replayed.len(), workload.events.len());
    println!("replayed {} events from disk\n", replayed.len());

    // ---- 2. blind registration, then statistics-driven re-planning --------
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let triple = engine
        .register_query_with(
            news_triple_query(Duration::from_mins(10)),
            &LeftDeepEdgeChain,
            TreeShapeKind::LeftDeep,
        )
        .unwrap();
    println!("--- plan before any data (frequency-blind) ---");
    println!("{}", engine.plan(triple).unwrap().explain());

    // Stream the first half to build summaries (and find early matches).
    let half = replayed.len() / 2;
    let mut matches = 0usize;
    for ev in &replayed[..half] {
        matches += engine.ingest(ev).unwrap().len();
    }
    println!(
        "first half: {matches} matches, summaries over {} edges",
        half
    );

    // Re-plan with the learned statistics: located edges are rarer than
    // mention edges, so they move to the bottom of the SJ-Tree.
    engine
        .replan(
            triple,
            &SelectivityOrdered::default(),
            TreeShapeKind::LeftDeep,
        )
        .unwrap();
    println!("\n--- plan after re-planning with learned statistics ---");
    println!("{}", engine.plan(triple).unwrap().explain());

    for ev in &replayed[half..] {
        matches += engine.ingest(ev).unwrap().len();
    }
    let metrics = engine.metrics(triple).unwrap();
    println!(
        "total matches {matches}, partial matches inserted {}, joins attempted {}\n",
        metrics.partial_matches_inserted, metrics.joins_attempted
    );

    // ---- 3. parallel multi-query execution over the same trace ------------
    let mut runner = ParallelRunner::new(EngineConfig::default(), 4);
    for label in ["politics", "earthquake", "accident"] {
        runner.register_query(labelled_news_query(label, Duration::from_mins(30)));
    }
    let outcome = runner.run(&replayed).expect("parallel run");
    println!(
        "parallel run: {} workers, {} queries, {} events, {} matches",
        outcome.workers,
        runner.query_count(),
        outcome.edges_processed,
        outcome.events.len()
    );
    for (name, m) in &outcome.metrics {
        println!("  {name:<20} {:>6} complete matches", m.complete_matches);
    }

    std::fs::remove_file(&trace_path).ok();
}
