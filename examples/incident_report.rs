//! Incident reporting: the textual analogue of the demo UI (Figs. 4–7).
//!
//! Run with:
//! ```text
//! cargo run --release --example incident_report [-- <background_edges>]
//! ```
//!
//! Detects Smurf DDoS and port-scan patterns on a synthetic traffic stream and
//! then produces every report artefact the `streamworks-report` crate offers:
//! the tabular event view, the per-subnet activity grid (Fig. 6), the
//! location/victim frequency view (Fig. 5), the statistics panel (§1.1), and
//! Graphviz DOT exports of the query, its SJ-Tree and one matched
//! neighbourhood (the Gephi rendering of §6.2). DOT files are written next to
//! the binary's working directory as `incident_*.dot`.

use streamworks::report::{
    match_to_dot, query_graph_to_dot, sjtree_to_dot, summary_report, EventTable, EventTableSpec,
    GeoView, SubnetGrid,
};
use streamworks::workloads::queries::{port_scan_query, smurf_ddos_query};
use streamworks::workloads::{AttackKind, CyberConfig, CyberTrafficGenerator};
use streamworks::{ContinuousQueryEngine, Duration, MatchEvent};

fn main() {
    let background_edges: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    // 1. Synthetic traffic with injected attacks (the CAIDA stand-in).
    let workload = CyberTrafficGenerator::new(CyberConfig {
        hosts: 500,
        background_edges,
        attacks: vec![(AttackKind::SmurfDdos, 5), (AttackKind::PortScan, 8)],
        ..Default::default()
    })
    .generate();
    println!(
        "generated {} events with {} injected attacks",
        workload.events.len(),
        workload.attacks.len()
    );

    // 2. Register the Fig. 3 queries.
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let window = Duration::from_mins(5);
    let smurf = smurf_ddos_query(5, window);
    let scan = port_scan_query(8, window);
    let smurf_id = engine.register_query(smurf.clone()).unwrap();
    let scan_id = engine.register_query(scan).unwrap();

    // 3. Replay the stream, collecting matches. Star- and fan-shaped attack
    //    patterns have many automorphic embeddings (every permutation of the
    //    interchangeable amplifier/target variables is a distinct isomorphism),
    //    so for the incident report we deduplicate matches down to their bound
    //    vertex *sets* — one row per actual incident, as the demo UI would show.
    let mut matches: Vec<MatchEvent> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut incidents: Vec<MatchEvent> = Vec::new();
    for ev in &workload.events {
        for m in engine.ingest(ev).unwrap() {
            let mut key: Vec<String> = m.bindings.iter().map(|b| b.key.clone()).collect();
            key.sort();
            key.push(m.query.0.to_string());
            if seen.insert(key) {
                incidents.push(m.clone());
            }
            matches.push(m);
        }
    }
    println!(
        "{} match events ({} distinct incidents after automorphism dedup)\n",
        matches.len(),
        incidents.len()
    );

    // 4. Tabular event view (Fig. 6's table).
    let spec = EventTableSpec::standard()
        .label(smurf_id.id(), "smurf-ddos")
        .label(scan_id.id(), "port-scan");
    let table = EventTable::build(&spec, &incidents[..incidents.len().min(20)]);
    println!("=== incident table (first 20) ===\n{}", table.render());

    // 5. Victim frequency view (Fig. 5's map legend), over the Smurf incidents
    //    (the port-scan query has no `victim` variable).
    let mut geo = GeoView::new("victim");
    geo.observe_all(incidents.iter().filter(|m| m.query == smurf_id.id()));
    println!("=== incidents per victim ===\n{}", geo.render());

    // 6. Subnet activity grid (Fig. 6's cascading blue dots).
    let mut grid = SubnetGrid::new(60);
    for m in &incidents {
        grid.observe(m, &[]);
    }
    println!("=== subnet × time activity grid ===\n{}", grid.render());

    // 7. The statistics panel (§1.1 / §4.3).
    println!(
        "=== graph statistics ===\n{}",
        summary_report(engine.summary(), engine.graph(), 5)
    );

    // 8. Graphviz exports (the Gephi analogue). Render with e.g.
    //    `dot -Tpng incident_sjtree.dot -o sjtree.png`.
    let plan = engine.plan(smurf_id).unwrap();
    std::fs::write("incident_query.dot", query_graph_to_dot(&smurf)).unwrap();
    std::fs::write("incident_sjtree.dot", sjtree_to_dot(&smurf, &plan.shape)).unwrap();
    if let Some(first) = matches.first() {
        std::fs::write(
            "incident_match.dot",
            match_to_dot(engine.graph(), first, true),
        )
        .unwrap();
    }
    println!("wrote incident_query.dot, incident_sjtree.dot and incident_match.dot");
}
