//! Query decomposition and plan comparison (paper Fig. 2 and Fig. 7) —
//! experiments E1 and E4.
//!
//! Run with:
//! ```text
//! cargo run --release --example query_plans            # Fig. 2: show decompositions
//! cargo run --release --example query_plans -- --progression
//!                                                       # Fig. 7: per-plan match progression
//! ```
//!
//! Without arguments the example prints the SJ-Tree produced for the Fig. 2
//! news query under several decomposition strategies (the content of Fig. 2).
//! With `--progression` it replays a traffic stream containing one Smurf DDoS
//! attack through the same query planned three different ways and prints how
//! the fraction of the query matched evolves over time — the content of
//! Fig. 7, where different SJ-Tree structures track the emerging pattern at
//! different rates.

use streamworks::query::{
    BalancedPairs, DecompositionStrategy, LeftDeepEdgeChain, ManualDecomposition, Planner,
    QueryEdgeId, SelectivityOrdered, TreeShapeKind,
};
use streamworks::workloads::queries::{news_triple_query, smurf_ddos_query};
use streamworks::workloads::{AttackKind, CyberConfig, CyberTrafficGenerator};
use streamworks::{ContinuousQueryEngine, Duration, EngineConfig};

fn show_decompositions() {
    let query = news_triple_query(Duration::from_hours(6));
    println!("Fig. 2 query: three articles sharing a keyword and a location\n");

    let planner = Planner::new();
    let strategies: Vec<Box<dyn DecompositionStrategy>> = vec![
        Box::new(SelectivityOrdered::default()),
        Box::new(BalancedPairs),
        Box::new(LeftDeepEdgeChain),
        // The decomposition drawn in Fig. 2: one (mention, located) wedge per article.
        Box::new(ManualDecomposition::new(vec![
            vec![QueryEdgeId(0), QueryEdgeId(3)],
            vec![QueryEdgeId(1), QueryEdgeId(4)],
            vec![QueryEdgeId(2), QueryEdgeId(5)],
        ])),
    ];
    for strategy in strategies {
        let plan = planner.plan_with(query.clone(), strategy.as_ref()).unwrap();
        println!("=== strategy: {} ===", strategy.name());
        println!("{}", plan.explain());
    }
}

fn show_progression() {
    println!("Fig. 7 analogue: emerging Smurf DDoS matches under different query plans\n");
    let workload = CyberTrafficGenerator::new(CyberConfig {
        background_edges: 20_000,
        attacks: vec![(AttackKind::SmurfDdos, 4)],
        ..Default::default()
    })
    .generate();
    let query = smurf_ddos_query(4, Duration::from_mins(5));

    // Three plans for the same query.
    let planner = Planner::new();
    let plans = vec![
        (
            "selectivity-pairs",
            planner
                .plan_with(query.clone(), &SelectivityOrdered::default())
                .unwrap(),
        ),
        (
            "single-edge-chain",
            planner
                .plan_with(query.clone(), &LeftDeepEdgeChain)
                .unwrap(),
        ),
        (
            "balanced-pairs",
            Planner::new()
                .tree_kind(TreeShapeKind::Balanced)
                .plan_with(query.clone(), &BalancedPairs)
                .unwrap(),
        ),
    ];

    let mut engines: Vec<(&str, ContinuousQueryEngine, streamworks::QueryHandle)> = plans
        .into_iter()
        .map(|(name, plan)| {
            let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
            let id = engine.register_plan(plan);
            (name, engine, id)
        })
        .collect();

    let checkpoints = 12usize;
    let step = workload.events.len() / checkpoints;
    println!(
        "{:<10} {:>18} {:>18} {:>18}",
        "progress", "selectivity-pairs", "single-edge-chain", "balanced-pairs"
    );
    let mut processed = 0usize;
    for (i, ev) in workload.events.iter().enumerate() {
        for (_, engine, _) in engines.iter_mut() {
            engine.ingest(ev).unwrap();
        }
        processed = i + 1;
        if processed.is_multiple_of(step) || processed == workload.events.len() {
            let fractions: Vec<String> = engines
                .iter()
                .map(|(_, engine, id)| {
                    let matcher = engine.matcher(*id).unwrap();
                    format!(
                        "{:>6.0}% ({:>6} pm)",
                        matcher.best_partial_fraction() * 100.0,
                        matcher.metrics().partial_matches_live
                    )
                })
                .collect();
            println!(
                "{:>8.0}%  {:>18} {:>18} {:>18}",
                100.0 * processed as f64 / workload.events.len() as f64,
                fractions[0],
                fractions[1],
                fractions[2]
            );
        }
    }

    println!("\nfinal per-plan cost (same query, same stream):");
    println!(
        "{:<20} {:>10} {:>14} {:>14} {:>12} {:>10}",
        "plan", "complete", "partial-insert", "partial-expired", "joins", "candidates"
    );
    for (name, engine, id) in &engines {
        let m = engine.metrics(*id).unwrap();
        println!(
            "{:<20} {:>10} {:>14} {:>14} {:>12} {:>10}",
            name,
            m.complete_matches,
            m.partial_matches_inserted,
            m.partial_matches_expired,
            m.joins_attempted,
            m.local_search_candidates
        );
    }
    let _ = processed;
}

fn main() {
    let progression = std::env::args().any(|a| a == "--progression");
    if progression {
        show_progression();
    } else {
        show_decompositions();
    }
}
