//! Cyber-security monitoring (paper §5.1, Fig. 3) — experiment E2.
//!
//! Run with:
//! ```text
//! cargo run --release --example cyber_monitoring [-- <background_edges>]
//! ```
//!
//! Generates a synthetic internet-traffic stream (the CAIDA-trace substitute)
//! with injected Smurf DDoS, worm-spread and port-scan attacks, registers the
//! three corresponding queries and streams the traffic through the engine.
//! At the end it reports, per attack kind, whether the injected instances were
//! detected (ground-truth recall) and the per-edge processing cost.

use std::time::Instant;
use streamworks::workloads::queries;
use streamworks::workloads::{AttackKind, CyberConfig, CyberTrafficGenerator};
use streamworks::{ContinuousQueryEngine, Duration};

fn main() {
    let background_edges: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);

    let config = CyberConfig {
        background_edges,
        attacks: vec![
            (AttackKind::SmurfDdos, 4),
            (AttackKind::SmurfDdos, 4),
            (AttackKind::PortScan, 6),
            (AttackKind::WormSpread, 3),
        ],
        ..Default::default()
    };
    println!(
        "generating traffic: {} hosts, {} background edges, {} injected attacks",
        config.hosts,
        config.background_edges,
        config.attacks.len()
    );
    let workload = CyberTrafficGenerator::new(config).generate();

    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    let window = Duration::from_mins(5);
    let smurf = engine
        .register_query(queries::smurf_ddos_query(4, window))
        .unwrap();
    let scan = engine
        .register_query(queries::port_scan_query(6, Duration::from_mins(1)))
        .unwrap();
    let worm = engine
        .register_query(queries::worm_spread_query(2, Duration::from_mins(10)))
        .unwrap();

    println!(
        "streaming {} events through 3 registered queries...",
        workload.events.len()
    );
    let start = Instant::now();
    let mut events = Vec::new();
    for ev in &workload.events {
        events.extend(engine.ingest(ev).unwrap());
    }
    let elapsed = start.elapsed().as_secs_f64();

    // Detection report: an injected attack counts as detected if any match of
    // the corresponding query binds the attacker key.
    println!("\n=== detection report ===");
    for attack in &workload.attacks {
        let qid = match attack.kind {
            AttackKind::SmurfDdos => smurf,
            AttackKind::PortScan => scan,
            AttackKind::WormSpread => worm,
        };
        let detected = events
            .iter()
            .any(|e| e.query == qid.id() && e.bindings.iter().any(|b| b.key == attack.attacker));
        println!(
            "{:?} by {} at t={}s: {}",
            attack.kind,
            attack.attacker,
            attack.start.as_micros() / 1_000_000,
            if detected { "DETECTED" } else { "missed" }
        );
    }

    println!("\n=== performance ===");
    println!(
        "{} edges in {:.2}s  ({:.0} edges/s, {:.1} us/edge)",
        workload.events.len(),
        elapsed,
        workload.events.len() as f64 / elapsed,
        elapsed * 1e6 / workload.events.len() as f64
    );
    println!("total match events: {}", events.len());
    for (qid, name) in [
        (smurf, "smurf_ddos"),
        (scan, "port_scan"),
        (worm, "worm_spread"),
    ] {
        let m = engine.metrics(qid).unwrap();
        println!(
            "{name:>12}: {} complete, {} partial live, {} partial expired, {} joins",
            m.complete_matches,
            m.partial_matches_live,
            m.partial_matches_expired,
            m.joins_attempted
        );
    }
}
