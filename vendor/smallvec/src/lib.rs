//! Offline-vendored small-vector: up to `N` elements stored inline (no heap
//! allocation), spilling to a `Vec` only beyond that.
//!
//! Unlike upstream `smallvec` this variant is implemented entirely in safe
//! code by requiring `T: Copy + Default` — which every element type on the
//! matcher hot path (vertex ids, `(query edge, data edge)` pairs) satisfies.
//! The API is the subset StreamWorks uses: push/insert/clear/truncate, slice
//! deref, `FromIterator`/`Extend`, and `Borrow<[T]>` so hash-map probes can be
//! keyed by a borrowed slice without materialising a key.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// A vector storing up to `N` elements inline.
#[derive(Clone)]
pub struct SmallVec<T: Copy + Default, const N: usize> {
    len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    #[inline]
    pub fn new() -> Self {
        SmallVec {
            len: 0,
            inline: [T::default(); N],
            spill: Vec::new(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if the elements currently live in the inline buffer.
    #[inline]
    pub fn is_inline(&self) -> bool {
        self.len <= N
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.len <= N {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len <= N {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }

    /// Appends an element.
    #[inline]
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = value;
        } else {
            if self.len == N {
                self.spill.reserve(N + 1);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Inserts an element at `index`, shifting later elements right.
    pub fn insert(&mut self, index: usize, value: T) {
        assert!(index <= self.len, "insert index out of bounds");
        self.push(value); // make room (value placement fixed below)
        let slice = self.as_mut_slice();
        slice[index..].rotate_right(1);
    }

    /// Removes all elements, keeping the inline buffer and spill capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Shortens to `len` elements (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len {
            if self.len > N {
                self.spill.truncate(len);
                if len <= N {
                    // Migrate back inline so `is_inline` reflects reality.
                    self.inline[..len].copy_from_slice(&self.spill[..len]);
                    self.spill.clear();
                }
            }
            self.len = len;
        }
    }

    /// Appends every element of `other`.
    pub fn extend_from_slice(&mut self, other: &[T]) {
        for &v in other {
            self.push(v);
        }
    }

    /// Iterates the elements.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for SmallVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default, const N: usize> Borrow<[T]> for SmallVec<T, N> {
    #[inline]
    fn borrow(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

// Hash must agree with `<[T]>::hash` for `Borrow<[T]>`-keyed map probes.
impl<T: Copy + Default + Hash, const N: usize> Hash for SmallVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> From<&[T]> for SmallVec<T, N> {
    fn from(slice: &[T]) -> Self {
        let mut v = SmallVec::new();
        v.extend_from_slice(slice);
        v
    }
}

#[cfg(feature = "serde")]
impl<T: Copy + Default + serde::Serialize, const N: usize> serde::Serialize for SmallVec<T, N> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.iter().map(serde::Serialize::to_value).collect())
    }
}

#[cfg(feature = "serde")]
impl<T: Copy + Default + serde::Deserialize, const N: usize> serde::Deserialize for SmallVec<T, N> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        v.as_array()
            .ok_or_else(|| serde::Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn push_stays_inline_then_spills() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
            assert!(v.is_inline());
        }
        v.push(4);
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn insert_shifts_elements() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        v.push(1);
        v.push(3);
        v.insert(1, 2);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        v.insert(0, 0);
        v.insert(4, 9);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 9]);
        // Insert while spilled.
        v.insert(4, 4);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 9]);
    }

    #[test]
    fn truncate_migrates_back_inline() {
        let mut v: SmallVec<u32, 2> = (0..5).collect();
        assert!(!v.is_inline());
        v.truncate(2);
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1]);
    }

    #[test]
    fn hash_matches_slice_hash() {
        fn h<T: Hash + ?Sized>(t: &T) -> u64 {
            let mut s = DefaultHasher::new();
            t.hash(&mut s);
            s.finish()
        }
        let v: SmallVec<u32, 4> = [1u32, 2, 3].as_slice().into();
        assert_eq!(h(&v), h(&[1u32, 2, 3][..]));
    }

    #[test]
    fn clear_and_reuse() {
        let mut v: SmallVec<u32, 2> = (0..5).collect();
        v.clear();
        assert!(v.is_empty() && v.is_inline());
        v.push(7);
        assert_eq!(v.as_slice(), &[7]);
    }
}
