//! Offline-vendored, minimal `serde_json`-compatible facade.
//!
//! Renders and parses the vendored `serde` facade's [`Value`] tree as JSON.
//! Maps are encoded as arrays of `[key, value]` pairs by the facade (see the
//! `serde` stub), so any serialisable key type round-trips; everything else is
//! standard JSON. Non-finite floats serialise as `null`, matching upstream
//! `serde_json`'s lossy behaviour.

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// (De)serialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            offset: None,
        }
    }

    fn with_offset(mut self, pos: usize) -> Self {
        if self.offset.is_none() {
            self.offset = Some(pos);
        }
        self
    }

    /// Byte offset in the input where parsing stopped, for parse-stage
    /// errors. `None` for errors raised after parsing (shape mismatches,
    /// serialisation failures).
    pub fn byte_offset(&self) -> Option<usize> {
        self.offset
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts a value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a decimal point / exponent so floats re-parse
                // as floats and round-trip exactly.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = match p.value() {
        Ok(v) => v,
        Err(e) => {
            let pos = p.pos;
            return Err(e.with_offset(pos));
        }
    };
    p.skip_ws();
    if p.pos != p.bytes.len() {
        let pos = p.pos;
        return Err(Error::new(format!("trailing characters at byte {pos}")).with_offset(pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let c = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Copy a full UTF-8 scalar.
                    let start = self.pos;
                    let len = utf8_len(b);
                    self.pos += len;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Int(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::UInt(n))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shape a telemetry snapshot export leans on: nested containers,
    /// mixed number widths, strings needing escapes, and `Option` nulls.
    type Specimen = (String, u64, i64, Vec<Option<f64>>, bool);

    fn specimen() -> Specimen {
        (
            "ingest\n\"front\"".to_owned(),
            u64::MAX,
            -42,
            vec![Some(1.25), None],
            true,
        )
    }

    #[test]
    fn pretty_output_round_trips_to_the_same_value() {
        let v = specimen();
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_ne!(compact, pretty, "pretty output actually differs");
        assert!(pretty.contains('\n'), "pretty output is indented");
        assert!(!compact.contains('\n'), "compact output is one line");
        // Both renderings parse to the identical value tree, and the typed
        // round trip through the pretty text reproduces the input exactly.
        assert_eq!(parse(&compact).unwrap(), parse(&pretty).unwrap());
        let back: Specimen = from_str(&pretty).unwrap();
        assert_eq!(back, v);
        // Re-serialising the parsed pretty text compacts to the original:
        // indentation is the only difference between the two formats.
        let reparsed: Specimen = from_str(&pretty).unwrap();
        assert_eq!(to_string(&reparsed).unwrap(), compact);
    }
}
