//! Derive macros for the vendored minimal `serde` facade.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! non-generic structs and enums by hand-parsing the item's token stream (no
//! `syn`/`quote` available offline) and emitting impls of the facade's
//! value-tree traits. Supported shapes: unit / tuple / named-field structs,
//! and enums with unit, tuple and named-field variants (externally tagged,
//! matching serde's default). The `#[serde(default)]` and
//! `#[serde(default = "path")]` field attributes are honoured on
//! deserialisation (missing fields fall back to `Default::default()` or the
//! named function); other `#[serde(...)]` options are accepted and ignored
//! (this facade always serialises every field).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled on deserialisation: not at all (`None`),
/// via `Default::default()` (`Some(None)`), or via a named function
/// (`Some(Some(path))`).
type FieldDefault = Option<Option<String>>;

#[derive(Debug)]
struct Field {
    name: String,
    default: FieldDefault,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the facade's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the facade's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skips attributes (`# [ ... ]`), returning how any skipped `#[serde(...)]`
/// attribute configures the `default` option (bare or `default = "path"`).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, FieldDefault) {
    let mut default: FieldDefault = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = inner.first() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                let args: Vec<TokenTree> = args.stream().into_iter().collect();
                                let mut j = 0;
                                while j < args.len() {
                                    if let TokenTree::Ident(opt) = &args[j] {
                                        if opt.to_string() == "default" {
                                            default = Some(None);
                                            if let (
                                                Some(TokenTree::Punct(eq)),
                                                Some(TokenTree::Literal(lit)),
                                            ) = (args.get(j + 1), args.get(j + 2))
                                            {
                                                if eq.as_char() == '=' {
                                                    let path = lit
                                                        .to_string()
                                                        .trim_matches('"')
                                                        .to_string();
                                                    default = Some(Some(path));
                                                    j += 2;
                                                }
                                            }
                                        }
                                    }
                                    j += 1;
                                }
                            }
                        }
                    }
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (i, default)
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level comma-separated items in a token list, tracking
/// angle-bracket depth so commas inside generic arguments don't split.
fn count_top_level_fields(tokens: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    let mut prev_dash = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => depth += 1,
                    '>' if !prev_dash => depth -= 1,
                    ',' if depth == 0 => {
                        count += 1;
                        saw_tokens = false;
                        prev_dash = false;
                        continue;
                    }
                    _ => {}
                }
                prev_dash = c == '-';
                saw_tokens = true;
            }
            _ => {
                prev_dash = false;
                saw_tokens = true;
            }
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Parses the contents of a `{ ... }` field list into named fields.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, default) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("unexpected token in field list: {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a top-level comma.
        let mut depth = 0i32;
        let mut prev_dash = false;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                let c = p.as_char();
                match c {
                    '<' => depth += 1,
                    '>' if !prev_dash => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                prev_dash = c == '-';
            } else {
                prev_dash = false;
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        let (ni, _) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                i += 1; // e.g. `unsafe` or other modifiers (not expected)
            }
            other => panic!("expected `struct` or `enum`, found {other:?}"),
        }
    }
    let is_enum = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "enum");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde facade derives do not support generic types (on `{name}`)");
        }
    }
    if is_enum {
        let group = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("expected enum body, found {other:?}"),
        };
        let body: Vec<TokenTree> = group.stream().into_iter().collect();
        let mut variants = Vec::new();
        let mut j = 0;
        while j < body.len() {
            let (nj, _) = skip_attrs(&body, j);
            j = nj;
            let vname = match body.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                None => break,
                other => panic!("unexpected token in enum body: {other:?}"),
            };
            j += 1;
            let shape = match body.get(j) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    j += 1;
                    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                    Shape::Tuple(count_top_level_fields(&toks))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    j += 1;
                    Shape::Named(parse_named_fields(g))
                }
                _ => Shape::Unit,
            };
            // Skip to the comma separating variants.
            while j < body.len() {
                if let TokenTree::Punct(p) = &body[j] {
                    if p.as_char() == ',' {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            variants.push(Variant { name: vname, shape });
        }
        Item::Enum { name, variants }
    } else {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Tuple(count_top_level_fields(&toks))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("expected struct body, found {other:?}"),
        };
        Item::Struct { name, shape }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::value::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => named_fields_to_value(fields, "self.", "&"),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::value::Value::Object(vec![(::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binders.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_fields_to_value(fields, "", "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::value::Value::Object(vec![(::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

/// Renders `Value::Object(vec![("field", to_value(<prefix>field)), ...])`.
fn named_fields_to_value(fields: &[Field], prefix: &str, amp: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({amp}{prefix}{0}))",
                f.name
            )
        })
        .collect();
    format!("::serde::value::Value::Object(vec![{}])", items.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                        .collect();
                    format!(
                        "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                         if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    format!(
                        "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        named_fields_from_value(fields)
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __arr = __inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for variant {vn}\"))?;\n\
                                 if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for variant {vn}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __obj = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for variant {vn}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                             }},\n",
                            named_fields_from_value(fields)
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                             match __s {{ {unit_arms} _ => return ::std::result::Result::Err(::serde::Error::custom(\"unknown variant of {name}\")) }}\n\
                         }}\n\
                         let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         if __obj.len() != 1 {{ return ::std::result::Result::Err(::serde::Error::custom(\"expected single-key object for {name}\")); }}\n\
                         let (__tag, __inner) = &__obj[0];\n\
                         match __tag.as_str() {{ {tagged_arms} _ => ::std::result::Result::Err(::serde::Error::custom(\"unknown variant of {name}\")) }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Renders the field initialisers of a struct literal pulled from `__obj`.
fn named_fields_from_value(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            let n = &f.name;
            match &f.default {
                Some(Some(path)) => format!(
                    "{n}: match ::serde::value::get_field(__obj, \"{n}\") {{\n\
                         ::std::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
                         ::std::option::Option::None => {path}(),\n\
                     }}"
                ),
                Some(None) => format!(
                    "{n}: match ::serde::value::get_field(__obj, \"{n}\") {{\n\
                         ::std::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
                         ::std::option::Option::None => ::std::default::Default::default(),\n\
                     }}"
                ),
                None => format!(
                    "{n}: match ::serde::value::get_field(__obj, \"{n}\") {{\n\
                         ::std::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
                         ::std::option::Option::None => return ::std::result::Result::Err(::serde::Error::custom(\"missing field {n}\")),\n\
                     }}"
                ),
            }
        })
        .collect::<Vec<_>>()
        .join(",\n")
}
