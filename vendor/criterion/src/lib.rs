//! Offline-vendored, minimal `criterion`-compatible benchmarking facade.
//!
//! Implements the subset of the criterion API the bench suite uses
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!`) with a simple but
//! honest measurement loop: warm up for a fixed fraction of the measurement
//! time, then time batches of iterations and report the median ns/iter plus
//! derived throughput. `--test` (as passed by `cargo bench -- --test`) runs
//! every benchmark body once without timing, for CI smoke runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-implementation of `std::hint::black_box` passthrough used by benches.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]. This facade regenerates
/// the input before every routine call regardless of the hint, so the
/// variants only exist for criterion API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap; criterion proper would batch many per allocation.
    SmallInput,
    /// Inputs are expensive; criterion proper would batch few.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    mode: &'a Mode,
    /// Measured median nanoseconds per iteration (filled by `iter`).
    result_ns: f64,
}

enum Mode {
    /// Run the body once, untimed (`--test`).
    Smoke,
    /// Time for roughly this long.
    Measure { measurement_time: Duration },
}

impl<'a> Bencher<'a> {
    /// Times `routine`, storing the median ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
                self.result_ns = 0.0;
            }
            Mode::Measure { measurement_time } => {
                // Warmup: run until ~20% of the measurement budget is spent,
                // estimating the per-iteration cost as we go.
                let warmup_budget = measurement_time.mul_f64(0.2).max(Duration::from_millis(50));
                let warm_start = Instant::now();
                let mut iters_done = 0u64;
                while warm_start.elapsed() < warmup_budget {
                    black_box(routine());
                    iters_done += 1;
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

                // Measurement: split the remaining budget into up to 11 samples
                // of equal iteration count, then take the median.
                let budget = measurement_time.mul_f64(0.8);
                let total_iters = (budget.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
                let samples = 11u64;
                let iters_per_sample = (total_iters / samples).max(1);
                let mut times: Vec<f64> = Vec::with_capacity(samples as usize);
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    times.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
                }
                times.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.result_ns = times[times.len() / 2] * 1e9;
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding the setup
    /// cost from the measurement. Use this to keep expensive per-iteration
    /// state construction (engines, registries) out of the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Smoke => {
                black_box(routine(setup()));
                self.result_ns = 0.0;
            }
            Mode::Measure { measurement_time } => {
                // Warmup: estimate the routine-only cost, setup excluded.
                let warmup_budget = measurement_time.mul_f64(0.2).max(Duration::from_millis(50));
                let warm_start = Instant::now();
                let mut iters_done = 0u64;
                let mut timed = Duration::ZERO;
                while warm_start.elapsed() < warmup_budget {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    timed += start.elapsed();
                    iters_done += 1;
                }
                let per_iter = (timed.as_secs_f64() / iters_done as f64).max(1e-9);

                // Measurement: the iteration budget is sized from the timed
                // (routine-only) cost, so setup-heavy benches still collect
                // a full set of samples.
                let budget = measurement_time.mul_f64(0.8);
                let total_iters = (budget.as_secs_f64() / per_iter).ceil() as u64;
                let samples = 11u64;
                let iters_per_sample = (total_iters / samples).max(1);
                let mut times: Vec<f64> = Vec::with_capacity(samples as usize);
                for _ in 0..samples {
                    let mut sample = Duration::ZERO;
                    for _ in 0..iters_per_sample {
                        let input = setup();
                        let start = Instant::now();
                        black_box(routine(input));
                        sample += start.elapsed();
                    }
                    times.push(sample.as_secs_f64() / iters_per_sample as f64);
                }
                times.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.result_ns = times[times.len() / 2] * 1e9;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the throughput annotation used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this facade sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = format!("{}/{}", self.name, id.into_name());
        let mode = if self.criterion.smoke {
            Mode::Smoke
        } else {
            Mode::Measure {
                measurement_time: self.measurement_time,
            }
        };
        let mut bencher = Bencher {
            mode: &mode,
            result_ns: f64::NAN,
        };
        f(&mut bencher);
        self.criterion
            .report(&full_name, bencher.result_ns, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    smoke: bool,
    default_measurement_time: Duration,
    results: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            smoke: false,
            default_measurement_time: Duration::from_secs(2),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (`--test` → smoke mode,
    /// `--quick` / env `CRITERION_QUICK=1` → short measurement budget).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.smoke = true,
                "--quick" => c.default_measurement_time = Duration::from_millis(400),
                _ => {} // benchmark-name filters and cargo flags: ignored
            }
        }
        if std::env::var_os("CRITERION_QUICK").is_some() {
            c.default_measurement_time = Duration::from_millis(400);
        }
        c
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.default_measurement_time;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measurement_time,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mode = if self.smoke {
            Mode::Smoke
        } else {
            Mode::Measure {
                measurement_time: self.default_measurement_time,
            }
        };
        let mut bencher = Bencher {
            mode: &mode,
            result_ns: f64::NAN,
        };
        f(&mut bencher);
        self.report(name, bencher.result_ns, None);
        self
    }

    fn report(&mut self, name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
        let line = if self.smoke {
            format!("{name:<60} ok (smoke)")
        } else {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    let per_sec = n as f64 / (ns_per_iter / 1e9);
                    format!("  {:>12.0} elem/s", per_sec)
                }
                Some(Throughput::Bytes(n)) => {
                    let per_sec = n as f64 / (ns_per_iter / 1e9);
                    format!("  {:>12.0} B/s", per_sec)
                }
                None => String::new(),
            };
            format!("{name:<60} {:>14.0} ns/iter{rate}", ns_per_iter)
        };
        println!("{line}");
        self.results.push(line);
    }

    /// Prints a closing summary line.
    pub fn final_summary(&self) {
        println!("\n{} benchmark(s) completed", self.results.len());
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
