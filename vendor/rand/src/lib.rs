//! Offline-vendored, minimal `rand`-compatible facade.
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64) and the small slice of the `rand` API the workloads use:
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! `Rng::gen_bool` and `Rng::gen`. Streams generated with a fixed seed are
//! reproducible across runs (the property the workload generators rely on),
//! though not bit-identical to upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the widest multiple of `bound` to avoid modulo
    // bias; the loop runs once in the overwhelmingly common case.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The facade's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=5i64);
            assert!((1..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }
}
