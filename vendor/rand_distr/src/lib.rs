//! Offline-vendored, minimal `rand_distr` facade: the Zipf distribution the
//! workload generators use for hub-skewed host/keyword popularity.

use rand::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Zipf distribution over `{1, ..., n}` with exponent `s`: rank `k` has
/// probability proportional to `k^-s`. Sampled by binary search over a
/// precomputed cumulative table (`O(n)` memory, `O(log n)` per draw), which is
/// exact and fast for the workload-sized `n` used here.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `{1, ..., n}` with exponent `s >= 0`.
    pub fn new(n: u64, s: f64) -> Result<Zipf, Error> {
        if n == 0 {
            return Err(Error("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(Error("Zipf requires a finite exponent >= 0"));
        }
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cumulative.push(total);
        }
        Ok(Zipf { cumulative })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let total = *self.cumulative.last().expect("non-empty table");
        let u: f64 = rng.gen::<f64>() * total;
        // First rank whose cumulative weight exceeds u.
        let idx = self.cumulative.partition_point(|&c| c <= u);
        (idx.min(self.cumulative.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_samples_stay_in_range_and_skew_low() {
        let zipf = Zipf::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut first_rank = 0usize;
        for _ in 0..10_000 {
            let v = zipf.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v));
            if v == 1.0 {
                first_rank += 1;
            }
        }
        // Rank 1 carries ~1/H(100) ≈ 19% of the mass at s=1.
        assert!(first_rank > 1_000, "rank-1 draws: {first_rank}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }
}
