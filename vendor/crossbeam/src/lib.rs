//! Offline-vendored, minimal `crossbeam` facade: just the unbounded channel
//! surface the engine's `ChannelSink` uses, backed by `std::sync::mpsc`.

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    // Manual impl: senders clone for any payload type (a derive would
    // needlessly require `T: Clone`).
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when the receiving half has disconnected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks until a message arrives, the timeout elapses, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Iterates messages until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.try_iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_after_receiver_drops() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
