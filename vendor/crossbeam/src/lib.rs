//! Offline-vendored, minimal `crossbeam` facade: the unbounded and bounded
//! channel surface the engine uses, backed by `std::sync::mpsc`.

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;

    #[derive(Debug)]
    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Sending half of a channel (unbounded or bounded; both halves share one
    /// type, mirroring real crossbeam).
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    // Manual impl: senders clone for any payload type (a derive would
    // needlessly require `T: Clone`).
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: match &self.inner {
                    SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
                    SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
                },
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when the receiving half has disconnected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The (bounded) channel is at capacity.
        Full(T),
        /// The receiving half has disconnected.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// True when the send failed because the channel was at capacity.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderInner::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a bounded FIFO channel holding at most `cap` queued messages.
    /// Sends on a full channel block ([`Sender::send`]) or fail
    /// ([`Sender::try_send`]).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderInner::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full; fails
        /// only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderInner::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Sends a message without blocking: fails with
        /// [`TrySendError::Full`] when a bounded channel is at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(tx) => {
                    tx.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
                SenderInner::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks until a message arrives, the timeout elapses, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Iterates messages until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.try_iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_after_receiver_drops() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn bounded_try_send_reports_full_then_drains() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert!(tx.try_send(3).unwrap_err().is_full());
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
        }

        #[test]
        fn bounded_try_send_reports_disconnect() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.try_send(7), Err(TrySendError::Disconnected(7)));
            assert_eq!(TrySendError::Disconnected(7).into_inner(), 7);
        }
    }
}
