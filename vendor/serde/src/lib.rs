//! Offline-vendored, minimal `serde`-compatible facade.
//!
//! The build environment has no access to crates.io, so this crate supplies
//! just enough of the `serde` surface for StreamWorks: the `Serialize` /
//! `Deserialize` traits (over a simple owned [`value::Value`] tree instead of
//! serde's full visitor data model) and re-exported derive macros from the
//! sibling `serde_derive` stub. `serde_json` (also vendored) renders and
//! parses the value tree as JSON. Both ends of every (de)serialisation in this
//! workspace go through these stubs, so round-trip fidelity — not wire
//! compatibility with upstream serde — is the contract.

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into an owned value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom(concat!("expected unsigned integer for ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom("expected number for f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()
            .ok_or_else(|| Error::custom("expected number for f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected string for char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| s.to_owned())
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

// Maps serialise as an array of [key, value] pairs so that non-string keys
// (struct keys such as summary triple keys) round-trip losslessly.
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array of pairs"))?;
        let mut map = std::collections::HashMap::with_capacity_and_hasher(arr.len(), S::default());
        for entry in arr {
            let pair = entry
                .as_array()
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            if pair.len() != 2 {
                return Err(Error::custom("expected [key, value] pair"));
            }
            map.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(map)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array of pairs"))?;
        let mut map = std::collections::BTreeMap::new();
        for entry in arr {
            let pair = entry
                .as_array()
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            if pair.len() != 2 {
                return Err(Error::custom("expected [key, value] pair"));
            }
            map.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(map)
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let mut it = arr.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                    },
                )+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if arr.len() != N {
            return Err(Error::custom("array length mismatch"));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(arr) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}
