//! The owned value tree that serves as this facade's data model.

/// A dynamically typed value: the intermediate form between Rust types and
/// JSON text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64::MAX` round-trips).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key → value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a signed integer, converting from `UInt` when it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an unsigned integer, converting from non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a float, converting from either integer representation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object (list of key → value entries).
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a field of an object value by key.
    pub fn get_field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Looks up `key` in an object entry list (helper used by derived impls).
pub fn get_field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
